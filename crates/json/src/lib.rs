//! # lazyeye-json — the workspace's dependency-free JSON layer
//!
//! The build environment has no crates.io access, so instead of `serde` +
//! `serde_json` the workspace carries this small JSON library: a [`Json`]
//! value type with parser and (deterministic) printers, [`ToJson`] /
//! [`FromJson`] conversion traits, and declarative macros that derive the
//! conversions for plain structs ([`impl_json_struct!`]) and fieldless
//! enums ([`impl_json_unit_enum!`]).
//!
//! Object key order is **insertion order**, and the printers are fully
//! deterministic — the campaign engine's byte-identical-report guarantee
//! (same spec + seed ⇒ same JSON, whatever `--jobs` is) rests on this.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Duration;

/// A JSON document/value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer in `i64` range (all non-negative integers ≤ `i64::MAX`
    /// normalise here).
    Int(i64),
    /// Integer above `i64::MAX` (e.g. large campaign seeds).
    UInt(u64),
    /// Non-integral number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
}

impl JsonError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------------
// Value accessors
// ---------------------------------------------------------------------------

static NULL: Json = Json::Null;

impl Json {
    /// Builds an object from key/value pairs (insertion order preserved).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, idx: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Json {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<u64> for Json {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Json {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    // Fast path: almost every key and value in a report is escape-free.
    if !s.bytes().any(|b| b == b'"' || b == b'\\' || b < 0x20) {
        out.push('"');
        out.push_str(s);
        out.push('"');
        return;
    }
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(f: f64) -> String {
    assert!(
        f.is_finite(),
        "lazyeye-json cannot serialize non-finite number {f}"
    );
    format!("{f}")
}

/// Appends `n` spaces without allocating (the pretty printer previously
/// built a fresh `String` per indented line via `" ".repeat(..)`).
fn push_spaces(out: &mut String, n: usize) {
    const SPACES: &str = "                                                                ";
    let mut left = n;
    while left > 0 {
        let take = left.min(SPACES.len());
        out.push_str(&SPACES[..take]);
        left -= take;
    }
}

impl Json {
    /// A close upper-bound estimate of the compact rendering's byte
    /// length, used to pre-size output buffers (reports are built from
    /// thousands of small values; growing a `String` through repeated
    /// doublings showed up in the campaign writer's profile).
    pub fn estimate_compact_len(&self) -> usize {
        match self {
            Json::Null | Json::Bool(_) => 5,
            Json::Int(_) | Json::UInt(_) => 20,
            Json::Float(_) => 24,
            // `+ 8` leaves headroom for escapes.
            Json::Str(s) => s.len() + 8,
            Json::Arr(items) => {
                2 + items
                    .iter()
                    .map(|v| v.estimate_compact_len() + 1)
                    .sum::<usize>()
            }
            Json::Obj(pairs) => {
                2 + pairs
                    .iter()
                    .map(|(k, v)| k.len() + 4 + v.estimate_compact_len() + 1)
                    .sum::<usize>()
            }
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => out.push_str(&number_to_string(*f)),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_spaces(out, indent + STEP);
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_spaces(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_spaces(out, indent + STEP);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_spaces(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Compact rendering (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::with_capacity(self.estimate_compact_len());
        self.write_compact(&mut out);
        out
    }

    /// Compact rendering appended to a caller-owned buffer — lets report
    /// writers and periodic checkpoint savers reuse one allocation.
    pub fn write_compact_into(&self, out: &mut String) {
        out.reserve(self.estimate_compact_len());
        self.write_compact(out);
    }

    /// Pretty rendering, two-space indent.
    pub fn to_string_pretty(&self) -> String {
        // Indentation roughly doubles the compact size for report-shaped
        // documents (one scalar per line).
        let mut out = String::with_capacity(self.estimate_compact_len() * 2);
        self.write_pretty(&mut out, 0);
        out
    }

    /// Pretty rendering appended to a caller-owned buffer; see
    /// [`Json::write_compact_into`].
    pub fn write_pretty_into(&self, out: &mut String) {
        out.reserve(self.estimate_compact_len() * 2);
        self.write_pretty(out, 0);
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_string_compact())
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = (v << 4) | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                _ => {
                    // Bulk-copy everything up to the next delimiter. The
                    // delimiters are ASCII, so scanning bytes never splits
                    // a multi-byte UTF-8 sequence.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let span = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(span);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

impl Json {
    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input"));
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to JSON.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Converts JSON into `Self`.
    fn from_json(v: &Json) -> Result<Self, JsonError>;

    /// Called when a struct field's key is absent entirely. Overridden by
    /// `Option<T>` (absent means `None`); everything else errors.
    fn from_missing_field(name: &str) -> Result<Self, JsonError> {
        Err(JsonError::new(format!("missing field {name:?}")))
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Json, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<bool, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::new(format!("expected bool, got {v}")))
    }
}

macro_rules! json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Json::Int(v as i64)
                } else {
                    Json::UInt(v)
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<$t, JsonError> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| JsonError::new(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(u)
                    .map_err(|_| JsonError::new(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
json_uint!(u8, u16, u32, u64, usize);

macro_rules! json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<$t, JsonError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| JsonError::new(format!("expected integer, got {v}")))?;
                <$t>::try_from(i)
                    .map_err(|_| JsonError::new(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
json_int!(i8, i16, i32, i64);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        if self.fract() == 0.0 && self.abs() < 9.0e15 {
            Json::Int(*self as i64)
        } else {
            Json::Float(*self)
        }
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<f64, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::new(format!("expected number, got {v}")))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<String, JsonError> {
        v.as_str()
            .map(String::from)
            .ok_or_else(|| JsonError::new(format!("expected string, got {v}")))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>, JsonError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }

    fn from_missing_field(_name: &str) -> Result<Option<T>, JsonError> {
        Ok(None)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::new(format!("expected array, got {v}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl ToJson for Duration {
    /// Serialized as `{"secs": u64, "nanos": u32}`, the shape serde uses
    /// for `std::time::Duration`.
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("secs", self.as_secs().to_json()),
            ("nanos", self.subsec_nanos().to_json()),
        ])
    }
}

impl FromJson for Duration {
    fn from_json(v: &Json) -> Result<Duration, JsonError> {
        let secs = u64::from_json(&v["secs"])
            .map_err(|e| JsonError::new(format!("Duration.secs: {e}")))?;
        let nanos = u32::from_json(&v["nanos"])
            .map_err(|e| JsonError::new(format!("Duration.nanos: {e}")))?;
        Ok(Duration::new(secs, nanos))
    }
}

// ---------------------------------------------------------------------------
// Derive macros
// ---------------------------------------------------------------------------

/// Implements [`ToJson`] + [`FromJson`] for a plain struct: an object with
/// one key per listed field, in declaration order.
///
/// ```
/// use lazyeye_json::{impl_json_struct, FromJson, Json, ToJson};
///
/// #[derive(Debug, PartialEq)]
/// struct P { x: u32, label: Option<String> }
/// impl_json_struct!(P { x, label });
///
/// let p = P { x: 7, label: None };
/// let back = P::from_json(&Json::parse(&p.to_json().to_string_compact()).unwrap()).unwrap();
/// assert_eq!(back, p);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::obj(vec![
                    $((stringify!($field), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }

        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<$name, $crate::JsonError> {
                ::std::result::Result::Ok($name {
                    $($field: match v.get(stringify!($field)) {
                        ::std::option::Option::Some(fv) => {
                            $crate::FromJson::from_json(fv).map_err(|e| {
                                $crate::JsonError::new(format!(
                                    "{}.{}: {}",
                                    stringify!($name),
                                    stringify!($field),
                                    e
                                ))
                            })?
                        }
                        ::std::option::Option::None => {
                            $crate::FromJson::from_missing_field(stringify!($field)).map_err(
                                |e| {
                                    $crate::JsonError::new(format!(
                                        "{}: {}",
                                        stringify!($name),
                                        e
                                    ))
                                },
                            )?
                        }
                    },)+
                })
            }
        }
    };
}

/// Implements [`ToJson`] + [`FromJson`] for a fieldless enum: each variant
/// serializes as its name string.
///
/// ```
/// use lazyeye_json::{impl_json_unit_enum, FromJson, Json, ToJson};
///
/// #[derive(Debug, PartialEq)]
/// enum E { A, B }
/// impl_json_unit_enum!(E { A, B });
///
/// assert_eq!(E::A.to_json(), Json::Str("A".into()));
/// assert_eq!(E::from_json(&Json::Str("B".into())).unwrap(), E::B);
/// ```
#[macro_export]
macro_rules! impl_json_unit_enum {
    ($name:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $($name::$variant => $crate::Json::Str(stringify!($variant).to_string()),)+
                }
            }
        }

        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<$name, $crate::JsonError> {
                match v.as_str() {
                    $(::std::option::Option::Some(stringify!($variant)) => {
                        ::std::result::Result::Ok($name::$variant)
                    })+
                    _ => ::std::result::Result::Err($crate::JsonError::new(format!(
                        "expected one of {:?} for {}, got {}",
                        [$(stringify!($variant)),+],
                        stringify!($name),
                        v
                    ))),
                }
            }
        }
    };
}

/// Appends one CSV row to `out`: cells comma-joined, a cell quoted (with
/// `"` doubled) when it contains a comma or a quote, plus a trailing
/// newline. Shared by the campaign and fleet report writers so their
/// escaping can never diverge.
pub fn push_csv_row(out: &mut String, cells: &[String]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if cell.contains(',') || cell.contains('"') {
            out.push('"');
            out.push_str(&cell.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let src =
            r#"{"a": 1, "b": [true, null, -2.5], "c": {"d": "x\ny"}, "e": 18446744073709551615}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v["a"], 1u64);
        assert_eq!(v["b"][0], true);
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2].as_f64(), Some(-2.5));
        assert_eq!(v["c"]["d"], "x\ny");
        assert_eq!(v["e"].as_u64(), Some(u64::MAX));
        let again = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(again, v);
        let pretty = Json::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v, "é😀");
    }

    #[test]
    fn garbage_errors() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"\u{01}\"").is_err());
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::from_millis(1250);
        let j = d.to_json();
        assert_eq!(j["secs"], 1u64);
        assert_eq!(Duration::from_json(&j).unwrap(), d);
    }

    #[test]
    fn struct_macro_roundtrip() {
        #[derive(Debug, PartialEq)]
        struct S {
            n: u64,
            f: f64,
            name: String,
            opt: Option<u32>,
            list: Vec<u16>,
        }
        impl_json_struct!(S {
            n,
            f,
            name,
            opt,
            list
        });

        let s = S {
            n: u64::MAX,
            f: 2.25,
            name: "x\"y".into(),
            opt: None,
            list: vec![1, 2, 3],
        };
        let text = s.to_json().to_string_pretty();
        let back = S::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);

        // Absent Option field parses as None; absent required field errors.
        let partial = Json::parse(r#"{"n": 1, "f": 0, "name": "a", "list": []}"#).unwrap();
        assert_eq!(S::from_json(&partial).unwrap().opt, None);
        let broken = Json::parse(r#"{"n": 1}"#).unwrap();
        assert!(S::from_json(&broken).is_err());
    }

    #[test]
    fn unit_enum_macro() {
        #[derive(Debug, PartialEq)]
        enum Color {
            Red,
            Green,
        }
        impl_json_unit_enum!(Color { Red, Green });
        assert_eq!(Color::Red.to_json().as_str(), Some("Red"));
        assert_eq!(
            Color::from_json(&Json::Str("Green".into())).unwrap(),
            Color::Green
        );
        assert!(Color::from_json(&Json::Str("Blue".into())).is_err());
    }
}

//! Standard testbed topologies (paper Figure 3): a client node and a
//! server node on a direct link, plus the resolver testbed used in §5.3.

use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use lazyeye_authns::{serve as serve_dns, AuthConfig, AuthServer, TestDomain};
use lazyeye_dns::{Name, Zone, ZoneSet};
use lazyeye_net::{Host, Network};
use lazyeye_sim::{spawn_detached, Sim};

/// The two-host local testbed: `server` runs DNS (port 53) and a web
/// server (port 80); `client` runs the client under test.
pub struct LocalTopology {
    /// The simulation (owns virtual time).
    pub sim: Sim,
    /// The fabric.
    pub net: Network,
    /// Server node (dual-stack: 192.0.2.1 / 2001:db8::1).
    pub server: Host,
    /// Client node (dual-stack: 192.0.2.100 / 2001:db8::100).
    pub client: Host,
    /// Handle to the authoritative DNS instance (query log access).
    pub auth: AuthServer,
}

/// The server's well-known addresses.
pub fn server_v4() -> IpAddr {
    "192.0.2.1".parse().unwrap()
}

/// The server's IPv6 address.
pub fn server_v6() -> IpAddr {
    "2001:db8::1".parse().unwrap()
}

/// The DNS resolver address clients use in the local topology.
pub fn resolver_addr() -> SocketAddr {
    SocketAddr::new(server_v4(), 53)
}

/// The standard measurement domain.
pub fn www() -> Name {
    Name::parse("www.hetest").unwrap()
}

/// Builds the dual-stack zone for `www.hetest` pointing at the server.
/// Built once per process and cloned per run — the zone content is
/// constant, and the name parses + zone assembly were pure per-run
/// overhead in the CAD hot path.
pub fn default_zone() -> ZoneSet {
    static DEFAULT_ZONE: OnceLock<ZoneSet> = OnceLock::new();
    DEFAULT_ZONE
        .get_or_init(|| {
            let mut zone = Zone::new(Name::parse("hetest").unwrap());
            zone.a(&www(), "192.0.2.1".parse().unwrap(), 300);
            zone.aaaa(&www(), "2001:db8::1".parse().unwrap(), 300);
            let mut zones = ZoneSet::new();
            zones.add(zone);
            zones
        })
        .clone()
}

/// Builds the local testbed with the given authoritative configuration.
/// The web server accepts (and holds) connections on port 80 — Happy
/// Eyeballs measurements only need the handshake.
///
/// The simulation comes from the calling thread's [`lazyeye_sim::SimPool`]:
/// sweep runners and campaign/fleet workers recycle one executor arena
/// (task slab, timer wheel, queues) per worker thread instead of paying a
/// fresh allocation storm per run. A pooled sim is observably identical
/// to `Sim::new(seed)` — the paper's per-run container reset, without the
/// allocator bill.
pub fn local_topology(seed: u64, auth_cfg: AuthConfig) -> LocalTopology {
    let sim = lazyeye_sim::pooled(seed);
    let net = Network::new();
    let server = net.host("server").v4("192.0.2.1").v6("2001:db8::1").build();
    let client = net
        .host("client")
        .v4("192.0.2.100")
        .v6("2001:db8::100")
        .build();
    let auth = AuthServer::new(auth_cfg);
    sim.enter(|| {
        spawn_detached(serve_dns(server.udp_bind_any(53).unwrap(), auth.clone()));
        let listener = server.tcp_listen_any(80).unwrap();
        spawn_detached(async move {
            loop {
                let Ok((stream, _)) = listener.accept().await else {
                    break;
                };
                std::mem::forget(stream);
            }
        });
    });
    LocalTopology {
        sim,
        net,
        server,
        client,
        auth,
    }
}

/// Local topology with the standard `www.hetest` zone.
pub fn default_local_topology(seed: u64) -> LocalTopology {
    local_topology(
        seed,
        AuthConfig {
            zones: default_zone(),
            ..AuthConfig::default()
        },
    )
}

/// Local topology with a parameter-encoded test domain (RD and selection
/// cases). Addresses in `dead_v6`/`dead_v4` are returned by DNS but are
/// not assigned to any host — natural blackholes.
pub fn test_domain_topology(
    seed: u64,
    apex: &str,
    v4: Vec<std::net::Ipv4Addr>,
    v6: Vec<std::net::Ipv6Addr>,
) -> LocalTopology {
    local_topology(
        seed,
        AuthConfig {
            test_domains: vec![TestDomain {
                apex: Name::parse(apex).unwrap(),
                v4,
                v6,
                ttl: 60,
            }],
            ..AuthConfig::default()
        },
    )
}

/// The resolver testbed of §4.2/§5.3: a root name server, a dual-stack
/// authoritative name server for a per-run unique zone, and a resolver
/// node that runs the software/operator profile under test.
pub struct ResolverTopology {
    /// The simulation.
    pub sim: Sim,
    /// Root name server host.
    pub root: Host,
    /// Authoritative name server host (the shaped target).
    pub auth: Host,
    /// Handle to the authoritative server instance (query-log access —
    /// the trace layer's server-side observation point).
    pub auth_server: AuthServer,
    /// Host the recursive resolver runs on (dual-stack).
    pub resolver_host: Host,
    /// Root hints to configure the resolver with.
    pub roots: Vec<(Name, Vec<IpAddr>)>,
    /// The unique zone apex of this run.
    pub apex: Name,
    /// The www name inside the zone.
    pub qname: Name,
}

// ---------------------------------------------------------------------------
// Zone cache
// ---------------------------------------------------------------------------

/// Hit/miss counters of the resolver-testbed zone cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ZoneCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the zones.
    pub misses: u64,
}

/// Zone-cache key: `(run tag, configured delay)`.
type ZoneKey = (String, u64);
/// Cached value: the run's `(root, auth)` zone sets.
type ZonePair = (ZoneSet, ZoneSet);

static ZONE_CACHE: OnceLock<Mutex<HashMap<ZoneKey, ZonePair>>> = OnceLock::new();
static ZONE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static ZONE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the zone-cache counters.
pub fn zone_cache_stats() -> ZoneCacheStats {
    ZoneCacheStats {
        hits: ZONE_CACHE_HITS.load(Ordering::Relaxed),
        misses: ZONE_CACHE_MISSES.load(Ordering::Relaxed),
    }
}

/// Clears the zone cache and its counters (tests, memory-conscious
/// long-running processes).
pub fn reset_zone_cache() {
    if let Some(cache) = ZONE_CACHE.get() {
        cache.lock().expect("zone cache poisoned").clear();
    }
    ZONE_CACHE_HITS.store(0, Ordering::Relaxed);
    ZONE_CACHE_MISSES.store(0, Ordering::Relaxed);
}

/// The (root, auth) zone sets of a resolver run, cached by `(tag,
/// delay)`: zone content is a pure function of the run tag, so repeated
/// resolver cases — every resolver profile sweeps the same `(delay, rep)`
/// grid — stop rebuilding identical zones.
fn resolver_zones(run_tag: &str, delay_ms: u64) -> (ZoneSet, ZoneSet) {
    let cache = ZONE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (run_tag.to_string(), delay_ms);
    if let Some(zones) = cache.lock().expect("zone cache poisoned").get(&key) {
        ZONE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return zones.clone();
    }
    ZONE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);

    let apex = Name::parse(&format!("z{run_tag}.test")).unwrap();
    let ns_name = apex.child("ns1").unwrap();
    let qname = apex.child("www").unwrap();

    let mut root_zone = Zone::new(Name::root());
    root_zone.ns(&apex, &ns_name, 3600);
    root_zone.a(&ns_name, "192.0.2.53".parse().unwrap(), 3600);
    root_zone.aaaa(&ns_name, "2001:db8:53::53".parse().unwrap(), 3600);
    let mut root_zones = ZoneSet::new();
    root_zones.add(root_zone);

    let mut auth_zone = Zone::new(apex.clone());
    auth_zone.ns(&apex, &ns_name, 3600);
    auth_zone.a(&qname, "203.0.113.80".parse().unwrap(), 300);
    auth_zone.aaaa(&qname, "2001:db8:80::80".parse().unwrap(), 300);
    let mut auth_zones = ZoneSet::new();
    auth_zones.add(auth_zone);

    let zones = (root_zones, auth_zones);
    cache
        .lock()
        .expect("zone cache poisoned")
        .insert(key, zones.clone());
    zones
}

/// Builds the resolver testbed for one run. Per the paper, every run uses
/// a unique zone apex and unique NS names so no caching can interfere —
/// the zone *objects* come from the `(tag, delay)` cache, the simulation
/// and server instances stay per-run fresh.
pub fn resolver_topology(seed: u64, run_tag: &str) -> ResolverTopology {
    resolver_topology_for_delay(seed, run_tag, 0)
}

/// [`resolver_topology`] with the configured IPv6-path delay as part of
/// the zone-cache key (the sweep runners use this entry point).
pub fn resolver_topology_for_delay(seed: u64, run_tag: &str, delay_ms: u64) -> ResolverTopology {
    let sim = lazyeye_sim::pooled(seed);
    let net = Network::new();
    let root = net
        .host("root-ns")
        .v4("198.41.0.4")
        .v6("2001:503:ba3e::2:30")
        .build();
    let auth = net
        .host("auth-ns")
        .v4("192.0.2.53")
        .v6("2001:db8:53::53")
        .build();
    let resolver_host = net
        .host("resolver")
        .v4("192.0.2.10")
        .v6("2001:db8::10")
        .build();

    let (root_zones, auth_zones) = resolver_zones(run_tag, delay_ms);
    let apex = Name::parse(&format!("z{run_tag}.test")).unwrap();
    let qname = apex.child("www").unwrap();

    let auth_server = AuthServer::new(AuthConfig {
        zones: auth_zones,
        ..AuthConfig::default()
    });
    let auth_server_task = auth_server.clone();
    sim.enter(|| {
        spawn_detached(serve_dns(
            root.udp_bind_any(53).unwrap(),
            AuthServer::new(AuthConfig {
                zones: root_zones,
                ..AuthConfig::default()
            }),
        ));
        spawn_detached(serve_dns(auth.udp_bind_any(53).unwrap(), auth_server_task));
    });

    let roots = vec![(
        Name::parse("ns.root").unwrap(),
        vec![
            "198.41.0.4".parse::<IpAddr>().unwrap(),
            "2001:503:ba3e::2:30".parse::<IpAddr>().unwrap(),
        ],
    )];

    ResolverTopology {
        sim,
        root,
        auth,
        auth_server,
        resolver_host,
        roots,
        apex,
        qname,
    }
}

//! Test runners: execute one case configuration across delays ×
//! repetitions with a fresh simulation per run (the paper's container
//! reset), and analyze captures into samples.
//!
//! Every single-run entry point has a `*_traced` sibling that additionally
//! emits a structured [`Trace`]: the client-side engine events merged with
//! the server-side query arrivals, ready for `lazyeye-infer`.

use std::net::IpAddr;

use lazyeye_authns::{DelayTarget, QueryLogEntry};
use lazyeye_clients::{Client, ClientProfile};
use lazyeye_net::{Family, Netem, NetemRule};
use lazyeye_resolver::{RecursiveConfig, RecursiveResolver, ResolverProfile};
use lazyeye_sim::SimTime;
use lazyeye_trace::{Trace, TraceEvent, TraceEventKind, TraceMeta};

use crate::cases::{
    CadCaseConfig, DelayedRecord, RdCaseConfig, ResolverCaseConfig, SelectionCaseConfig,
};
use crate::topology::{
    default_local_topology, resolver_addr, resolver_topology_for_delay, test_domain_topology, www,
};

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Domain-separation tag for CAD sweep seeds.
pub const CAD_SEED_TAG: u64 = 0x9E37_79B9_7F4A_7C15;
/// Domain-separation tag for RD sweep seeds.
pub const RD_SEED_TAG: u64 = 0x2545_F491_4F6C_DD1D;
/// Domain-separation tag for resolver sweep seeds.
pub const RESOLVER_SEED_TAG: u64 = 0xDA94_2042_E4DD_58B5;

/// Derives the seed of one `(delay, rep)` run in a sweep from the case
/// seed via SplitMix64 mixing.
///
/// The legacy packing `delay_ms * 1000 + rep` overflow-panicked in debug
/// builds for delays near `u64::MAX` and collided across `(delay, rep)`
/// pairs once repetitions reached 1000 (`(0 ms, rep 1000)` = `(1 ms,
/// rep 0)`). Mixing each word through SplitMix64 with wrapping arithmetic
/// only removes both failure modes.
pub fn derive_case_seed(seed: u64, case_tag: u64, delay_ms: u64, rep: u32) -> u64 {
    rand::mix_words(seed ^ case_tag, &[delay_ms, u64::from(rep)])
}

/// Median of an ascending-sorted slice, averaging the two middle elements
/// for even sizes. Taking `v[len / 2]` alone — the upper-middle element —
/// biased even-sized medians upward by up to one inter-sample gap.
fn median_of_sorted(v: &[f64]) -> Option<f64> {
    match v.len() {
        0 => None,
        n if n % 2 == 1 => Some(v[n / 2]),
        n => Some((v[n / 2 - 1] + v[n / 2]) / 2.0),
    }
}

/// Server-side query arrivals as trace events (the wire-order vantage
/// point of Table 2's "AAAA first" and Table 3's family columns).
fn query_arrival_events(log: &[QueryLogEntry]) -> Vec<TraceEvent> {
    log.iter()
        .map(|e| TraceEvent {
            at_ns: e.time.as_nanos(),
            kind: TraceEventKind::QueryArrived {
                qtype: format!("{:?}", e.qtype).to_uppercase(),
                family: Family::of(e.src.ip()),
            },
        })
        .collect()
}

/// The open switchover bracket `(last_v6, first_v4)` of a sweep, when the
/// sweep detected one: the switchover lies strictly between the largest
/// delay won by IPv6 and the smallest delay at which IPv4 was used. The
/// campaign engine's second, fine pass sweeps inside this bracket.
pub fn switchover_bracket(
    last_v6_delay_ms: Option<u64>,
    first_v4_delay_ms: Option<u64>,
) -> Option<(u64, u64)> {
    match (last_v6_delay_ms, first_v4_delay_ms) {
        (Some(lo), Some(hi)) if lo < hi => Some((lo, hi)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// CAD case
// ---------------------------------------------------------------------------

/// One CAD measurement run.
#[derive(Clone, Debug)]
pub struct CadSample {
    /// Configured IPv6 delay (ms).
    pub configured_delay_ms: u64,
    /// Repetition index.
    pub rep: u32,
    /// Family of the established connection (None = failed).
    pub family: Option<Family>,
    /// CAD from the client's packet capture: first IPv4 SYN − first IPv6
    /// SYN (the paper's §4.3 estimator). None when no fallback happened.
    pub observed_cad_ms: Option<f64>,
    /// Whether the AAAA query hit the DNS server before the A query
    /// (Table 2's "AAAA first"); `None` when either query never arrived.
    pub aaaa_first: Option<bool>,
}

/// Runs a single CAD measurement: one fresh simulation (the paper's
/// container reset), one configured IPv6 delay, one connection. Extra
/// netem rules model additional path conditions (loss, jitter) and apply
/// to the server egress alongside the configured IPv6 delay.
///
/// This is the campaign engine's CAD entry point; [`run_cad_case`] wraps
/// it for sweeps, [`run_cad_once_traced`] additionally emits the trace.
pub fn run_cad_once(
    profile: &ClientProfile,
    delay_ms: u64,
    rep: u32,
    seed: u64,
    extra_netem: &[NetemRule],
) -> CadSample {
    run_cad_once_impl(profile, delay_ms, rep, seed, extra_netem, None).0
}

/// [`run_cad_once`] plus the structured event trace of the run:
/// client-side engine events merged with server-side query arrivals.
/// `condition` labels the netem condition in the trace metadata.
pub fn run_cad_once_traced(
    profile: &ClientProfile,
    delay_ms: u64,
    rep: u32,
    seed: u64,
    extra_netem: &[NetemRule],
    condition: &str,
) -> (CadSample, Trace) {
    let (sample, trace, _log) =
        run_cad_once_impl(profile, delay_ms, rep, seed, extra_netem, Some(condition));
    (sample, trace.expect("trace requested"))
}

/// [`run_cad_once`] plus the raw engine event log — the fast-path
/// calibrator's ground truth for byte-equality verification.
pub(crate) fn run_cad_once_log(
    profile: &ClientProfile,
    delay_ms: u64,
    rep: u32,
    seed: u64,
) -> (CadSample, lazyeye_core::HeLog) {
    let (sample, _trace, log) = run_cad_once_impl(profile, delay_ms, rep, seed, &[], None);
    (sample, log)
}

/// The measurement itself; the trace (string-heavy event records) is only
/// materialised when a condition label is supplied — campaign sweeps call
/// the untraced entry point hundreds of thousands of times and used to
/// build and immediately discard every trace.
fn run_cad_once_impl(
    profile: &ClientProfile,
    delay_ms: u64,
    rep: u32,
    seed: u64,
    extra_netem: &[NetemRule],
    condition: Option<&str>,
) -> (CadSample, Option<Trace>, lazyeye_core::HeLog) {
    let mut topo = default_local_topology(seed);
    // The paper shapes IPv6 on the server side with tc-netem.
    topo.server
        .add_egress(NetemRule::family(Family::V6, Netem::delay_ms(delay_ms)));
    for rule in extra_netem {
        topo.server.add_egress(rule.clone());
    }
    let client = Client::new(profile.clone(), topo.client.clone(), vec![resolver_addr()]);
    let res = topo
        .sim
        .block_on(async move { client.connect_only(&www(), 80).await });
    let family = res.connection.as_ref().ok().map(|c| c.family());
    let observed_cad_ms = topo
        .client
        .capture()
        .connection_attempt_delay()
        .map(|d| d.as_secs_f64() * 1000.0);
    let log = topo.auth.query_log();
    let first_aaaa = log
        .iter()
        .position(|e| e.qtype == lazyeye_dns::RrType::Aaaa);
    let first_a = log.iter().position(|e| e.qtype == lazyeye_dns::RrType::A);
    let aaaa_first = match (first_aaaa, first_a) {
        (Some(x), Some(y)) => Some(x < y),
        _ => None,
    };
    let trace = condition.map(|condition| {
        let mut trace = Trace::from_he_log(
            TraceMeta {
                subject: profile.id(),
                case: "cad".to_string(),
                condition: condition.to_string(),
                configured_delay_ms: delay_ms,
                rep,
                seed,
            },
            &res.log,
        );
        trace.merge_events(query_arrival_events(&log));
        trace
    });
    let sample = CadSample {
        configured_delay_ms: delay_ms,
        rep,
        family,
        observed_cad_ms,
        aaaa_first,
    };
    (sample, trace, res.log)
}

/// Runs the CAD case for one client profile.
pub fn run_cad_case(profile: &ClientProfile, cfg: &CadCaseConfig, seed: u64) -> Vec<CadSample> {
    run_cad_case_traced(profile, cfg, seed).0
}

/// Counts one testbed case sweep in the metrics registry and opens a
/// wall-clock span over it when the span recorder is armed.
fn case_span(case: &'static str) -> Option<lazyeye_obs::trace::SpanGuard> {
    lazyeye_obs::counter("testbed.cases", lazyeye_obs::Clock::Virtual).inc();
    lazyeye_obs::trace::wall_span(format!("testbed.{case}"))
}

/// [`run_cad_case`] plus the trace set of every run in the sweep.
pub fn run_cad_case_traced(
    profile: &ClientProfile,
    cfg: &CadCaseConfig,
    seed: u64,
) -> (Vec<CadSample>, lazyeye_trace::TraceSet) {
    let _span = case_span("cad");
    let mut out = Vec::new();
    let mut traces = lazyeye_trace::TraceSet::default();
    for delay_ms in cfg.sweep.values() {
        for rep in 0..cfg.repetitions {
            let run_seed = derive_case_seed(seed, CAD_SEED_TAG, delay_ms, rep);
            let (sample, trace) =
                run_cad_once_traced(profile, delay_ms, rep, run_seed, &[], "baseline");
            out.push(sample);
            traces.push(trace);
        }
    }
    (out, traces)
}

/// Aggregate view of a CAD sweep (one Figure 2 row + the Table 2 columns).
#[derive(Clone, Debug, PartialEq)]
pub struct CadSummary {
    /// Largest configured delay at which IPv6 was still used.
    pub last_v6_delay_ms: Option<u64>,
    /// Smallest configured delay at which IPv4 was used.
    pub first_v4_delay_ms: Option<u64>,
    /// Median of capture-observed CADs (ms).
    pub measured_cad_ms: Option<f64>,
    /// Whether any fallback to IPv4 was observed at all (CAD implemented).
    pub implements_cad: bool,
    /// Whether every run established *some* connection.
    pub always_connected: bool,
}

impl CadSummary {
    /// The open switchover bracket `(last_v6, first_v4)`, when detected —
    /// see [`switchover_bracket`].
    pub fn switchover_bracket(&self) -> Option<(u64, u64)> {
        switchover_bracket(self.last_v6_delay_ms, self.first_v4_delay_ms)
    }
}

/// Summarises CAD samples.
pub fn summarize_cad(samples: &[CadSample]) -> CadSummary {
    let last_v6_delay_ms = samples
        .iter()
        .filter(|s| s.family == Some(Family::V6))
        .map(|s| s.configured_delay_ms)
        .max();
    let first_v4_delay_ms = samples
        .iter()
        .filter(|s| s.family == Some(Family::V4))
        .map(|s| s.configured_delay_ms)
        .min();
    let mut cads: Vec<f64> = samples.iter().filter_map(|s| s.observed_cad_ms).collect();
    cads.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let measured_cad_ms = median_of_sorted(&cads);
    CadSummary {
        last_v6_delay_ms,
        first_v4_delay_ms,
        measured_cad_ms,
        implements_cad: first_v4_delay_ms.is_some(),
        always_connected: samples.iter().all(|s| s.family.is_some()),
    }
}

// ---------------------------------------------------------------------------
// RD case
// ---------------------------------------------------------------------------

/// One Resolution Delay measurement run.
#[derive(Clone, Debug)]
pub struct RdSample {
    /// Configured DNS answer delay (ms).
    pub configured_delay_ms: u64,
    /// Repetition index.
    pub rep: u32,
    /// Established family.
    pub family: Option<Family>,
    /// When the first TCP SYN left the client (ms since run start) —
    /// the stall observable of §5.2.
    pub first_attempt_ms: Option<f64>,
    /// Whether the engine armed a Resolution Delay timer.
    pub used_rd: bool,
}

/// The canonical cell label of a delayed record type (also the trace
/// metadata condition).
pub fn delayed_record_label(delayed: DelayedRecord) -> &'static str {
    match delayed {
        DelayedRecord::Aaaa => "delayed-aaaa",
        DelayedRecord::A => "delayed-a",
    }
}

/// Runs a single Resolution-Delay measurement: one fresh simulation, one
/// delayed record type, one configured DNS answer delay.
///
/// This is the classic RD entry point; [`run_rd_case`] wraps it for
/// sweeps, [`run_rd_once_netem`] adds path conditions and
/// [`run_rd_once_traced`] additionally emits the trace.
pub fn run_rd_once(
    profile: &ClientProfile,
    delayed: DelayedRecord,
    delay_ms: u64,
    rep: u32,
    seed: u64,
) -> RdSample {
    run_rd_once_netem(profile, delayed, delay_ms, rep, seed, &[])
}

/// [`run_rd_once`] with extra netem rules on the server egress — the
/// campaign engine's RD entry point (netem is a cell axis there).
pub fn run_rd_once_netem(
    profile: &ClientProfile,
    delayed: DelayedRecord,
    delay_ms: u64,
    rep: u32,
    seed: u64,
    extra_netem: &[NetemRule],
) -> RdSample {
    run_rd_once_impl(profile, delayed, delay_ms, rep, seed, extra_netem, None).0
}

/// [`run_rd_once`] plus the raw engine event log — the fast-path
/// calibrator's ground truth for byte-equality verification.
pub(crate) fn run_rd_once_log(
    profile: &ClientProfile,
    delayed: DelayedRecord,
    delay_ms: u64,
    rep: u32,
    seed: u64,
) -> (RdSample, lazyeye_core::HeLog) {
    let (sample, _trace, log) = run_rd_once_impl(profile, delayed, delay_ms, rep, seed, &[], None);
    (sample, log)
}

/// [`run_rd_once_netem`] plus the structured event trace of the run.
pub fn run_rd_once_traced(
    profile: &ClientProfile,
    delayed: DelayedRecord,
    delay_ms: u64,
    rep: u32,
    seed: u64,
    extra_netem: &[NetemRule],
    condition: &str,
) -> (RdSample, Trace) {
    let (sample, trace, _log) = run_rd_once_impl(
        profile,
        delayed,
        delay_ms,
        rep,
        seed,
        extra_netem,
        Some(condition),
    );
    (sample, trace.expect("trace requested"))
}

/// The RD measurement; the trace is built only when a condition label is
/// supplied (see `run_cad_once_impl`).
fn run_rd_once_impl(
    profile: &ClientProfile,
    delayed: DelayedRecord,
    delay_ms: u64,
    rep: u32,
    seed: u64,
    extra_netem: &[NetemRule],
    condition: Option<&str>,
) -> (RdSample, Option<Trace>, lazyeye_core::HeLog) {
    let target = match delayed {
        DelayedRecord::Aaaa => DelayTarget::Aaaa,
        DelayedRecord::A => DelayTarget::A,
    };
    // Live addresses (the server host's own) — RD tests measure
    // connection timing, not fallback between dead addresses.
    let mut topo = test_domain_topology(
        seed,
        "rd.test",
        vec!["192.0.2.1".parse().unwrap()],
        vec!["2001:db8::1".parse().unwrap()],
    );
    for rule in extra_netem {
        topo.server.add_egress(rule.clone());
    }
    let params = lazyeye_authns::TestParams::delay(delay_ms, target, format!("r{rep}"));
    let qname = lazyeye_dns::Name::parse(&format!("{}.rd.test", params.to_label())).unwrap();
    let client = Client::new(profile.clone(), topo.client.clone(), vec![resolver_addr()]);
    let res = topo
        .sim
        .block_on(async move { client.connect_only(&qname, 80).await });
    let family = res.connection.as_ref().ok().map(|c| c.family());
    let first_attempt_ms = topo
        .client
        .capture()
        .first_syn(Family::V6)
        .into_iter()
        .chain(topo.client.capture().first_syn(Family::V4))
        .min()
        .map(|t: SimTime| t.as_nanos() as f64 / 1e6);
    let trace = condition.map(|condition| {
        let mut trace = Trace::from_he_log(
            TraceMeta {
                subject: profile.id(),
                case: "rd".to_string(),
                condition: condition.to_string(),
                configured_delay_ms: delay_ms,
                rep,
                seed,
            },
            &res.log,
        );
        trace.merge_events(query_arrival_events(&topo.auth.query_log()));
        trace
    });
    let used_rd = res.log.used_resolution_delay();
    let sample = RdSample {
        configured_delay_ms: delay_ms,
        rep,
        family,
        first_attempt_ms,
        used_rd,
    };
    (sample, trace, res.log)
}

/// Runs the RD case (delaying AAAA or A per config) for one client.
pub fn run_rd_case(profile: &ClientProfile, cfg: &RdCaseConfig, seed: u64) -> Vec<RdSample> {
    run_rd_case_traced(profile, cfg, seed).0
}

/// [`run_rd_case`] plus the trace set of every run in the sweep.
pub fn run_rd_case_traced(
    profile: &ClientProfile,
    cfg: &RdCaseConfig,
    seed: u64,
) -> (Vec<RdSample>, lazyeye_trace::TraceSet) {
    let _span = case_span("rd");
    let mut out = Vec::new();
    let mut traces = lazyeye_trace::TraceSet::default();
    for delay_ms in cfg.sweep.values() {
        for rep in 0..cfg.repetitions {
            let run_seed = derive_case_seed(seed, RD_SEED_TAG, delay_ms, rep);
            let (sample, trace) = run_rd_once_traced(
                profile,
                cfg.delayed,
                delay_ms,
                rep,
                run_seed,
                &[],
                delayed_record_label(cfg.delayed),
            );
            out.push(sample);
            traces.push(trace);
        }
    }
    (out, traces)
}

/// Aggregate view of an RD sweep.
#[derive(Clone, Debug)]
pub struct RdSummary {
    /// Whether any run armed the RD timer (Table 2 "RD Impl.").
    pub implements_rd: bool,
    /// Largest delay at which the client still connected via IPv6.
    pub last_v6_delay_ms: Option<u64>,
    /// Median first-SYN time at the largest configured delay (ms) — large
    /// values expose the "waits for the A answer" stall.
    pub stall_at_max_delay_ms: Option<f64>,
}

/// Summarises RD samples.
pub fn summarize_rd(samples: &[RdSample]) -> RdSummary {
    let implements_rd = samples.iter().any(|s| s.used_rd);
    let last_v6_delay_ms = samples
        .iter()
        .filter(|s| s.family == Some(Family::V6))
        .map(|s| s.configured_delay_ms)
        .max();
    let max_delay = samples.iter().map(|s| s.configured_delay_ms).max();
    let stall_at_max_delay_ms = max_delay.and_then(|d| {
        let mut v: Vec<f64> = samples
            .iter()
            .filter(|s| s.configured_delay_ms == d)
            .filter_map(|s| s.first_attempt_ms)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        median_of_sorted(&v)
    });
    RdSummary {
        implements_rd,
        last_v6_delay_ms,
        stall_at_max_delay_ms,
    }
}

// ---------------------------------------------------------------------------
// Address-selection case
// ---------------------------------------------------------------------------

/// Result of an address-selection run: the family of each distinct
/// connection attempt, in order (one Figure 5 row).
#[derive(Clone, Debug)]
pub struct SelectionResult {
    /// Attempt families in order.
    pub order: Vec<Family>,
    /// Distinct IPv6 addresses attempted (Table 2 "IPv6 Addrs. Used").
    pub v6_used: usize,
    /// Distinct IPv4 addresses attempted (Table 2 "IPv4 Addrs. Used").
    pub v4_used: usize,
}

/// Runs the selection case: N dead addresses per family, watch the order.
pub fn run_selection_case(
    profile: &ClientProfile,
    cfg: &SelectionCaseConfig,
    seed: u64,
) -> SelectionResult {
    let _span = case_span("selection");
    run_selection_once_impl(profile, cfg, 0, seed, &[], None).0
}

/// [`run_selection_case`] with extra netem rules on the server egress —
/// the campaign engine's selection entry point (netem is a cell axis).
pub fn run_selection_once_netem(
    profile: &ClientProfile,
    cfg: &SelectionCaseConfig,
    seed: u64,
    extra_netem: &[NetemRule],
) -> SelectionResult {
    run_selection_once_impl(profile, cfg, 0, seed, extra_netem, None).0
}

/// [`run_selection_case`] plus the structured event trace of the run.
pub fn run_selection_once_traced(
    profile: &ClientProfile,
    cfg: &SelectionCaseConfig,
    rep: u32,
    seed: u64,
    extra_netem: &[NetemRule],
    condition: &str,
) -> (SelectionResult, Trace) {
    let (result, trace) =
        run_selection_once_impl(profile, cfg, rep, seed, extra_netem, Some(condition));
    (result, trace.expect("trace requested"))
}

/// The selection measurement; the trace is built only when a condition
/// label is supplied (see `run_cad_once_impl`).
fn run_selection_once_impl(
    profile: &ClientProfile,
    cfg: &SelectionCaseConfig,
    rep: u32,
    seed: u64,
    extra_netem: &[NetemRule],
    condition: Option<&str>,
) -> (SelectionResult, Option<Trace>) {
    let dead_v4: Vec<std::net::Ipv4Addr> = (1..=cfg.v4_addresses)
        .map(|i| format!("203.0.113.{i}").parse().unwrap())
        .collect();
    let dead_v6: Vec<std::net::Ipv6Addr> = (1..=cfg.v6_addresses)
        .map(|i| format!("2001:db8:dead::{i}").parse().unwrap())
        .collect();
    let mut topo = test_domain_topology(seed, "sel.test", dead_v4, dead_v6);
    for rule in extra_netem {
        topo.server.add_egress(rule.clone());
    }
    let mut client_profile = profile.clone();
    client_profile.he.attempt_timeout = std::time::Duration::from_millis(cfg.attempt_timeout_ms);
    client_profile.he.overall_deadline = std::time::Duration::from_secs(300);
    let qname = lazyeye_dns::Name::parse("d0-tnone-nsel.sel.test").unwrap();
    let client = Client::new(client_profile, topo.client.clone(), vec![resolver_addr()]);
    let res = topo
        .sim
        .block_on(async move { client.connect_only(&qname, 80).await });
    let trace = condition.map(|condition| {
        let mut trace = Trace::from_he_log(
            TraceMeta {
                subject: profile.id(),
                case: "selection".to_string(),
                condition: condition.to_string(),
                configured_delay_ms: 0,
                rep,
                seed,
            },
            &res.log,
        );
        trace.merge_events(query_arrival_events(&topo.auth.query_log()));
        trace
    });
    let result = SelectionResult {
        order: res.log.attempt_families(),
        v6_used: res.log.addrs_used(Family::V6),
        v4_used: res.log.addrs_used(Family::V4),
    };
    (result, trace)
}

// ---------------------------------------------------------------------------
// Resolver case
// ---------------------------------------------------------------------------

/// One resolver run against a shaped authoritative server.
#[derive(Clone, Debug)]
pub struct ResolverSample {
    /// Configured IPv6-path delay (ms).
    pub configured_delay_ms: u64,
    /// Repetition index.
    pub rep: u32,
    /// Family of the first query the auth server received.
    pub first_query_family: Option<Family>,
    /// Number of IPv6 queries the auth server received.
    pub v6_packets: usize,
    /// Observed resolver CAD at the auth server: first v4 query − first v6
    /// query (ms), when both happened.
    pub observed_cad_ms: Option<f64>,
    /// Gap between the first two IPv6 queries (ms) — the per-try timeout
    /// of retrying resolvers (Unbound's 376 ms, Yandex's 300 ms).
    pub v6_retry_gap_ms: Option<f64>,
    /// Whether the resolution ultimately succeeded.
    pub resolved: bool,
    /// Whether the *answer used* came over IPv6 (the v6 exchange
    /// completed before any fallback).
    pub served_over_v6: bool,
}

/// Runs a single resolver measurement: one fresh simulation with a
/// per-run unique zone (served from the `(tag, delay)` zone cache), one
/// configured IPv6-path delay towards the authoritative NS.
///
/// [`run_resolver_case`] wraps it for sweeps, [`run_resolver_once_netem`]
/// adds path conditions and [`run_resolver_once_traced`] additionally
/// emits the trace.
pub fn run_resolver_once(
    rprofile: &ResolverProfile,
    delay_ms: u64,
    rep: u32,
    seed: u64,
) -> ResolverSample {
    run_resolver_once_netem(rprofile, delay_ms, rep, seed, &[])
}

/// [`run_resolver_once`] with extra netem rules on the authoritative
/// server's egress — the campaign engine's resolver entry point.
pub fn run_resolver_once_netem(
    rprofile: &ResolverProfile,
    delay_ms: u64,
    rep: u32,
    seed: u64,
    extra_netem: &[NetemRule],
) -> ResolverSample {
    run_resolver_once_impl(rprofile, delay_ms, rep, seed, extra_netem, None).0
}

/// [`run_resolver_once_netem`] plus the server-side event trace of the
/// run (query arrivals at the authoritative NS).
pub fn run_resolver_once_traced(
    rprofile: &ResolverProfile,
    delay_ms: u64,
    rep: u32,
    seed: u64,
    extra_netem: &[NetemRule],
    condition: &str,
) -> (ResolverSample, Trace) {
    let (sample, trace) =
        run_resolver_once_impl(rprofile, delay_ms, rep, seed, extra_netem, Some(condition));
    (sample, trace.expect("trace requested"))
}

/// The resolver measurement; the trace is built only when a condition
/// label is supplied (see `run_cad_once_impl`).
fn run_resolver_once_impl(
    rprofile: &ResolverProfile,
    delay_ms: u64,
    rep: u32,
    seed: u64,
    extra_netem: &[NetemRule],
    condition: Option<&str>,
) -> (ResolverSample, Option<Trace>) {
    let tag = format!("d{delay_ms}r{rep}");
    let mut topo = resolver_topology_for_delay(seed, &tag, delay_ms);
    // Shape the auth NS's IPv6 responses (the paper applies the
    // shaping to the name server's addresses).
    topo.auth
        .add_egress(NetemRule::family(Family::V6, Netem::delay_ms(delay_ms)));
    for rule in extra_netem {
        topo.auth.add_egress(rule.clone());
    }
    let mut rcfg = RecursiveConfig::new(topo.roots.clone());
    rcfg.policy = rprofile.policy.clone();
    let resolver = RecursiveResolver::new(topo.resolver_host.clone(), rcfg);
    let qname = topo.qname.clone();
    let resolved = topo.sim.block_on(async move {
        resolver
            .resolve(&qname, lazyeye_dns::RrType::A)
            .await
            .map(|r| !r.records.is_empty())
            .unwrap_or(false)
    });

    // Server-side observation (the paper's Table 3 vantage point).
    let cap = topo.auth.capture();
    let mut v6_queries: Vec<SimTime> = Vec::new();
    let mut v4_queries: Vec<SimTime> = Vec::new();
    for r in cap.udp_rx() {
        match r.family() {
            Family::V6 => v6_queries.push(r.time),
            Family::V4 => v4_queries.push(r.time),
        }
    }
    // Capture order is arrival order, which breaks same-instant
    // ties correctly (parallel resolvers send both queries in the
    // same tick).
    let first_query_family = cap.udp_rx().next().map(|r| r.family());
    let observed_cad_ms = match (v6_queries.first(), v4_queries.first()) {
        (Some(a), Some(b)) if b > a => Some(b.saturating_duration_since(*a).as_secs_f64() * 1000.0),
        _ => None,
    };
    let v6_retry_gap_ms = if v6_queries.len() >= 2 {
        Some(
            v6_queries[1]
                .saturating_duration_since(v6_queries[0])
                .as_secs_f64()
                * 1000.0,
        )
    } else {
        None
    };
    let served_over_v6 =
        resolved && first_query_family == Some(Family::V6) && v4_queries.is_empty();
    let trace = condition.map(|condition| Trace {
        meta: TraceMeta {
            subject: rprofile.name.to_string(),
            case: "resolver".to_string(),
            condition: condition.to_string(),
            configured_delay_ms: delay_ms,
            rep,
            seed,
        },
        events: query_arrival_events(&topo.auth_server.query_log()),
    });
    let sample = ResolverSample {
        configured_delay_ms: delay_ms,
        rep,
        first_query_family,
        v6_packets: v6_queries.len(),
        observed_cad_ms,
        v6_retry_gap_ms,
        resolved,
        served_over_v6,
    };
    (sample, trace)
}

/// Runs the resolver case for one resolver profile.
pub fn run_resolver_case(
    rprofile: &ResolverProfile,
    cfg: &ResolverCaseConfig,
    seed: u64,
) -> Vec<ResolverSample> {
    run_resolver_case_traced(rprofile, cfg, seed).0
}

/// [`run_resolver_case`] plus the trace set of every run in the sweep.
pub fn run_resolver_case_traced(
    rprofile: &ResolverProfile,
    cfg: &ResolverCaseConfig,
    seed: u64,
) -> (Vec<ResolverSample>, lazyeye_trace::TraceSet) {
    let _span = case_span("resolver");
    let mut out = Vec::new();
    let mut traces = lazyeye_trace::TraceSet::default();
    for delay_ms in cfg.sweep.values() {
        for rep in 0..cfg.repetitions {
            let run_seed = derive_case_seed(seed, RESOLVER_SEED_TAG, delay_ms, rep);
            let (sample, trace) =
                run_resolver_once_traced(rprofile, delay_ms, rep, run_seed, &[], "-");
            out.push(sample);
            traces.push(trace);
        }
    }
    (out, traces)
}

/// Aggregate resolver statistics — one row of the paper's Table 3.
#[derive(Clone, Debug)]
pub struct ResolverStats {
    /// Share of runs whose first auth query used IPv6 (%), measured at the
    /// *smallest* configured delay in the sweep (pure preference when the
    /// sweep includes delay 0). `None` when the sweep produced no samples
    /// at all — previously this collapsed to `0.0`, indistinguishable
    /// from a resolver that genuinely never prefers IPv6.
    pub v6_share_pct: Option<f64>,
    /// Largest configured delay at which resolution was still served over
    /// IPv6 (the "Max. IPv6 Delay Used" column).
    pub max_v6_delay_ms: Option<u64>,
    /// Median observed per-try timeout (ms): the gap between consecutive
    /// IPv6 retries when the resolver retries, otherwise first-v4 −
    /// first-v6 — the paper's per-resolver delay column.
    pub observed_cad_ms: Option<f64>,
    /// Maximum number of IPv6 queries in one resolution ("# IPv6 Packets").
    pub max_v6_packets: usize,
    /// Share of runs that resolved at all.
    pub success_pct: f64,
}

/// Summarises resolver samples.
pub fn summarize_resolver(samples: &[ResolverSample]) -> ResolverStats {
    let min_delay = samples.iter().map(|s| s.configured_delay_ms).min();
    let v6_share_pct = min_delay.map(|d| {
        let at_min: Vec<&ResolverSample> = samples
            .iter()
            .filter(|s| s.configured_delay_ms == d)
            .collect();
        100.0
            * at_min
                .iter()
                .filter(|s| s.first_query_family == Some(Family::V6))
                .count() as f64
            / at_min.len() as f64
    });
    let max_v6_delay_ms = samples
        .iter()
        .filter(|s| s.served_over_v6)
        .map(|s| s.configured_delay_ms)
        .max();
    // Per-try timeout: prefer retry gaps (retrying resolvers), fall back
    // to the v6→v4 switch time.
    let mut cads: Vec<f64> = samples.iter().filter_map(|s| s.v6_retry_gap_ms).collect();
    if cads.is_empty() {
        cads = samples.iter().filter_map(|s| s.observed_cad_ms).collect();
    }
    cads.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let observed_cad_ms = median_of_sorted(&cads);
    ResolverStats {
        v6_share_pct,
        max_v6_delay_ms,
        observed_cad_ms,
        max_v6_packets: samples.iter().map(|s| s.v6_packets).max().unwrap_or(0),
        success_pct: 100.0 * samples.iter().filter(|s| s.resolved).count() as f64
            / samples.len().max(1) as f64,
    }
}

/// Formats an optional IPv6 address count/delay for tables.
pub fn fmt_opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
}

/// Formats an optional float with one decimal.
pub fn fmt_opt_f64(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.1}")).unwrap_or_else(|| "-".into())
}

/// Tracks which IP addresses the samples used — exposed for tests.
pub fn distinct_families(order: &[Family]) -> (usize, usize) {
    (
        order.iter().filter(|f| **f == Family::V6).count(),
        order.iter().filter(|f| **f == Family::V4).count(),
    )
}

/// Helper for tests that need an address list.
pub fn dead_addr(i: usize) -> IpAddr {
    format!("203.0.113.{i}").parse().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cad_sample(delay_ms: u64, cad: Option<f64>) -> CadSample {
        CadSample {
            configured_delay_ms: delay_ms,
            rep: 0,
            family: Some(Family::V4),
            observed_cad_ms: cad,
            aaaa_first: None,
        }
    }

    fn resolver_sample(delay_ms: u64, v6_first: bool) -> ResolverSample {
        ResolverSample {
            configured_delay_ms: delay_ms,
            rep: 0,
            first_query_family: Some(if v6_first { Family::V6 } else { Family::V4 }),
            v6_packets: 1,
            observed_cad_ms: None,
            v6_retry_gap_ms: None,
            resolved: true,
            served_over_v6: v6_first,
        }
    }

    #[test]
    fn median_averages_even_sample_counts() {
        // Odd count: the middle element, exactly.
        let odd: Vec<CadSample> = [100.0, 200.0, 300.0]
            .iter()
            .map(|&c| cad_sample(0, Some(c)))
            .collect();
        assert_eq!(summarize_cad(&odd).measured_cad_ms, Some(200.0));

        // Even count: the average of the two middle elements — the old
        // upper-middle pick reported 300 here, biased a full gap upward.
        let even: Vec<CadSample> = [100.0, 200.0, 300.0, 400.0]
            .iter()
            .map(|&c| cad_sample(0, Some(c)))
            .collect();
        assert_eq!(summarize_cad(&even).measured_cad_ms, Some(250.0));

        // Two samples: plain midpoint.
        let two: Vec<CadSample> = [100.0, 200.0]
            .iter()
            .map(|&c| cad_sample(0, Some(c)))
            .collect();
        assert_eq!(summarize_cad(&two).measured_cad_ms, Some(150.0));
    }

    #[test]
    fn rd_stall_median_averages_even_counts() {
        let sample = |stall: f64| RdSample {
            configured_delay_ms: 400,
            rep: 0,
            family: Some(Family::V6),
            first_attempt_ms: Some(stall),
            used_rd: false,
        };
        let samples: Vec<RdSample> = [10.0, 20.0, 30.0, 40.0]
            .iter()
            .map(|&s| sample(s))
            .collect();
        assert_eq!(summarize_rd(&samples).stall_at_max_delay_ms, Some(25.0));
    }

    #[test]
    fn resolver_share_is_none_without_samples_and_measured_at_min_delay() {
        // No samples at all: absent, not a fake 0.0.
        assert_eq!(summarize_resolver(&[]).v6_share_pct, None);

        // Sweep without a zero-delay cell: the share comes from the
        // smallest configured delay instead of silently reporting 0.0.
        let samples = vec![
            resolver_sample(200, true),
            resolver_sample(200, true),
            resolver_sample(400, false),
        ];
        assert_eq!(summarize_resolver(&samples).v6_share_pct, Some(100.0));

        // A genuine never-IPv6 resolver still reads 0.0 — now
        // distinguishable from the no-data case.
        let never = vec![resolver_sample(0, false), resolver_sample(0, false)];
        assert_eq!(summarize_resolver(&never).v6_share_pct, Some(0.0));

        // Even-sized CAD lists are averaged here too.
        let mut gaps = vec![resolver_sample(0, true), resolver_sample(0, true)];
        gaps[0].v6_retry_gap_ms = Some(100.0);
        gaps[1].v6_retry_gap_ms = Some(300.0);
        assert_eq!(summarize_resolver(&gaps).observed_cad_ms, Some(200.0));
    }

    #[test]
    fn case_seed_mixing_has_no_overflow_and_no_collisions() {
        // The legacy packing panicked in debug builds on delay_ms * 1000
        // overflow; the SplitMix64 mix must not.
        let _ = derive_case_seed(7, CAD_SEED_TAG, u64::MAX, u32::MAX);

        // The legacy packing collided: (0 ms, rep 1000) == (1 ms, rep 0).
        let mut seen = std::collections::BTreeSet::new();
        for delay_ms in [0u64, 1, 2, 5, 200, 1000, 100_000, u64::MAX / 1000] {
            for rep in [0u32, 1, 2, 999, 1000, 1001, 50_000] {
                assert!(
                    seen.insert(derive_case_seed(42, CAD_SEED_TAG, delay_ms, rep)),
                    "seed collision at ({delay_ms}, {rep})"
                );
            }
        }
        // Case tags separate the sweeps even for identical (delay, rep).
        assert_ne!(
            derive_case_seed(42, CAD_SEED_TAG, 100, 0),
            derive_case_seed(42, RD_SEED_TAG, 100, 0)
        );
        assert_ne!(
            derive_case_seed(42, RD_SEED_TAG, 100, 0),
            derive_case_seed(42, RESOLVER_SEED_TAG, 100, 0)
        );
    }

    #[test]
    fn switchover_bracket_requires_both_ends_in_order() {
        assert_eq!(switchover_bracket(Some(200), Some(300)), Some((200, 300)));
        assert_eq!(switchover_bracket(Some(300), Some(300)), None);
        assert_eq!(switchover_bracket(Some(300), Some(200)), None);
        assert_eq!(switchover_bracket(None, Some(300)), None);
        assert_eq!(switchover_bracket(Some(200), None), None);
        let summary = summarize_cad(&[cad_sample(300, None)]);
        assert_eq!(summary.switchover_bracket(), None, "v4-only sweep");
    }
}

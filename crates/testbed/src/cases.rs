//! Declarative test-case configuration, mirroring the paper's framework
//! (App. B, Figure 3): test cases, sweep ranges and repetition counts are
//! data, not code, so coarse initial runs and fine-grained follow-ups are
//! plain config edits.

use lazyeye_json::{FromJson, Json, JsonError, ToJson};

/// An inclusive millisecond sweep: `start..=end` stepping by `step`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepSpec {
    /// First delay value (ms).
    pub start_ms: u64,
    /// Last delay value (ms), inclusive.
    pub end_ms: u64,
    /// Step (ms); must be non-zero.
    pub step_ms: u64,
}

impl SweepSpec {
    /// A new sweep.
    pub fn new(start_ms: u64, end_ms: u64, step_ms: u64) -> SweepSpec {
        assert!(step_ms > 0, "sweep step must be non-zero");
        SweepSpec {
            start_ms,
            end_ms,
            step_ms,
        }
    }

    /// The paper's fine CAD sweep: 0–400 ms in 5 ms steps.
    pub fn paper_fine() -> SweepSpec {
        SweepSpec::new(0, 400, 5)
    }

    /// The paper's coarse initial sweep (wide, cheap).
    pub fn paper_coarse() -> SweepSpec {
        SweepSpec::new(0, 2500, 250)
    }

    /// A fine sweep strictly inside the open switchover bracket
    /// `(last_v6, first_v4)`: values `last_v6 + step, last_v6 + 2·step, …`
    /// up to (excluding) `first_v4`. Returns `None` when the bracket is
    /// already no wider than one step — there is nothing left to refine.
    ///
    /// This is the paper's coarse→fine workflow (§5.1): a coarse sweep
    /// locates the bracket, then this sweep pins the switchover down to
    /// `step_ms` resolution.
    pub fn refine_within(last_v6: u64, first_v4: u64, step_ms: u64) -> Option<SweepSpec> {
        if step_ms == 0 || first_v4 <= last_v6 {
            return None;
        }
        let start = last_v6.checked_add(step_ms)?;
        if start >= first_v4 {
            return None;
        }
        Some(SweepSpec::new(start, first_v4 - 1, step_ms))
    }

    /// Materialises the delay values. A zero step (possible only via
    /// deserialized configs, [`SweepSpec::new`] rejects it) yields just the
    /// start value instead of looping forever.
    pub fn values(&self) -> Vec<u64> {
        if self.step_ms == 0 {
            return vec![self.start_ms];
        }
        let mut out = Vec::new();
        let mut v = self.start_ms;
        while v <= self.end_ms {
            out.push(v);
            match v.checked_add(self.step_ms) {
                Some(next) => v = next,
                None => break,
            }
        }
        out
    }
}

/// Connection Attempt Delay case: delay IPv6 on the server side, sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CadCaseConfig {
    /// The sweep of configured IPv6 delays.
    pub sweep: SweepSpec,
    /// Repetitions per delay value (paper: ≥ 20 samples per client).
    pub repetitions: u32,
}

impl Default for CadCaseConfig {
    fn default() -> Self {
        CadCaseConfig {
            sweep: SweepSpec::paper_fine(),
            repetitions: 3,
        }
    }
}

/// Which DNS record type a Resolution Delay case delays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DelayedRecord {
    /// Delay the AAAA answer (the classic RD test).
    Aaaa,
    /// Delay the A answer (the paper's §5.2 stall scenario).
    A,
}

/// Resolution Delay case: delay one record type at the DNS server, sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RdCaseConfig {
    /// Which record type to delay.
    pub delayed: DelayedRecord,
    /// The sweep of DNS answer delays.
    pub sweep: SweepSpec,
    /// Repetitions per delay value.
    pub repetitions: u32,
}

impl Default for RdCaseConfig {
    fn default() -> Self {
        RdCaseConfig {
            delayed: DelayedRecord::Aaaa,
            sweep: SweepSpec::new(0, 400, 25),
            repetitions: 3,
        }
    }
}

/// Address-selection case: N unresponsive addresses per family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectionCaseConfig {
    /// Number of (dead) IPv6 addresses offered.
    pub v6_addresses: usize,
    /// Number of (dead) IPv4 addresses offered.
    pub v4_addresses: usize,
    /// Per-attempt give-up (keeps runs bounded).
    pub attempt_timeout_ms: u64,
}

impl Default for SelectionCaseConfig {
    fn default() -> Self {
        // The paper's setup: ten addresses per family, none responding.
        SelectionCaseConfig {
            v6_addresses: 10,
            v4_addresses: 10,
            attempt_timeout_ms: 3000,
        }
    }
}

/// Resolver case: per-delay dedicated zones, shaping on the authoritative
/// server's IPv6 path (§4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolverCaseConfig {
    /// The sweep of IPv6-path delays towards the authoritative NS.
    pub sweep: SweepSpec,
    /// Repetitions per delay value.
    pub repetitions: u32,
}

impl Default for ResolverCaseConfig {
    fn default() -> Self {
        ResolverCaseConfig {
            sweep: SweepSpec::new(0, 1400, 100),
            repetitions: 8,
        }
    }
}

/// A complete testbed configuration (serializable; the framework's single
/// config file).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestbedConfig {
    /// Base RNG seed; run `i` of a case uses `seed + i`.
    pub seed: u64,
    /// CAD case, if enabled.
    pub cad: Option<CadCaseConfig>,
    /// RD case, if enabled.
    pub rd: Option<RdCaseConfig>,
    /// Selection case, if enabled.
    pub selection: Option<SelectionCaseConfig>,
    /// Resolver case, if enabled.
    pub resolver: Option<ResolverCaseConfig>,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            seed: 42,
            cad: Some(CadCaseConfig::default()),
            rd: Some(RdCaseConfig::default()),
            selection: Some(SelectionCaseConfig::default()),
            resolver: Some(ResolverCaseConfig::default()),
        }
    }
}

lazyeye_json::impl_json_struct!(SweepSpec {
    start_ms,
    end_ms,
    step_ms,
});
lazyeye_json::impl_json_struct!(CadCaseConfig { sweep, repetitions });
lazyeye_json::impl_json_unit_enum!(DelayedRecord { Aaaa, A });
lazyeye_json::impl_json_struct!(RdCaseConfig {
    delayed,
    sweep,
    repetitions,
});
lazyeye_json::impl_json_struct!(SelectionCaseConfig {
    v6_addresses,
    v4_addresses,
    attempt_timeout_ms,
});
lazyeye_json::impl_json_struct!(ResolverCaseConfig { sweep, repetitions });
lazyeye_json::impl_json_struct!(TestbedConfig {
    seed,
    cad,
    rd,
    selection,
    resolver,
});

impl TestbedConfig {
    /// Loads a config from JSON.
    pub fn from_json(s: &str) -> Result<TestbedConfig, JsonError> {
        FromJson::from_json(&Json::parse(s)?)
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_values_inclusive() {
        assert_eq!(SweepSpec::new(0, 20, 5).values(), vec![0, 5, 10, 15, 20]);
        assert_eq!(SweepSpec::new(10, 10, 5).values(), vec![10]);
        assert_eq!(SweepSpec::new(0, 9, 5).values(), vec![0, 5]);
    }

    #[test]
    fn refine_within_stays_inside_the_bracket() {
        // Coarse bracket (200, 300) at 5 ms: strictly between the ends.
        let sweep = SweepSpec::refine_within(200, 300, 5).unwrap();
        let values = sweep.values();
        assert_eq!(values.first(), Some(&205));
        assert_eq!(values.last(), Some(&295));
        assert!(values.iter().all(|&v| v > 200 && v < 300));

        // A bracket exactly one coarse step wide at the same step: nothing
        // between the ends.
        assert!(SweepSpec::refine_within(200, 205, 5).is_none());
        // Degenerate and inverted brackets refine to nothing.
        assert!(SweepSpec::refine_within(200, 200, 5).is_none());
        assert!(SweepSpec::refine_within(300, 200, 5).is_none());
        assert!(SweepSpec::refine_within(200, 300, 0).is_none());
        // Near-overflow start must not panic.
        assert!(SweepSpec::refine_within(u64::MAX - 2, u64::MAX, 5).is_none());
    }

    #[test]
    fn paper_fine_sweep_has_81_points() {
        // 0..=400 step 5 → 81 configurations, as in §5.1.
        assert_eq!(SweepSpec::paper_fine().values().len(), 81);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_step_panics() {
        SweepSpec::new(0, 10, 0);
    }

    #[test]
    fn config_json_roundtrip() {
        let cfg = TestbedConfig::default();
        let json = cfg.to_json();
        let back = TestbedConfig::from_json(&json).unwrap();
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.cad.unwrap().sweep, cfg.cad.unwrap().sweep);
        assert_eq!(back.rd.unwrap().delayed, DelayedRecord::Aaaa);
    }

    #[test]
    fn partial_config_parses() {
        let cfg = TestbedConfig::from_json(
            r#"{"seed": 7, "cad": {"sweep": {"start_ms":0,"end_ms":100,"step_ms":50}, "repetitions": 2},
                "rd": null, "selection": null, "resolver": null}"#,
        )
        .unwrap();
        assert_eq!(cfg.seed, 7);
        assert!(cfg.rd.is_none());
        assert_eq!(cfg.cad.unwrap().sweep.values(), vec![0, 50, 100]);
    }
}

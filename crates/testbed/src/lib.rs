//! # lazyeye-testbed — the local testbed framework
//!
//! The reimplementation of the paper's measurement framework (§4, App. B
//! Figure 3): standard [`topology`] setups (client + server on a direct
//! link; the resolver testbed), declarative [`cases`] configs with sweep
//! ranges and repetitions, [`runner`]s that execute a case with a fresh
//! simulation per run (the container-reset equivalent), capture-based
//! analyzers (the CAD estimator of §4.3), the Table 2 [`features`] matrix,
//! and result [`table`] rendering (text/CSV/JSON).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cases;
pub mod fastpath;
pub mod features;
pub mod runner;
pub mod table;
pub mod topology;

pub use cases::{
    CadCaseConfig, DelayedRecord, RdCaseConfig, ResolverCaseConfig, SelectionCaseConfig, SweepSpec,
    TestbedConfig,
};
pub use fastpath::{run_cad_case_fast, run_rd_case_fast, CadFastPath, RdFastPath};
pub use features::{evaluate_client_features, FeatureRow};
pub use runner::{
    delayed_record_label, derive_case_seed, run_cad_case, run_cad_case_traced, run_cad_once,
    run_cad_once_traced, run_rd_case, run_rd_case_traced, run_rd_once, run_rd_once_netem,
    run_rd_once_traced, run_resolver_case, run_resolver_case_traced, run_resolver_once,
    run_resolver_once_netem, run_resolver_once_traced, run_selection_case,
    run_selection_once_netem, run_selection_once_traced, summarize_cad, summarize_rd,
    summarize_resolver, switchover_bracket, CadSample, CadSummary, RdSample, RdSummary,
    ResolverSample, ResolverStats, SelectionResult, CAD_SEED_TAG, RD_SEED_TAG, RESOLVER_SEED_TAG,
};
pub use table::Table;
pub use topology::{reset_zone_cache, zone_cache_stats, ZoneCacheStats};

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_clients::{chromium_hev3_flag, figure2_clients, safari_clients, table2_clients};
    use lazyeye_net::Family;
    use lazyeye_resolver::{bind9, knot, open_resolver_profiles, unbound};

    fn client(name: &str) -> lazyeye_clients::ClientProfile {
        figure2_clients()
            .into_iter()
            .rfind(|c| c.name == name)
            .unwrap()
    }

    /// A focused sweep around the expected switchover keeps tests fast.
    fn sweep_around(center: u64) -> CadCaseConfig {
        CadCaseConfig {
            sweep: SweepSpec::new(center.saturating_sub(60), center + 60, 20),
            repetitions: 1,
        }
    }

    #[test]
    fn chromium_switchover_at_300ms() {
        let samples = run_cad_case(&client("Chrome"), &sweep_around(300), 1);
        let s = summarize_cad(&samples);
        assert_eq!(s.last_v6_delay_ms, Some(300), "v6 up to its 300 ms CAD");
        assert_eq!(s.first_v4_delay_ms, Some(320));
        let cad = s.measured_cad_ms.unwrap();
        assert!((299.0..302.0).contains(&cad), "measured {cad} ms");
    }

    #[test]
    fn firefox_switchover_at_250ms() {
        let samples = run_cad_case(&client("Firefox"), &sweep_around(250), 2);
        let s = summarize_cad(&samples);
        assert_eq!(s.last_v6_delay_ms, Some(250));
        assert_eq!(s.first_v4_delay_ms, Some(270));
    }

    #[test]
    fn curl_switchover_at_200ms() {
        let samples = run_cad_case(&client("curl"), &sweep_around(200), 3);
        let s = summarize_cad(&samples);
        assert_eq!(s.last_v6_delay_ms, Some(200));
        assert_eq!(s.first_v4_delay_ms, Some(220));
    }

    #[test]
    fn wget_never_falls_back() {
        let samples = run_cad_case(&client("wget"), &sweep_around(300), 4);
        let s = summarize_cad(&samples);
        assert!(!s.implements_cad, "wget implements no HE at all");
        assert!(s.always_connected, "within its timeout v6 still succeeds");
        assert_eq!(s.first_v4_delay_ms, None);
    }

    #[test]
    fn safari_local_cad_is_2s() {
        // Fresh state ⇒ dynamic CAD = 2 s (the paper's local observation).
        let profile = safari_clients().into_iter().find(|c| !c.mobile).unwrap();
        let cfg = CadCaseConfig {
            sweep: SweepSpec::new(1900, 2100, 100),
            repetitions: 1,
        };
        let samples = run_cad_case(&profile, &cfg, 5);
        let s = summarize_cad(&samples);
        assert_eq!(s.last_v6_delay_ms, Some(2000));
        assert_eq!(s.first_v4_delay_ms, Some(2100));
    }

    #[test]
    fn only_safari_implements_rd() {
        let rd_cfg = RdCaseConfig {
            delayed: DelayedRecord::Aaaa,
            sweep: SweepSpec::new(300, 300, 1),
            repetitions: 1,
        };
        let safari = safari_clients().into_iter().find(|c| !c.mobile).unwrap();
        assert!(summarize_rd(&run_rd_case(&safari, &rd_cfg, 6)).implements_rd);
        for name in ["Chrome", "Firefox", "curl", "wget"] {
            assert!(
                !summarize_rd(&run_rd_case(&client(name), &rd_cfg, 6)).implements_rd,
                "{name} must not implement RD"
            );
        }
    }

    #[test]
    fn delayed_a_stalls_chrome_but_not_safari() {
        // §5.2: all but Safari wait for the A answer before connecting at
        // all, even though AAAA answered immediately.
        let rd_cfg = RdCaseConfig {
            delayed: DelayedRecord::A,
            sweep: SweepSpec::new(800, 800, 1),
            repetitions: 1,
        };
        let chrome = run_rd_case(&client("Chrome"), &rd_cfg, 7);
        assert!(chrome[0].first_attempt_ms.unwrap() >= 800.0);
        assert_eq!(chrome[0].family, Some(Family::V6), "still v6, just late");

        let safari = safari_clients().into_iter().find(|c| !c.mobile).unwrap();
        let s = run_rd_case(&safari, &rd_cfg, 7);
        assert!(
            s[0].first_attempt_ms.unwrap() < 50.0,
            "Safari connects immediately ({} ms)",
            s[0].first_attempt_ms.unwrap()
        );
    }

    #[test]
    fn hev3_flag_fixes_the_stall() {
        let rd_cfg = RdCaseConfig {
            delayed: DelayedRecord::A,
            sweep: SweepSpec::new(800, 800, 1),
            repetitions: 1,
        };
        let fixed = run_rd_case(&chromium_hev3_flag(), &rd_cfg, 8);
        assert!(
            fixed[0].first_attempt_ms.unwrap() < 50.0,
            "HEv3 flag removes the wait-for-A behaviour"
        );
    }

    #[test]
    fn selection_safari_vs_hev1_clients() {
        let cfg = SelectionCaseConfig::default();
        let safari = safari_clients().into_iter().find(|c| !c.mobile).unwrap();
        let s = run_selection_case(&safari, &cfg, 9);
        assert_eq!(s.v6_used, 10);
        assert_eq!(s.v4_used, 10);
        assert_eq!(&s.order[..3], &[Family::V6, Family::V6, Family::V4]);

        let c = run_selection_case(&client("Chrome"), &cfg, 9);
        assert_eq!((c.v6_used, c.v4_used), (1, 1), "HEv1: one of each, stop");
        let w = run_selection_case(&client("wget"), &cfg, 9);
        assert_eq!((w.v6_used, w.v4_used), (1, 0), "wget: one v6, no fallback");
    }

    #[test]
    fn feature_matrix_matches_table2() {
        for profile in table2_clients() {
            let row = evaluate_client_features(&profile, 10);
            assert!(row.prefers_v6, "{}: prefers IPv6", row.client);
            match profile.name {
                "Safari" | "Mobile Safari" => {
                    assert!(row.cad_impl && row.rd_impl && row.addr_selection, "{row:?}");
                    assert!(row.aaaa_first);
                }
                "wget" => {
                    assert!(!row.cad_impl && !row.rd_impl && !row.addr_selection);
                    assert!(!row.aaaa_first, "wget sends A first");
                }
                "Firefox" => {
                    assert!(row.cad_impl && !row.rd_impl && !row.addr_selection);
                    assert!(!row.aaaa_first, "Table 2: Firefox not AAAA-first");
                }
                _ => {
                    assert!(row.cad_impl, "{}", row.client);
                    assert!(!row.rd_impl, "{}", row.client);
                    assert!(!row.addr_selection, "{}", row.client);
                    assert!(row.aaaa_first, "{}", row.client);
                }
            }
        }
    }

    #[test]
    fn zone_cache_hits_on_repeated_tag_delay() {
        use crate::topology::resolver_topology_for_delay;
        // A key unique to this test: the first build must miss, the
        // second must hit. Counters are process-global (other tests add
        // their own traffic), so assert deltas, not absolutes.
        let before = zone_cache_stats();
        let _ = resolver_topology_for_delay(1, "zone-cache-test", 7777);
        let mid = zone_cache_stats();
        assert!(mid.misses > before.misses, "first build is a miss");
        let _ = resolver_topology_for_delay(2, "zone-cache-test", 7777);
        let after = zone_cache_stats();
        assert!(
            after.hits > mid.hits,
            "rebuilding the same (tag, delay) zones must hit the cache: {after:?} vs {mid:?}"
        );
    }

    #[test]
    fn repeated_resolver_sweeps_reuse_cached_zones() {
        let cfg = ResolverCaseConfig {
            sweep: SweepSpec::new(7600, 7600, 1),
            repetitions: 2,
        };
        let _ = run_resolver_case(&bind9(), &cfg, 17);
        let mid = zone_cache_stats();
        // A second sweep over the same (delay, rep) grid — as every
        // additional resolver profile in a campaign produces — must be
        // all hits, no new zone builds.
        let _ = run_resolver_case(&unbound(), &cfg, 18);
        let after = zone_cache_stats();
        assert!(after.hits >= mid.hits + 2, "{after:?} vs {mid:?}");
    }

    #[test]
    fn traced_cad_run_round_trips_and_matches_sample() {
        use lazyeye_json::{FromJson, Json};
        let (sample, trace) = run_cad_once_traced(&client("Chrome"), 1000, 0, 21, &[], "baseline");
        assert_eq!(sample.family, Some(Family::V4), "1 s v6 delay forces v4");
        assert_eq!(trace.established_family(), Some(Family::V4));
        let trace_cad = trace.observed_cad_ms().unwrap();
        let sample_cad = sample.observed_cad_ms.unwrap();
        assert!(
            (trace_cad - sample_cad).abs() < 2.0,
            "trace CAD {trace_cad} vs capture CAD {sample_cad}"
        );
        assert_eq!(trace.aaaa_first(), Some(true), "server-side wire order");
        // Serialisation round-trip is byte-identical.
        let mut set = lazyeye_trace::TraceSet::default();
        set.push(trace);
        let text = set.to_json_string();
        let back = lazyeye_trace::TraceSet::from_json_str(&text).unwrap();
        assert_eq!(back.to_json_string(), text);
        // And parses as plain JSON with the expected metadata.
        let v = Json::parse(&text).unwrap();
        assert_eq!(
            String::from_json(&v["traces"][0]["meta"]["subject"]).unwrap(),
            "chrome-130.0"
        );
    }

    #[test]
    fn traced_rd_run_records_the_armed_delay() {
        let safari = safari_clients().into_iter().find(|c| !c.mobile).unwrap();
        let (sample, trace) = run_rd_once_traced(
            &safari,
            DelayedRecord::Aaaa,
            300,
            0,
            22,
            &[],
            "delayed-aaaa",
        );
        assert!(sample.used_rd);
        assert_eq!(trace.resolution_delay_ms(), Some(50), "Safari arms 50 ms");
    }

    #[test]
    fn bind_resolver_stats() {
        let cfg = ResolverCaseConfig {
            sweep: SweepSpec::new(0, 1000, 250),
            repetitions: 4,
        };
        let stats = summarize_resolver(&run_resolver_case(&bind9(), &cfg, 11));
        assert_eq!(stats.v6_share_pct, Some(100.0), "BIND always prefers IPv6");
        // 800 ms timeout: still served over v6 at 750, not at 1000.
        assert_eq!(stats.max_v6_delay_ms, Some(750));
        let cad = stats.observed_cad_ms.unwrap();
        assert!(
            (795.0..810.0).contains(&cad),
            "BIND CAD ≈ 800 ms, got {cad}"
        );
        assert_eq!(stats.max_v6_packets, 1);
        assert!((stats.success_pct - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn opendns_he_style_50ms() {
        let profile = open_resolver_profiles()
            .into_iter()
            .find(|p| p.name == "OpenDNS")
            .unwrap();
        let cfg = ResolverCaseConfig {
            sweep: SweepSpec::new(0, 200, 100),
            repetitions: 4,
        };
        let stats = summarize_resolver(&run_resolver_case(&profile, &cfg, 12));
        assert_eq!(stats.v6_share_pct, Some(100.0));
        let cad = stats.observed_cad_ms.unwrap();
        assert!(
            (49.0..60.0).contains(&cad),
            "OpenDNS falls back after 50 ms, got {cad}"
        );
    }

    #[test]
    fn unbound_shares_and_backoff() {
        let cfg = ResolverCaseConfig {
            sweep: SweepSpec::new(0, 0, 1),
            repetitions: 60,
        };
        let stats = summarize_resolver(&run_resolver_case(&unbound(), &cfg, 13));
        let share = stats.v6_share_pct.unwrap();
        assert!(
            (30.0..70.0).contains(&share),
            "Unbound ≈ 50/50 preference, got {share}"
        );
        // Backoff: with a dead v6 path Unbound sometimes sends 2 v6 packets.
        let cfg2 = ResolverCaseConfig {
            sweep: SweepSpec::new(2000, 2000, 1),
            repetitions: 20,
        };
        let stats2 = summarize_resolver(&run_resolver_case(&unbound(), &cfg2, 14));
        assert!(stats2.max_v6_packets >= 2, "same-address retry observed");
    }

    #[test]
    fn knot_share_near_quarter() {
        let cfg = ResolverCaseConfig {
            sweep: SweepSpec::new(0, 0, 1),
            repetitions: 80,
        };
        let stats = summarize_resolver(&run_resolver_case(&knot(), &cfg, 15));
        let share = stats.v6_share_pct.unwrap();
        assert!((12.0..45.0).contains(&share), "Knot ≈ 25-28 %, got {share}");
    }

    #[test]
    fn google_never_uses_v6() {
        let profile = open_resolver_profiles()
            .into_iter()
            .find(|p| p.name == "Google P. DNS")
            .unwrap();
        let cfg = ResolverCaseConfig {
            sweep: SweepSpec::new(0, 0, 1),
            repetitions: 10,
        };
        let stats = summarize_resolver(&run_resolver_case(&profile, &cfg, 16));
        assert_eq!(stats.v6_share_pct, Some(0.0));
        assert_eq!(stats.max_v6_packets, 0);
    }
}

//! Compiled fast path for CAD and RD sweeps.
//!
//! A sweep runs the same statically-known topology dozens of times,
//! varying only one delay parameter. Under the latency-only network
//! model every per-run timing is a pure function of that parameter: the
//! configured IPv6 egress delay adds exactly to the IPv6 handshake
//! duration (CAD case), and the configured answer delay adds exactly to
//! the delayed record's arrival (RD case). So instead of simulating every
//! `(delay, rep)` cell, this module:
//!
//! 1. **calibrates** once — a probe run at delay 0 records the DNS answer
//!    timeline and per-endpoint handshake durations;
//! 2. **models** each cell by shifting the calibrated timeline
//!    analytically;
//! 3. **verifies** the model against full simulation at the sweep
//!    endpoints (byte-comparing the `HeLog` event streams); and
//! 4. **drives** the pure [`HeMachine`](lazyeye_core::HeMachine) over the
//!    modelled timeline via [`lazyeye_core::fastpath::drive`].
//!
//! Any crack in the model — an endpoint verification mismatch, a
//! same-instant tie the analytic driver refuses to order, a cached-path
//! run — falls back to full simulation, per run or for the whole sweep.
//! The fallback discipline is what keeps fast-path results byte-identical
//! to simulated ones rather than merely close.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::rc::Rc;
use std::time::Duration;

use lazyeye_clients::ClientProfile;
use lazyeye_core::fastpath::{drive, AttemptOutcome, Timeline};
use lazyeye_core::{CandidateProto, HeLog};
use lazyeye_dns::RrType;
use lazyeye_net::Family;
use lazyeye_resolver::{DnsAnswer, StubConfig, StubResolver};
use lazyeye_sim::SimTime;

use crate::cases::{CadCaseConfig, DelayedRecord, RdCaseConfig};
use crate::runner::{
    derive_case_seed, run_cad_once, run_cad_once_log, run_rd_once, run_rd_once_log, CadSample,
    RdSample, CAD_SEED_TAG, RD_SEED_TAG,
};
use crate::topology::{
    default_local_topology, resolver_addr, server_v4, server_v6, test_domain_topology, www,
    LocalTopology,
};

fn counter(name: &'static str) -> &'static lazyeye_obs::Counter {
    lazyeye_obs::counter(name, lazyeye_obs::Clock::Virtual)
}

/// Books one fallback: the aggregate `fastpath.fallbacks` stays the sum
/// of the per-reason `fastpath.fallbacks{reason=..}` breakdown, and the
/// flight recorder gets a `fastpath.fallback` event.
fn note_fallback(reason: &'static str) {
    counter("fastpath.fallbacks").inc();
    lazyeye_obs::counter_labeled(
        "fastpath.fallbacks",
        "reason",
        reason,
        lazyeye_obs::Clock::Virtual,
    )
    .inc();
    lazyeye_obs::recorder::record(lazyeye_obs::Clock::Virtual, "fastpath.fallback", reason);
}

/// The delays a sweep's model is verified at: both endpoints. The shift
/// model is affine in the delay, so agreeing at the extremes (plus the
/// analytic driver's refusal of every ordering tie in between) covers the
/// interior cells.
pub fn verify_endpoints(sweep_values: &[u64]) -> Vec<u64> {
    let mut v: Vec<u64> = sweep_values
        .first()
        .into_iter()
        .chain(sweep_values.last())
        .copied()
        .collect();
    v.dedup();
    v
}

/// Replicates [`lazyeye_clients::Client`]'s stub configuration for a
/// non-QUIC profile (the fast path refuses QUIC profiles before this is
/// called — their HTTPS-record flow adds a query the model doesn't carry,
/// and QUIC handshakes are invisible to the SYN-based pcap estimators).
fn stub_config_for(profile: &ClientProfile) -> StubConfig {
    let mut cfg = StubConfig {
        servers: vec![resolver_addr()],
        ..StubConfig::default()
    };
    cfg.order = profile.stub_order;
    cfg
}

/// One calibration probe: resolves `qname` through the profile's stub
/// configuration and handshakes each server endpoint once, recording the
/// event [`Timeline`] a delay-0 run exhibits. Runs on a fresh topology so
/// the probe's absolute times are run-relative (the pooled sim starts at
/// virtual zero, like every sweep run).
fn probe(profile: &ClientProfile, topo: &mut LocalTopology, qname: &lazyeye_dns::Name) -> Timeline {
    let host = topo.client.clone();
    let stub = Rc::new(StubResolver::new(host.clone(), stub_config_for(profile)));
    let attempt_timeout = profile.he.attempt_timeout;
    let qname = qname.clone();
    topo.sim.block_on(async move {
        let mut dns: Vec<(SimTime, DnsAnswer)> = Vec::new();
        {
            let mut rx = stub.resolve_streaming(&qname);
            while let Some(ans) = rx.recv().await {
                dns.push((lazyeye_sim::now(), ans));
            }
        }
        let mut connect = HashMap::new();
        for addr in [server_v6(), server_v4()] {
            let t0 = lazyeye_sim::now();
            let dst = SocketAddr::new(addr, 80);
            let outcome = match lazyeye_sim::timeout(attempt_timeout, host.tcp_connect(dst)).await {
                Ok(Ok(_stream)) => AttemptOutcome {
                    duration: lazyeye_sim::now() - t0,
                    result: Ok(()),
                },
                Ok(Err(e)) => AttemptOutcome {
                    duration: lazyeye_sim::now() - t0,
                    result: Err(e.label()),
                },
                // Past the timeout the exact duration is unobservable and
                // irrelevant; anything beyond it makes the driver time out.
                Err(lazyeye_sim::Elapsed) => AttemptOutcome {
                    duration: attempt_timeout + Duration::from_nanos(1),
                    result: Err("timeout"),
                },
            };
            connect.insert((addr, CandidateProto::Tcp), outcome);
        }
        Timeline { dns, connect }
    })
}

fn cad_samples_agree(a: &CadSample, b: &CadSample) -> bool {
    a.family == b.family && a.observed_cad_ms == b.observed_cad_ms && a.aaaa_first == b.aaaa_first
}

fn rd_samples_agree(a: &RdSample, b: &RdSample) -> bool {
    a.family == b.family && a.first_attempt_ms == b.first_attempt_ms && a.used_rd == b.used_rd
}

// ---------------------------------------------------------------------------
// CAD fast path
// ---------------------------------------------------------------------------

/// Calibrated analytic model of one client's CAD sweep.
pub struct CadFastPath {
    cfg: lazyeye_core::HeConfig,
    qtypes: Vec<RrType>,
    base: Timeline,
    aaaa_first: Option<bool>,
}

impl CadFastPath {
    /// Calibrates the model for `profile` and verifies it against full
    /// simulation at each `(delay_ms, run_seed)` pair in `verify` —
    /// normally the sweep endpoints at rep 0, under the seeds those runs
    /// really use. Returns `None` — meaning "simulate everything" — on a
    /// QUIC profile or any verification mismatch. `probe_seed` seeds the
    /// calibration topology only; the model itself is seed-free.
    pub fn calibrate(
        profile: &ClientProfile,
        probe_seed: u64,
        verify: &[(u64, u64)],
    ) -> Option<CadFastPath> {
        if profile.he.use_quic {
            note_fallback("quic");
            return None;
        }
        counter("fastpath.calibrations").inc();
        let mut topo = default_local_topology(probe_seed);
        let base = probe(profile, &mut topo, &www());
        let log = topo.auth.query_log();
        let first_aaaa = log.iter().position(|e| e.qtype == RrType::Aaaa);
        let first_a = log.iter().position(|e| e.qtype == RrType::A);
        let aaaa_first = match (first_aaaa, first_a) {
            (Some(x), Some(y)) => Some(x < y),
            _ => None,
        };
        let fp = CadFastPath {
            cfg: profile.he.clone(),
            qtypes: StubConfig::default().qtypes,
            base,
            aaaa_first,
        };
        for &(delay_ms, run_seed) in verify {
            let (actual, actual_log) = run_cad_once_log(profile, delay_ms, 0, run_seed);
            let Ok((predicted, predicted_log)) = fp.run_logged(delay_ms, 0) else {
                return None;
            };
            if predicted_log.events != actual_log.events || !cad_samples_agree(&predicted, &actual)
            {
                return None;
            }
        }
        Some(fp)
    }

    /// One modelled cell: the configured IPv6 egress delay adds to the
    /// IPv6 handshake duration (SYN-ACKs traverse the delayed egress; the
    /// DNS exchange rides IPv4 and is untouched). `None` means this cell
    /// must be simulated.
    pub fn run(&self, delay_ms: u64, rep: u32) -> Option<CadSample> {
        self.run_detailed(delay_ms, rep).ok()
    }

    /// Like [`CadFastPath::run`], but surfaces *why* the model refused —
    /// one of `tie`, `unknown_candidate`, `cached_path` — for the
    /// per-reason fallback counters and the trigger engine.
    pub fn run_detailed(&self, delay_ms: u64, rep: u32) -> Result<CadSample, &'static str> {
        match self.run_logged(delay_ms, rep) {
            Ok((sample, _)) => {
                counter("fastpath.runs").inc();
                Ok(sample)
            }
            Err(reason) => {
                note_fallback(reason);
                Err(reason)
            }
        }
    }

    fn run_logged(&self, delay_ms: u64, rep: u32) -> Result<(CadSample, HeLog), &'static str> {
        let mut timeline = self.base.clone();
        timeline
            .connect
            .get_mut(&(server_v6(), CandidateProto::Tcp))
            .ok_or("unknown_candidate")?
            .duration += Duration::from_millis(delay_ms);
        let run = drive(&self.cfg, self.qtypes.clone(), SimTime::ZERO, &timeline)
            .map_err(|r| r.label())?;
        let sample = CadSample {
            configured_delay_ms: delay_ms,
            rep,
            family: run.result.as_ref().ok().map(|w| w.family),
            observed_cad_ms: run.log.observed_cad().map(|d| d.as_secs_f64() * 1000.0),
            aaaa_first: self.aaaa_first,
        };
        Ok((sample, run.log))
    }
}

/// [`crate::runner::run_cad_case`] through the fast path: calibrate once,
/// model every cell, simulate only what the model refuses. Produces the
/// exact sample sequence of the simulated sweep.
pub fn run_cad_case_fast(
    profile: &ClientProfile,
    cfg: &CadCaseConfig,
    seed: u64,
) -> Vec<CadSample> {
    let delays = cfg.sweep.values();
    let verify: Vec<(u64, u64)> = verify_endpoints(&delays)
        .into_iter()
        .map(|d| (d, derive_case_seed(seed, CAD_SEED_TAG, d, 0)))
        .collect();
    let fp = CadFastPath::calibrate(profile, seed, &verify);
    let mut out = Vec::new();
    for delay_ms in delays {
        for rep in 0..cfg.repetitions {
            let sample = fp
                .as_ref()
                .and_then(|fp| fp.run(delay_ms, rep))
                .unwrap_or_else(|| {
                    let run_seed = derive_case_seed(seed, CAD_SEED_TAG, delay_ms, rep);
                    run_cad_once(profile, delay_ms, rep, run_seed, &[])
                });
            out.push(sample);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// RD fast path
// ---------------------------------------------------------------------------

/// Calibrated analytic model of one client's Resolution-Delay sweep.
pub struct RdFastPath {
    cfg: lazyeye_core::HeConfig,
    qtypes: Vec<RrType>,
    base: Timeline,
    target: RrType,
}

impl RdFastPath {
    /// Calibrates the model for `profile` with `delayed` record type and
    /// verifies as [`CadFastPath::calibrate`] does.
    pub fn calibrate(
        profile: &ClientProfile,
        delayed: DelayedRecord,
        probe_seed: u64,
        verify: &[(u64, u64)],
    ) -> Option<RdFastPath> {
        if profile.he.use_quic {
            note_fallback("quic");
            return None;
        }
        counter("fastpath.calibrations").inc();
        let target = match delayed {
            DelayedRecord::Aaaa => lazyeye_authns::DelayTarget::Aaaa,
            DelayedRecord::A => lazyeye_authns::DelayTarget::A,
        };
        let mut topo = test_domain_topology(
            probe_seed,
            "rd.test",
            vec!["192.0.2.1".parse().unwrap()],
            vec!["2001:db8::1".parse().unwrap()],
        );
        // Delay-0 probe name; the engine log carries no names, so the
        // calibration nonce never leaks into modelled runs.
        let params = lazyeye_authns::TestParams::delay(0, target, "cal");
        let qname = lazyeye_dns::Name::parse(&format!("{}.rd.test", params.to_label())).unwrap();
        let base = probe(profile, &mut topo, &qname);
        let fp = RdFastPath {
            cfg: profile.he.clone(),
            qtypes: StubConfig::default().qtypes,
            base,
            target: match delayed {
                DelayedRecord::Aaaa => RrType::Aaaa,
                DelayedRecord::A => RrType::A,
            },
        };
        for &(delay_ms, run_seed) in verify {
            let (actual, actual_log) = run_rd_once_log(profile, delayed, delay_ms, 0, run_seed);
            let Ok((predicted, predicted_log)) = fp.run_logged(delay_ms, 0) else {
                return None;
            };
            if predicted_log.events != actual_log.events || !rd_samples_agree(&predicted, &actual) {
                return None;
            }
        }
        Some(fp)
    }

    /// One modelled cell: the configured answer delay shifts the delayed
    /// record's arrival; the channel re-sorts by arrival time. A shifted
    /// answer landing at the same instant as an unshifted one makes the
    /// channel order simulator-dependent, so that cell refuses.
    pub fn run(&self, delay_ms: u64, rep: u32) -> Option<RdSample> {
        self.run_detailed(delay_ms, rep).ok()
    }

    /// Like [`RdFastPath::run`], but surfaces the refusal reason; see
    /// [`CadFastPath::run_detailed`].
    pub fn run_detailed(&self, delay_ms: u64, rep: u32) -> Result<RdSample, &'static str> {
        match self.run_logged(delay_ms, rep) {
            Ok((sample, _)) => {
                counter("fastpath.runs").inc();
                Ok(sample)
            }
            Err(reason) => {
                note_fallback(reason);
                Err(reason)
            }
        }
    }

    fn run_logged(&self, delay_ms: u64, rep: u32) -> Result<(RdSample, HeLog), &'static str> {
        let shift = Duration::from_millis(delay_ms);
        let mut entries: Vec<(SimTime, bool, DnsAnswer)> = self
            .base
            .dns
            .iter()
            .map(|(t, ans)| {
                if ans.qtype == self.target {
                    let mut ans = ans.clone();
                    ans.at += shift;
                    (*t + shift, true, ans)
                } else {
                    (*t, false, ans.clone())
                }
            })
            .collect();
        // Stable by time: equally-shifted answers keep their calibrated
        // channel order; a cross-shift tie is ambiguous.
        entries.sort_by_key(|(t, _, _)| *t);
        if entries
            .windows(2)
            .any(|w| w[0].0 == w[1].0 && w[0].1 != w[1].1)
        {
            return Err("tie");
        }
        let timeline = Timeline {
            dns: entries.into_iter().map(|(t, _, ans)| (t, ans)).collect(),
            connect: self.base.connect.clone(),
        };
        let run = drive(&self.cfg, self.qtypes.clone(), SimTime::ZERO, &timeline)
            .map_err(|r| r.label())?;
        let first_attempt_ms = [Family::V6, Family::V4]
            .iter()
            .filter_map(|f| run.log.first_attempt(*f))
            .min()
            .map(|t| t.as_nanos() as f64 / 1e6);
        let sample = RdSample {
            configured_delay_ms: delay_ms,
            rep,
            family: run.result.as_ref().ok().map(|w| w.family),
            first_attempt_ms,
            used_rd: run.log.used_resolution_delay(),
        };
        Ok((sample, run.log))
    }
}

/// [`crate::runner::run_rd_case`] through the fast path; see
/// [`run_cad_case_fast`].
pub fn run_rd_case_fast(profile: &ClientProfile, cfg: &RdCaseConfig, seed: u64) -> Vec<RdSample> {
    let delays = cfg.sweep.values();
    let verify: Vec<(u64, u64)> = verify_endpoints(&delays)
        .into_iter()
        .map(|d| (d, derive_case_seed(seed, RD_SEED_TAG, d, 0)))
        .collect();
    let fp = RdFastPath::calibrate(profile, cfg.delayed, seed, &verify);
    let mut out = Vec::new();
    for delay_ms in delays {
        for rep in 0..cfg.repetitions {
            let sample = fp
                .as_ref()
                .and_then(|fp| fp.run(delay_ms, rep))
                .unwrap_or_else(|| {
                    let run_seed = derive_case_seed(seed, RD_SEED_TAG, delay_ms, rep);
                    run_rd_once(profile, cfg.delayed, delay_ms, rep, run_seed)
                });
            out.push(sample);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::SweepSpec;
    use crate::runner::{run_cad_case, run_rd_case};
    use lazyeye_clients::table2_clients;

    fn cad_eq(a: &CadSample, b: &CadSample) {
        assert_eq!(a.configured_delay_ms, b.configured_delay_ms);
        assert_eq!(a.rep, b.rep);
        assert!(cad_samples_agree(a, b), "{a:?} vs {b:?}");
    }

    fn rd_eq(a: &RdSample, b: &RdSample) {
        assert_eq!(a.configured_delay_ms, b.configured_delay_ms);
        assert_eq!(a.rep, b.rep);
        assert!(rd_samples_agree(a, b), "{a:?} vs {b:?}");
    }

    #[test]
    fn cad_fast_matches_simulated_sweep() {
        let cfg = CadCaseConfig {
            sweep: SweepSpec {
                start_ms: 0,
                end_ms: 400,
                step_ms: 100,
            },
            repetitions: 2,
        };
        for profile in table2_clients() {
            let slow = run_cad_case(&profile, &cfg, 7);
            let fast = run_cad_case_fast(&profile, &cfg, 7);
            assert_eq!(slow.len(), fast.len());
            for (a, b) in fast.iter().zip(&slow) {
                cad_eq(a, b);
            }
        }
    }

    #[test]
    fn rd_fast_matches_simulated_sweep() {
        let cfg = RdCaseConfig {
            delayed: DelayedRecord::Aaaa,
            sweep: SweepSpec {
                start_ms: 0,
                end_ms: 120,
                step_ms: 40,
            },
            repetitions: 2,
        };
        for profile in table2_clients() {
            let slow = run_rd_case(&profile, &cfg, 11);
            let fast = run_rd_case_fast(&profile, &cfg, 11);
            assert_eq!(slow.len(), fast.len());
            for (a, b) in fast.iter().zip(&slow) {
                rd_eq(a, b);
            }
        }
    }

    #[test]
    fn quic_profile_refuses_calibration() {
        // No shipped profile races QUIC by default; flip the knob on one.
        let mut p = table2_clients().remove(0);
        p.he.use_quic = true;
        let aggregate = counter("fastpath.fallbacks");
        let quic = lazyeye_obs::counter_labeled(
            "fastpath.fallbacks",
            "reason",
            "quic",
            lazyeye_obs::Clock::Virtual,
        );
        let (agg_before, quic_before) = (aggregate.get(), quic.get());
        assert!(CadFastPath::calibrate(&p, 1, &[]).is_none());
        assert_eq!(quic.get(), quic_before + 1, "quic refusal labeled");
        assert_eq!(aggregate.get(), agg_before + 1, "aggregate stays the sum");
    }
}

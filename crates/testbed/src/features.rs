//! The Table 2 feature matrix: evaluates one client profile's Happy
//! Eyeballs features through black-box testbed runs.

use lazyeye_clients::ClientProfile;
use lazyeye_dns::RrType;
use lazyeye_net::Family;

use crate::cases::{CadCaseConfig, DelayedRecord, RdCaseConfig, SelectionCaseConfig, SweepSpec};
use crate::runner::{run_cad_case, run_rd_case, run_selection_case, summarize_cad, summarize_rd};
use crate::topology::{default_local_topology, resolver_addr, www};

/// One row of the Table 2 feature matrix.
#[derive(Clone, Debug)]
pub struct FeatureRow {
    /// Client label ("Chrome 130.0").
    pub client: String,
    /// Prefers IPv6 on a healthy dual-stack path.
    pub prefers_v6: bool,
    /// Implements a Connection Attempt Delay (falls back when v6 is slow).
    pub cad_impl: bool,
    /// Sends the AAAA query before the A query.
    pub aaaa_first: bool,
    /// Implements the Resolution Delay.
    pub rd_impl: bool,
    /// Distinct IPv4 addresses attempted in the selection test ("-" when
    /// none).
    pub v4_addrs_used: usize,
    /// Distinct IPv6 addresses attempted.
    pub v6_addrs_used: usize,
    /// Shows real address selection (goes beyond one address per family).
    pub addr_selection: bool,
}

impl FeatureRow {
    /// Renders a cell: `•` observed / `◦` not observed (ASCII variants).
    pub fn mark(v: bool) -> &'static str {
        if v {
            "yes"
        } else {
            "no"
        }
    }
}

/// Evaluates all Table 2 features for one client profile.
pub fn evaluate_client_features(profile: &ClientProfile, seed: u64) -> FeatureRow {
    // (1) Prefers IPv6: healthy dual-stack run.
    let mut topo = default_local_topology(seed);
    let client =
        lazyeye_clients::Client::new(profile.clone(), topo.client.clone(), vec![resolver_addr()]);
    let auth = topo.auth.clone();
    let healthy = topo
        .sim
        .block_on(async move { client.connect_only(&www(), 80).await });
    let prefers_v6 = healthy.connection.as_ref().ok().map(|c| c.family()) == Some(Family::V6);

    // (2) AAAA first: wire order at the DNS server.
    let log = auth.query_log();
    let aaaa_first = {
        let first_aaaa = log.iter().position(|e| e.qtype == RrType::Aaaa);
        let first_a = log.iter().position(|e| e.qtype == RrType::A);
        matches!((first_aaaa, first_a), (Some(x), Some(y)) if x < y)
    };

    // (3) CAD: does a large IPv6 delay provoke IPv4 fallback?
    let cad_cfg = CadCaseConfig {
        sweep: SweepSpec::new(6000, 6000, 1),
        repetitions: 1,
    };
    let cad = summarize_cad(&run_cad_case(profile, &cad_cfg, seed + 1));
    let cad_impl = cad.implements_cad;

    // (4) RD: delayed AAAA — does the client arm a resolution-delay timer?
    let rd_cfg = RdCaseConfig {
        delayed: DelayedRecord::Aaaa,
        sweep: SweepSpec::new(400, 400, 1),
        repetitions: 1,
    };
    let rd = summarize_rd(&run_rd_case(profile, &rd_cfg, seed + 2));
    let rd_impl = rd.implements_rd;

    // (5) Address selection: 10 + 10 dead addresses.
    let sel = run_selection_case(profile, &SelectionCaseConfig::default(), seed + 3);

    FeatureRow {
        client: format!("{} {}", profile.name, profile.version),
        prefers_v6,
        cad_impl,
        aaaa_first,
        rd_impl,
        v4_addrs_used: sel.v4_used,
        v6_addrs_used: sel.v6_used,
        addr_selection: sel.v6_used > 1 || sel.v4_used > 1,
    }
}

//! Result tables: aligned text (for the terminal), CSV and JSON exports.

use lazyeye_json::ToJson;

/// A rendered result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

lazyeye_json::impl_json_struct!(Table {
    title,
    headers,
    rows,
});

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<&str>) -> Table {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Renders as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (RFC 4180-ish quoting).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as JSON.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", vec!["client", "cad"]);
        t.row(vec!["Chrome".into(), "300 ms".into()]);
        t.row(vec!["curl, the tool".into(), "200 ms".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        assert!(text.contains("== Demo =="));
        let lines: Vec<&str> = text.lines().collect();
        // "cad" column starts at the same offset in header and rows.
        let header_idx = lines[1].find("cad").unwrap();
        let row_idx = lines[3].find("300 ms").unwrap();
        assert_eq!(header_idx, row_idx);
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"curl, the tool\""));
        assert!(csv.starts_with("client,cad\n"));
    }

    #[test]
    fn json_roundtrip() {
        let json = sample().to_json();
        let v = lazyeye_json::Json::parse(&json).unwrap();
        assert_eq!(v["title"], "Demo");
        assert_eq!(v["rows"][0][0], "Chrome");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}

//! Property-based tests of the resolver selection policy: the attempt
//! planner must uphold its invariants for any candidate set and any RNG
//! samples.

use lazyeye_net::Family;
use lazyeye_resolver::{plan_attempts, prefer_v6, RetryStyle, SelectionPolicy, V6Preference};
use proptest::prelude::*;
use std::net::IpAddr;
use std::time::Duration;

fn arb_addrs() -> impl Strategy<Value = Vec<IpAddr>> {
    (
        proptest::collection::btree_set(any::<u128>(), 0..6),
        proptest::collection::btree_set(any::<u32>(), 0..6),
    )
        .prop_map(|(v6, v4)| {
            let mut out: Vec<IpAddr> = v6
                .into_iter()
                .map(|v| IpAddr::V6(std::net::Ipv6Addr::from(v)))
                .collect();
            out.extend(
                v4.into_iter()
                    .map(|v| IpAddr::V4(std::net::Ipv4Addr::from(v))),
            );
            out
        })
}

fn arb_policy() -> impl Strategy<Value = SelectionPolicy> {
    (
        0.0f64..1.0,
        50u64..2000,
        0.0f64..1.0,
        1.0f64..4.0,
        proptest::bool::ANY,
        1u32..10,
    )
        .prop_map(
            |(pref, timeout_ms, retry_same, backoff, interleave, max)| SelectionPolicy {
                ns_query_style: lazyeye_resolver::NsQueryStyle::AaaaBeforeA,
                v6_preference: V6Preference::Probability(pref),
                server_timeout: Duration::from_millis(timeout_ms),
                retry_same_prob: retry_same,
                backoff_factor: backoff,
                retry_style: if interleave {
                    RetryStyle::SwitchFamily
                } else {
                    RetryStyle::StickToFamily
                },
                max_attempts: max,
                parallel_families: false,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The plan never exceeds max_attempts and only uses offered addrs.
    #[test]
    fn plan_is_bounded_and_grounded(
        policy in arb_policy(),
        addrs in arb_addrs(),
        v6_first in proptest::bool::ANY,
        coins in proptest::collection::vec(0.0f64..1.0, 0..16),
    ) {
        let plan = plan_attempts(&policy, &addrs, v6_first, &coins);
        prop_assert!(plan.len() <= policy.max_attempts as usize);
        for a in &plan {
            prop_assert!(addrs.contains(&a.addr));
        }
    }

    /// Without same-address retries, every planned address is distinct
    /// and every candidate appears at most once.
    #[test]
    fn no_retry_means_distinct_addresses(
        mut policy in arb_policy(),
        addrs in arb_addrs(),
        v6_first in proptest::bool::ANY,
    ) {
        policy.retry_same_prob = 0.0;
        policy.max_attempts = 32;
        let plan = plan_attempts(&policy, &addrs, v6_first, &[]);
        let mut seen = std::collections::HashSet::new();
        for a in &plan {
            prop_assert!(seen.insert(a.addr), "address {} repeated", a.addr);
        }
        prop_assert_eq!(plan.len(), addrs.len(), "all candidates planned");
    }

    /// Backoff retries strictly increase the timeout for the same address.
    #[test]
    fn backoff_is_monotone(
        addrs in arb_addrs(),
        timeout_ms in 100u64..1000,
        backoff in 1.5f64..4.0,
    ) {
        prop_assume!(!addrs.is_empty());
        let policy = SelectionPolicy {
            server_timeout: Duration::from_millis(timeout_ms),
            retry_same_prob: 1.0,
            backoff_factor: backoff,
            max_attempts: 4,
            ..SelectionPolicy::default()
        };
        // All coins say "retry".
        let plan = plan_attempts(&policy, &addrs, true, &[0.0, 0.0, 0.0, 0.0]);
        for pair in plan.windows(2) {
            if pair[0].addr == pair[1].addr {
                prop_assert!(pair[1].timeout > pair[0].timeout);
            }
        }
    }

    /// The first attempt's family always follows the v6_first decision
    /// when that family is present.
    #[test]
    fn first_family_follows_decision(
        policy in arb_policy(),
        addrs in arb_addrs(),
        v6_first in proptest::bool::ANY,
    ) {
        let want = if v6_first { Family::V6 } else { Family::V4 };
        let has_want = addrs.iter().any(|a| Family::of(*a) == want);
        prop_assume!(has_want);
        let plan = plan_attempts(&policy, &addrs, v6_first, &[]);
        prop_assert!(!plan.is_empty());
        prop_assert_eq!(Family::of(plan[0].addr), want);
    }

    /// prefer_v6 is monotone in the coin: if a coin prefers v6, any
    /// smaller coin does too.
    #[test]
    fn prefer_v6_monotone(p in 0.0f64..1.0, c1 in 0.0f64..1.0, c2 in 0.0f64..1.0) {
        let policy = SelectionPolicy {
            v6_preference: V6Preference::Probability(p),
            ..SelectionPolicy::default()
        };
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        if prefer_v6(&policy, hi) {
            prop_assert!(prefer_v6(&policy, lo));
        }
    }

    /// StickToFamily exhausts the preferred family before the other.
    #[test]
    fn sticky_exhausts_preferred_first(
        addrs in arb_addrs(),
        v6_first in proptest::bool::ANY,
    ) {
        let policy = SelectionPolicy {
            retry_style: RetryStyle::StickToFamily,
            retry_same_prob: 0.0,
            max_attempts: 32,
            ..SelectionPolicy::default()
        };
        let want = if v6_first { Family::V6 } else { Family::V4 };
        let plan = plan_attempts(&policy, &addrs, v6_first, &[]);
        let fams: Vec<Family> = plan.iter().map(|a| Family::of(a.addr)).collect();
        // Once the other family starts, the preferred one never reappears.
        if let Some(first_other) = fams.iter().position(|f| *f != want) {
            prop_assert!(fams[first_other..].iter().all(|f| *f != want));
        }
    }
}

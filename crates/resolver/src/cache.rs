//! TTL-respecting positive and negative cache for the recursive resolver.

use std::cell::RefCell;
use std::collections::HashMap;

use lazyeye_dns::{Name, Record, RrType};
use lazyeye_sim::SimTime;

#[derive(Clone)]
struct Entry {
    records: Vec<Record>,
    expires: SimTime,
}

/// A (qname, qtype)-keyed record cache with expiry on the virtual clock.
///
/// Negative entries (NXDOMAIN/NODATA) are stored as empty record sets with
/// the SOA-minimum TTL, per RFC 2308 — the mechanism whose interaction with
/// Happy Eyeballs Foremski et al. analysed (up to 90 % empty AAAA answers).
#[derive(Default)]
pub struct DnsCache {
    map: RefCell<HashMap<(Name, RrType), Entry>>,
    hits: std::cell::Cell<u64>,
    misses: std::cell::Cell<u64>,
}

impl DnsCache {
    /// Empty cache.
    pub fn new() -> DnsCache {
        DnsCache::default()
    }

    /// Looks up unexpired records. `Some(vec![])` is a cached negative.
    pub fn get(&self, now: SimTime, name: &Name, qtype: RrType) -> Option<Vec<Record>> {
        let mut map = self.map.borrow_mut();
        match map.get(&(name.clone(), qtype)) {
            Some(e) if e.expires > now => {
                self.hits.set(self.hits.get() + 1);
                Some(e.records.clone())
            }
            Some(_) => {
                map.remove(&(name.clone(), qtype));
                self.misses.set(self.misses.get() + 1);
                None
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                None
            }
        }
    }

    /// Stores records under their minimum TTL.
    pub fn put(&self, now: SimTime, name: Name, qtype: RrType, records: Vec<Record>) {
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        let expires = now + std::time::Duration::from_secs(u64::from(ttl));
        if expires > now {
            self.map
                .borrow_mut()
                .insert((name, qtype), Entry { records, expires });
        }
    }

    /// Stores a negative answer for `neg_ttl` seconds.
    pub fn put_negative(&self, now: SimTime, name: Name, qtype: RrType, neg_ttl: u32) {
        let expires = now + std::time::Duration::from_secs(u64::from(neg_ttl));
        if expires > now {
            self.map.borrow_mut().insert(
                (name, qtype),
                Entry {
                    records: Vec::new(),
                    expires,
                },
            );
        }
    }

    /// Removes everything (per-run reset).
    pub fn clear(&self) {
        self.map.borrow_mut().clear();
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Number of live entries (expired entries may still be counted until
    /// touched).
    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_dns::RData;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn a_rec(name: &str, ttl: u32) -> Record {
        Record::new(n(name), ttl, RData::A("192.0.2.1".parse().unwrap()))
    }

    #[test]
    fn hit_before_expiry_miss_after() {
        let c = DnsCache::new();
        let t0 = SimTime::ZERO;
        c.put(t0, n("a.example"), RrType::A, vec![a_rec("a.example", 60)]);
        assert!(c
            .get(SimTime::from_secs(59), &n("a.example"), RrType::A)
            .is_some());
        assert!(c
            .get(SimTime::from_secs(60), &n("a.example"), RrType::A)
            .is_none());
    }

    #[test]
    fn negative_entry_is_empty_vec() {
        let c = DnsCache::new();
        c.put_negative(SimTime::ZERO, n("missing.example"), RrType::Aaaa, 30);
        let got = c.get(SimTime::from_secs(10), &n("missing.example"), RrType::Aaaa);
        assert_eq!(got, Some(Vec::new()));
        assert!(c
            .get(SimTime::from_secs(31), &n("missing.example"), RrType::Aaaa)
            .is_none());
    }

    #[test]
    fn zero_ttl_not_cached() {
        let c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            n("z.example"),
            RrType::A,
            vec![a_rec("z.example", 0)],
        );
        assert!(c.get(SimTime::ZERO, &n("z.example"), RrType::A).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn min_ttl_of_set_wins() {
        let c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            n("m.example"),
            RrType::A,
            vec![a_rec("m.example", 300), a_rec("m.example", 10)],
        );
        assert!(c
            .get(SimTime::from_secs(9), &n("m.example"), RrType::A)
            .is_some());
        assert!(c
            .get(SimTime::from_secs(11), &n("m.example"), RrType::A)
            .is_none());
    }

    #[test]
    fn qtype_is_part_of_key() {
        let c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            n("k.example"),
            RrType::A,
            vec![a_rec("k.example", 60)],
        );
        assert!(c
            .get(SimTime::ZERO, &n("k.example"), RrType::Aaaa)
            .is_none());
    }

    #[test]
    fn names_case_insensitive() {
        let c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            n("WWW.Example.COM"),
            RrType::A,
            vec![a_rec("www.example.com", 60)],
        );
        assert!(c
            .get(SimTime::ZERO, &n("www.example.com"), RrType::A)
            .is_some());
    }

    #[test]
    fn clear_and_stats() {
        let c = DnsCache::new();
        c.put(
            SimTime::ZERO,
            n("s.example"),
            RrType::A,
            vec![a_rec("s.example", 60)],
        );
        let _ = c.get(SimTime::ZERO, &n("s.example"), RrType::A);
        let _ = c.get(SimTime::ZERO, &n("t.example"), RrType::A);
        let (h, m) = c.stats();
        assert_eq!((h, m), (1, 1));
        c.clear();
        assert!(c.is_empty());
    }
}

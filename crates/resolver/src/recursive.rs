//! The iterative recursive resolver: root hints → delegations → answer,
//! with caching, CNAME chasing and policy-driven IPv6/IPv4 server
//! selection (the behaviour §5.3 of the paper measures).

use std::cell::Cell;
use std::net::{IpAddr, SocketAddr};
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use lazyeye_dns::{Message, Name, RData, Rcode, Record, RrType};
use lazyeye_net::{Family, Host};
use lazyeye_sim::{now, timeout, with_rng};
use rand::Rng;

use crate::cache::DnsCache;
use crate::policy::{plan_attempts, prefer_v6, NsQueryStyle, SelectionPolicy};

/// Configuration of a recursive resolver instance.
#[derive(Clone, Debug)]
pub struct RecursiveConfig {
    /// Server-selection policy (the measured behaviour).
    pub policy: SelectionPolicy,
    /// Root hints: name-server names and their addresses.
    pub roots: Vec<(Name, Vec<IpAddr>)>,
    /// Delegation-depth guard.
    pub max_depth: u32,
    /// CNAME-chase guard.
    pub max_cname: u32,
}

impl RecursiveConfig {
    /// Config with the given roots and a default policy.
    pub fn new(roots: Vec<(Name, Vec<IpAddr>)>) -> RecursiveConfig {
        RecursiveConfig {
            policy: SelectionPolicy::default(),
            roots,
            max_depth: 16,
            max_cname: 8,
        }
    }
}

/// Terminal resolution failure.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ResolveError {
    /// Every planned attempt timed out.
    Timeout,
    /// Upstream answered SERVFAIL/REFUSED.
    ServFail,
    /// Too many delegations or CNAME links.
    DepthExceeded,
    /// A delegation had no resolvable name-server addresses.
    NoServers,
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ResolveError::Timeout => "resolution timed out",
            ResolveError::ServFail => "upstream server failure",
            ResolveError::DepthExceeded => "delegation/CNAME depth exceeded",
            ResolveError::NoServers => "no name-server addresses available",
        };
        f.write_str(s)
    }
}
impl std::error::Error for ResolveError {}

/// Successful resolution outcome.
#[derive(Clone, Debug)]
pub struct ResolveResult {
    /// NoError or NxDomain.
    pub rcode: Rcode,
    /// Matching records (empty for NODATA/NXDOMAIN).
    pub records: Vec<Record>,
}

struct NsCandidate {
    name: Name,
    addrs: Vec<IpAddr>,
}

/// A recursive resolver bound to one (possibly dual-stack) host.
pub struct RecursiveResolver {
    host: Host,
    cfg: RecursiveConfig,
    cache: DnsCache,
    next_id: Cell<u16>,
    knot_flip: Cell<bool>,
}

impl RecursiveResolver {
    /// Creates a resolver.
    pub fn new(host: Host, cfg: RecursiveConfig) -> Rc<RecursiveResolver> {
        Rc::new(RecursiveResolver {
            host,
            cfg,
            cache: DnsCache::new(),
            next_id: Cell::new(1),
            knot_flip: Cell::new(false),
        })
    }

    /// The resolver's host (for capture inspection in tests).
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The active policy.
    pub fn policy(&self) -> &SelectionPolicy {
        &self.cfg.policy
    }

    /// Cache statistics (hits, misses).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Clears cached data (per-run reset; the paper uses unique zone
    /// apexes for the same reason).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    fn fresh_id(&self) -> u16 {
        let id = self.next_id.get();
        self.next_id.set(id.wrapping_add(1));
        id
    }

    /// Resolves (qname, qtype) iteratively from the roots.
    pub async fn resolve(
        self: &Rc<Self>,
        qname: &Name,
        qtype: RrType,
    ) -> Result<ResolveResult, ResolveError> {
        self.resolve_depth(qname.clone(), qtype, 0).await
    }

    fn resolve_depth(
        self: &Rc<Self>,
        qname: Name,
        qtype: RrType,
        depth: u32,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = Result<ResolveResult, ResolveError>>>>
    {
        let this = Rc::clone(self);
        Box::pin(async move {
            if depth > this.cfg.max_depth {
                return Err(ResolveError::DepthExceeded);
            }
            if let Some(records) = this.cache.get(now(), &qname, qtype) {
                return Ok(ResolveResult {
                    rcode: Rcode::NoError,
                    records,
                });
            }

            let mut servers: Vec<NsCandidate> = this
                .cfg
                .roots
                .iter()
                .map(|(name, addrs)| NsCandidate {
                    name: name.clone(),
                    addrs: addrs.clone(),
                })
                .collect();
            let mut current = qname.clone();
            let mut cnames = 0u32;
            let mut collected_cnames: Vec<Record> = Vec::new();

            for _step in 0..this.cfg.max_depth {
                let addrs = this.gather_addresses(&mut servers, depth).await?;
                if addrs.is_empty() {
                    return Err(ResolveError::NoServers);
                }
                let resp = this.query_with_policy(&addrs, &current, qtype).await?;

                match resp.header.rcode {
                    Rcode::NoError => {}
                    Rcode::NxDomain => {
                        let neg_ttl = soa_minimum(&resp).unwrap_or(300);
                        this.cache
                            .put_negative(now(), current.clone(), qtype, neg_ttl);
                        return Ok(ResolveResult {
                            rcode: Rcode::NxDomain,
                            records: collected_cnames,
                        });
                    }
                    _ => return Err(ResolveError::ServFail),
                }

                // Answers?
                let direct: Vec<Record> = resp
                    .answers
                    .iter()
                    .filter(|r| r.rtype() == qtype && r.name == current)
                    .cloned()
                    .collect();
                if !direct.is_empty() {
                    this.cache
                        .put(now(), current.clone(), qtype, direct.clone());
                    let mut records = collected_cnames;
                    records.extend(direct.iter().cloned());
                    // Follow CNAME chains included in the same response.
                    return Ok(ResolveResult {
                        rcode: Rcode::NoError,
                        records,
                    });
                }

                // CNAME at the current name?
                if let Some(cname) = resp
                    .answers
                    .iter()
                    .find(|r| r.rtype() == RrType::Cname && r.name == current)
                {
                    cnames += 1;
                    if cnames > this.cfg.max_cname {
                        return Err(ResolveError::DepthExceeded);
                    }
                    collected_cnames.push(cname.clone());
                    if let RData::Cname(target) = &cname.rdata {
                        // In-bailiwick data for the target may ride along.
                        let rode_along: Vec<Record> = resp
                            .answers
                            .iter()
                            .filter(|r| r.rtype() == qtype && &r.name == target)
                            .cloned()
                            .collect();
                        if !rode_along.is_empty() {
                            let mut records = collected_cnames;
                            records.extend(rode_along);
                            return Ok(ResolveResult {
                                rcode: Rcode::NoError,
                                records,
                            });
                        }
                        current = target.clone();
                        servers = this
                            .cfg
                            .roots
                            .iter()
                            .map(|(name, addrs)| NsCandidate {
                                name: name.clone(),
                                addrs: addrs.clone(),
                            })
                            .collect();
                        continue;
                    }
                }

                // Referral?
                let ns_records: Vec<&Record> = resp
                    .authorities
                    .iter()
                    .filter(|r| r.rtype() == RrType::Ns)
                    .collect();
                if !ns_records.is_empty() {
                    let mut next: Vec<NsCandidate> = Vec::new();
                    for nsr in &ns_records {
                        if let RData::Ns(nsname) = &nsr.rdata {
                            let glue: Vec<IpAddr> = resp
                                .additionals
                                .iter()
                                .filter(|g| &g.name == nsname)
                                .filter_map(|g| match &g.rdata {
                                    RData::A(a) => Some(IpAddr::V4(*a)),
                                    RData::Aaaa(a) => Some(IpAddr::V6(*a)),
                                    _ => None,
                                })
                                .collect();
                            // Cache glue for later steps.
                            for g in resp.additionals.iter().filter(|g| &g.name == nsname) {
                                this.cache
                                    .put(now(), g.name.clone(), g.rtype(), vec![g.clone()]);
                            }
                            next.push(NsCandidate {
                                name: nsname.clone(),
                                addrs: glue,
                            });
                        }
                    }
                    servers = next;
                    continue;
                }

                // NODATA.
                let neg_ttl = soa_minimum(&resp).unwrap_or(300);
                this.cache
                    .put_negative(now(), current.clone(), qtype, neg_ttl);
                return Ok(ResolveResult {
                    rcode: Rcode::NoError,
                    records: collected_cnames,
                });
            }
            Err(ResolveError::DepthExceeded)
        })
    }

    /// Collects name-server addresses for the current delegation,
    /// resolving missing ones according to [`NsQueryStyle`].
    async fn gather_addresses(
        self: &Rc<Self>,
        servers: &mut [NsCandidate],
        depth: u32,
    ) -> Result<Vec<IpAddr>, ResolveError> {
        let mut addrs: Vec<IpAddr> = servers.iter().flat_map(|s| s.addrs.clone()).collect();
        if !addrs.is_empty() {
            return Ok(addrs);
        }
        // No glue: resolve the first NS name's addresses per policy.
        let Some(first) = servers.first() else {
            return Ok(Vec::new());
        };
        let nsname = first.name.clone();
        let style = self.cfg.policy.ns_query_style;
        let order: Vec<RrType> = match style {
            NsQueryStyle::AaaaBeforeA => vec![RrType::Aaaa, RrType::A],
            NsQueryStyle::AaaaAfterA => vec![RrType::A, RrType::Aaaa],
            NsQueryStyle::AaaaAfterAuthQuery => vec![RrType::A],
            NsQueryStyle::OneOfEither => {
                let flip = self.knot_flip.get();
                self.knot_flip.set(!flip);
                vec![if flip { RrType::A } else { RrType::Aaaa }]
            }
        };
        for qt in order {
            if let Ok(res) = self.resolve_depth(nsname.clone(), qt, depth + 1).await {
                for r in &res.records {
                    match &r.rdata {
                        RData::A(a) => addrs.push(IpAddr::V4(*a)),
                        RData::Aaaa(a) => addrs.push(IpAddr::V6(*a)),
                        _ => {}
                    }
                }
            }
        }
        if let Some(first) = servers.first_mut() {
            first.addrs = addrs.clone();
        }
        if style == NsQueryStyle::AaaaAfterAuthQuery && !addrs.is_empty() {
            // Google-style: the AAAA query for the NS name goes out only
            // after the resolver is already talking to the zone over IPv4.
            let this = Rc::clone(self);
            let nsname2 = nsname.clone();
            lazyeye_sim::spawn_detached(async move {
                let _ = this.resolve_depth(nsname2, RrType::Aaaa, depth + 1).await;
            });
        }
        Ok(addrs)
    }

    /// Sends the query along the policy's attempt plan until one answer
    /// arrives.
    async fn query_with_policy(
        self: &Rc<Self>,
        addrs: &[IpAddr],
        qname: &Name,
        qtype: RrType,
    ) -> Result<Message, ResolveError> {
        let policy = &self.cfg.policy;
        if policy.parallel_families {
            return self.query_parallel(addrs, qname, qtype).await;
        }
        let v6_first = prefer_v6(policy, with_rng(|r| r.gen::<f64>()));
        let coins: Vec<f64> = (0..policy.max_attempts)
            .map(|_| with_rng(|r| r.gen::<f64>()))
            .collect();
        let plan = plan_attempts(policy, addrs, v6_first, &coins);
        if plan.is_empty() {
            return Err(ResolveError::NoServers);
        }
        for attempt in plan {
            match self
                .single_query(attempt.addr, qname, qtype, attempt.timeout)
                .await
            {
                Some(resp) => return Ok(resp),
                None => continue,
            }
        }
        Err(ResolveError::Timeout)
    }

    /// DNS0.EU-style parallel query: one query to the best address of each
    /// family at once; first answer wins. No cross-family retry. The
    /// preference coin decides which family's query leaves first (the
    /// paper could not determine a delay "due to parallel queries", but
    /// still measured a 9.5 % IPv6-first share).
    async fn query_parallel(
        self: &Rc<Self>,
        addrs: &[IpAddr],
        qname: &Name,
        qtype: RrType,
    ) -> Result<Message, ResolveError> {
        let v6 = addrs.iter().copied().find(|a| Family::of(*a) == Family::V6);
        let v4 = addrs.iter().copied().find(|a| Family::of(*a) == Family::V4);
        let timeout_each = self.cfg.policy.server_timeout;
        match (v6, v4) {
            (Some(a6), Some(a4)) => {
                let v6_first = prefer_v6(&self.cfg.policy, with_rng(|r| r.gen::<f64>()));
                let (first, second) = if v6_first { (a6, a4) } else { (a4, a6) };
                let r = lazyeye_sim::race(
                    self.single_query(first, qname, qtype, timeout_each),
                    self.single_query(second, qname, qtype, timeout_each),
                )
                .await;
                match r {
                    lazyeye_sim::Either::Left(Some(m)) | lazyeye_sim::Either::Right(Some(m)) => {
                        Ok(m)
                    }
                    _ => Err(ResolveError::Timeout),
                }
            }
            (Some(a), None) | (None, Some(a)) => self
                .single_query(a, qname, qtype, timeout_each)
                .await
                .ok_or(ResolveError::Timeout),
            (None, None) => Err(ResolveError::NoServers),
        }
    }

    async fn single_query(
        &self,
        server: IpAddr,
        qname: &Name,
        qtype: RrType,
        wait: Duration,
    ) -> Option<Message> {
        let id = self.fresh_id();
        let q = Message::query(id, qname.clone(), qtype);
        let Ok(sock) = self.host.udp_bind_any(0) else {
            return None;
        };
        let dst = SocketAddr::new(server, 53);
        sock.send_to(Bytes::from(q.encode()), dst).ok()?;
        let recv = async {
            loop {
                let (payload, src) = sock.recv_from().await.ok()?;
                if src != dst {
                    continue;
                }
                let Ok(resp) = Message::decode(&payload) else {
                    continue;
                };
                if resp.header.id == id && resp.header.qr {
                    return Some(resp);
                }
            }
        };
        timeout(wait, recv).await.ok().flatten()
    }
}

fn soa_minimum(resp: &Message) -> Option<u32> {
    resp.authorities.iter().find_map(|r| match &r.rdata {
        RData::Soa(soa) => Some(soa.minimum),
        _ => None,
    })
}

//! Behaviour profiles for the resolver software and open services the
//! paper measured (Tables 3 and 4).
//!
//! Each profile is a [`SelectionPolicy`] parameterisation whose *emergent*
//! behaviour against delayed authoritative servers reproduces the paper's
//! observations: IPv6 share, maximum IPv6 delay, packet counts, and the
//! AAAA/A query ordering markers.

use std::time::Duration;

use crate::policy::{NsQueryStyle, RetryStyle, SelectionPolicy, V6Preference};

/// Whether the profile is local software or a public service.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ProfileKind {
    /// Locally-run resolver software (BIND, Unbound, Knot).
    Software,
    /// Public open resolver service.
    OpenService,
}

/// The Table 3 "AAAA Query" marker.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AaaaMarker {
    /// `•` — sends AAAA before A.
    BeforeA,
    /// `◑` — sends AAAA after A.
    AfterA,
    /// `◓` — sends AAAA only after querying the IPv4 auth server (Google).
    AfterAuthQuery,
    /// `◒` — sends either AAAA or A but never both (Knot).
    EitherNotBoth,
}

impl AaaaMarker {
    /// ASCII rendering for result tables.
    pub fn symbol(self) -> &'static str {
        match self {
            AaaaMarker::BeforeA => "before-A",
            AaaaMarker::AfterA => "after-A",
            AaaaMarker::AfterAuthQuery => "after-auth",
            AaaaMarker::EitherNotBoth => "one-of",
        }
    }
}

/// One resolver implementation/service profile.
#[derive(Clone, Debug)]
pub struct ResolverProfile {
    /// Display name (matches the paper's tables).
    pub name: &'static str,
    /// Software vs open service.
    pub kind: ProfileKind,
    /// The selection policy that generates the measured behaviour.
    pub policy: SelectionPolicy,
    /// Number of published IPv4 resolver addresses (Table 4).
    pub v4_addrs: usize,
    /// Number of published IPv6 resolver addresses (Table 4).
    pub v6_addrs: usize,
    /// Can it resolve zones with IPv6-only authoritative name servers?
    /// (Hurricane Electric, Lumen, Dyn and G-Core cannot — excluded in §5.3.)
    pub ipv6_only_capable: bool,
    /// Expected Table 3 values for validation: (IPv6 share %, max IPv6
    /// delay ms if known, max IPv6 packets per step).
    pub expected: Option<(f64, Option<u64>, usize)>,
    /// Free-form remark carried into reports.
    pub notes: &'static str,
}

impl ResolverProfile {
    /// The Table 3 AAAA-ordering marker implied by the policy.
    pub fn aaaa_marker(&self) -> AaaaMarker {
        match self.policy.ns_query_style {
            NsQueryStyle::AaaaBeforeA => AaaaMarker::BeforeA,
            NsQueryStyle::AaaaAfterA => AaaaMarker::AfterA,
            NsQueryStyle::AaaaAfterAuthQuery => AaaaMarker::AfterAuthQuery,
            NsQueryStyle::OneOfEither => AaaaMarker::EitherNotBoth,
        }
    }
}

fn policy(
    style: NsQueryStyle,
    pref: V6Preference,
    timeout_ms: u64,
    retry_style: RetryStyle,
    retry_same_prob: f64,
    backoff: f64,
    max_attempts: u32,
) -> SelectionPolicy {
    SelectionPolicy {
        ns_query_style: style,
        v6_preference: pref,
        server_timeout: Duration::from_millis(timeout_ms),
        retry_same_prob,
        backoff_factor: backoff,
        retry_style,
        max_attempts,
        parallel_families: false,
    }
}

/// BIND 9: classic Happy-Eyeballs-style preference — always IPv6 first,
/// 800 ms timeout, single IPv6 packet, then IPv4 fallback. AAAA for NS
/// names is queried after A.
pub fn bind9() -> ResolverProfile {
    ResolverProfile {
        name: "BIND",
        kind: ProfileKind::Software,
        policy: policy(
            NsQueryStyle::AaaaAfterA,
            V6Preference::Always,
            800,
            RetryStyle::SwitchFamily,
            0.0,
            2.0,
            6,
        ),
        v4_addrs: 0,
        v6_addrs: 0,
        ipv6_only_capable: true,
        expected: Some((100.0, Some(800), 1)),
        notes: "always prefers IPv6; falls back after 800 ms",
    }
}

/// Unbound: AAAA before A; IPv6 chosen ~50 % of the time; 376 ms timeout;
/// retries the same address 44 % of the time with ~3× exponential backoff
/// (376 → 1128 ms), i.e. up to 2 IPv6 packets.
pub fn unbound() -> ResolverProfile {
    ResolverProfile {
        name: "Unbound",
        kind: ProfileKind::Software,
        policy: policy(
            NsQueryStyle::AaaaBeforeA,
            V6Preference::Probability(0.50),
            376,
            RetryStyle::SwitchFamily,
            0.44,
            3.0,
            6,
        ),
        v4_addrs: 0,
        v6_addrs: 0,
        ipv6_only_capable: true,
        expected: Some((43.8, Some(376), 2)),
        notes: "exponential backoff raises the retry timeout to 1128 ms",
    }
}

/// Knot Resolver: sends either A or AAAA for an NS name (never both);
/// IPv6 used ~25 % of the time; 400 ms timeout.
pub fn knot() -> ResolverProfile {
    ResolverProfile {
        name: "Knot Resolver",
        kind: ProfileKind::Software,
        policy: policy(
            NsQueryStyle::OneOfEither,
            V6Preference::Probability(0.28),
            400,
            RetryStyle::SwitchFamily,
            0.35,
            1.0,
            6,
        ),
        v4_addrs: 0,
        v6_addrs: 0,
        ipv6_only_capable: true,
        expected: Some((27.9, Some(400), 2)),
        notes: "queries either A or AAAA for NS names, never both",
    }
}

/// The three locally-run software profiles.
pub fn software_profiles() -> Vec<ResolverProfile> {
    vec![bind9(), unbound(), knot()]
}

/// All 17 open resolver services the paper probed (Table 4), including the
/// four that cannot resolve IPv6-only delegations and are therefore
/// excluded from the Table 3 analysis.
pub fn open_resolver_profiles() -> Vec<ResolverProfile> {
    let p = |style, pref, t_ms, rs, rsp, bo, ma| policy(style, pref, t_ms, rs, rsp, bo, ma);
    use NsQueryStyle::*;
    use RetryStyle::*;
    use V6Preference::*;
    let mut out = vec![
        ResolverProfile {
            name: "DNS.sb",
            kind: ProfileKind::OpenService,
            policy: p(AaaaAfterA, Never, 400, SwitchFamily, 0.0, 2.0, 4),
            v4_addrs: 2,
            v6_addrs: 2,
            ipv6_only_capable: true,
            expected: Some((0.0, None, 0)),
            notes: "never uses the IPv6 name-server address",
        },
        ResolverProfile {
            name: "Google P. DNS",
            kind: ProfileKind::OpenService,
            policy: p(AaaaAfterAuthQuery, Never, 400, SwitchFamily, 0.0, 2.0, 4),
            v4_addrs: 2,
            v6_addrs: 2,
            ipv6_only_capable: true,
            expected: Some((0.0, None, 0)),
            notes: "no AAAA query before contacting the auth server over IPv4",
        },
        ResolverProfile {
            name: "DNS0.EU",
            kind: ProfileKind::OpenService,
            policy: {
                let mut pol = p(
                    AaaaBeforeA,
                    Probability(0.095),
                    700,
                    StickToFamily,
                    0.6,
                    1.0,
                    4,
                );
                pol.parallel_families = true;
                pol
            },
            v4_addrs: 2,
            v6_addrs: 2,
            ipv6_only_capable: true,
            expected: Some((9.5, None, 2)),
            notes: "parallel v4/v6 queries; sticks to the initial family on retry",
        },
        ResolverProfile {
            name: "NextDNS",
            kind: ProfileKind::OpenService,
            policy: p(
                AaaaBeforeA,
                Probability(0.089),
                200,
                SwitchFamily,
                0.0,
                2.0,
                4,
            ),
            v4_addrs: 2,
            v6_addrs: 2,
            ipv6_only_capable: true,
            expected: Some((8.9, Some(200), 1)),
            notes: "",
        },
        ResolverProfile {
            name: "Quad 101",
            kind: ProfileKind::OpenService,
            policy: p(
                AaaaBeforeA,
                Probability(0.10),
                400,
                SwitchFamily,
                0.0,
                2.0,
                4,
            ),
            v4_addrs: 2,
            v6_addrs: 2,
            ipv6_only_capable: true,
            expected: Some((10.0, Some(400), 1)),
            notes: "only its IPv6 resolver addresses reach IPv6-only zones",
        },
        ResolverProfile {
            name: "114DNS",
            kind: ProfileKind::OpenService,
            policy: p(
                AaaaBeforeA,
                Probability(0.111),
                600,
                SwitchFamily,
                0.0,
                2.0,
                4,
            ),
            v4_addrs: 2,
            v6_addrs: 0,
            ipv6_only_capable: true,
            expected: Some((11.1, Some(600), 1)),
            notes: "v4-only service addresses, but v6-capable resolution path (forwarder)",
        },
        ResolverProfile {
            name: "Cloudflare",
            kind: ProfileKind::OpenService,
            policy: p(
                AaaaBeforeA,
                Probability(0.111),
                500,
                SwitchFamily,
                0.5,
                1.0,
                4,
            ),
            v4_addrs: 2,
            v6_addrs: 2,
            ipv6_only_capable: true,
            expected: Some((11.1, Some(500), 2)),
            notes: "",
        },
        ResolverProfile {
            name: "Verisign P. DNS",
            kind: ProfileKind::OpenService,
            policy: p(
                AaaaBeforeA,
                Probability(0.153),
                250,
                SwitchFamily,
                0.0,
                2.0,
                4,
            ),
            v4_addrs: 2,
            v6_addrs: 2,
            ipv6_only_capable: true,
            expected: Some((15.3, Some(250), 1)),
            notes: "",
        },
        ResolverProfile {
            name: "Yandex",
            kind: ProfileKind::OpenService,
            policy: p(
                AaaaBeforeA,
                Probability(0.174),
                300,
                StickToFamily,
                0.85,
                1.0,
                6,
            ),
            v4_addrs: 2,
            v6_addrs: 2,
            ipv6_only_capable: true,
            expected: Some((17.4, Some(300), 6)),
            notes: "no interleaving; up to six queries to the IPv6 address",
        },
        ResolverProfile {
            name: "H-MSK-IX",
            kind: ProfileKind::OpenService,
            policy: p(
                AaaaBeforeA,
                Probability(0.205),
                600,
                SwitchFamily,
                0.4,
                1.0,
                4,
            ),
            v4_addrs: 2,
            v6_addrs: 2,
            ipv6_only_capable: true,
            expected: Some((20.5, Some(600), 2)),
            notes: "",
        },
        ResolverProfile {
            name: "MSK-IX",
            kind: ProfileKind::OpenService,
            policy: p(
                AaaaBeforeA,
                Probability(0.221),
                600,
                SwitchFamily,
                0.4,
                1.0,
                4,
            ),
            v4_addrs: 2,
            v6_addrs: 2,
            ipv6_only_capable: true,
            expected: Some((22.1, Some(600), 2)),
            notes: "",
        },
        ResolverProfile {
            name: "Quad9 DNS",
            kind: ProfileKind::OpenService,
            policy: p(
                AaaaBeforeA,
                Probability(0.342),
                1250,
                SwitchFamily,
                0.4,
                1.0,
                4,
            ),
            v4_addrs: 6,
            v6_addrs: 6,
            ipv6_only_capable: true,
            expected: Some((34.2, Some(1250), 2)),
            notes: "",
        },
        ResolverProfile {
            name: "OpenDNS",
            kind: ProfileKind::OpenService,
            policy: p(AaaaBeforeA, Always, 50, SwitchFamily, 0.0, 2.0, 4),
            v4_addrs: 6,
            v6_addrs: 6,
            ipv6_only_capable: true,
            expected: Some((100.0, Some(50), 1)),
            notes: "HE-style: always IPv6 first, 50 ms fallback",
        },
    ];
    // The four services that cannot resolve IPv6-only delegations.
    for (name, v4, v6) in [
        ("Hurricane Electric", 4, 4),
        ("Lumen (Level3)", 4, 0),
        ("Dyn", 2, 0),
        ("G-Core", 2, 2),
    ] {
        out.push(ResolverProfile {
            name,
            kind: ProfileKind::OpenService,
            policy: p(AaaaAfterA, Never, 400, SwitchFamily, 0.0, 2.0, 4),
            v4_addrs: v4,
            v6_addrs: v6,
            ipv6_only_capable: false,
            expected: None,
            notes: "cannot resolve domains with IPv6-only delegation",
        });
    }
    out
}

/// Every profile (software + open services).
pub fn all_profiles() -> Vec<ResolverProfile> {
    let mut v = software_profiles();
    v.extend(open_resolver_profiles());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_table4() {
        let open = open_resolver_profiles();
        assert_eq!(open.len(), 17, "17 services probed");
        let excluded: Vec<&str> = open
            .iter()
            .filter(|p| !p.ipv6_only_capable)
            .map(|p| p.name)
            .collect();
        assert_eq!(excluded.len(), 4);
        assert!(excluded.contains(&"Hurricane Electric"));
        assert!(excluded.contains(&"Lumen (Level3)"));
        assert!(excluded.contains(&"Dyn"));
        assert!(excluded.contains(&"G-Core"));
        // 13 analysable services, as in §5.3.
        assert_eq!(open.iter().filter(|p| p.ipv6_only_capable).count(), 13);
    }

    #[test]
    fn opendns_is_he_style() {
        let p = open_resolver_profiles()
            .into_iter()
            .find(|p| p.name == "OpenDNS")
            .unwrap();
        assert_eq!(p.policy.v6_preference, V6Preference::Always);
        assert_eq!(p.policy.server_timeout, Duration::from_millis(50));
    }

    #[test]
    fn markers_match_paper() {
        let all = all_profiles();
        let marker = |name: &str| all.iter().find(|p| p.name == name).unwrap().aaaa_marker();
        assert_eq!(marker("BIND"), AaaaMarker::AfterA);
        assert_eq!(marker("Unbound"), AaaaMarker::BeforeA);
        assert_eq!(marker("Knot Resolver"), AaaaMarker::EitherNotBoth);
        assert_eq!(marker("Google P. DNS"), AaaaMarker::AfterAuthQuery);
        assert_eq!(marker("DNS.sb"), AaaaMarker::AfterA);
        assert_eq!(marker("OpenDNS"), AaaaMarker::BeforeA);
    }

    #[test]
    fn unbound_backoff_parameters() {
        let u = unbound();
        assert!((u.policy.retry_same_prob - 0.44).abs() < 1e-9);
        assert!((u.policy.backoff_factor - 3.0).abs() < 1e-9);
        // 376 * 3 = 1128 ms, the paper's observed backed-off CAD.
        let backed_off = u.policy.server_timeout.as_millis() as f64 * u.policy.backoff_factor;
        assert_eq!(backed_off as u64, 1128);
    }

    #[test]
    fn dns0_is_parallel_and_sticky() {
        let d = open_resolver_profiles()
            .into_iter()
            .find(|p| p.name == "DNS0.EU")
            .unwrap();
        assert!(d.policy.parallel_families);
        assert_eq!(d.policy.retry_style, RetryStyle::StickToFamily);
    }

    #[test]
    fn openddns_and_quad9_address_counts() {
        let open = open_resolver_profiles();
        let find = |n: &str| open.iter().find(|p| p.name == n).unwrap();
        assert_eq!((find("OpenDNS").v4_addrs, find("OpenDNS").v6_addrs), (6, 6));
        assert_eq!(
            (find("Quad9 DNS").v4_addrs, find("Quad9 DNS").v6_addrs),
            (6, 6)
        );
        assert_eq!((find("114DNS").v4_addrs, find("114DNS").v6_addrs), (2, 0));
        assert_eq!(
            (
                find("Lumen (Level3)").v4_addrs,
                find("Lumen (Level3)").v6_addrs
            ),
            (4, 0)
        );
    }
}

//! Server-selection policy: the knobs behind every behaviour Table 3 of
//! the paper measures for recursive resolvers.
//!
//! At each delegation the resolver holds a set of name-server addresses of
//! both families and must decide (a) which family to try first, (b) how
//! long to wait before giving up on an address (its "CAD"), and (c) what to
//! do on a retry — switch family, stick with the family, or retry the very
//! same address with backoff (Unbound's documented behaviour, which the
//! paper observed as the CAD growing from 376 ms to 1128 ms).

use std::net::IpAddr;
use std::time::Duration;

use lazyeye_net::Family;

/// How the resolver asks for the *addresses of name servers* (the paper's
/// "AAAA query" column in Table 3).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum NsQueryStyle {
    /// AAAA query sent before the A query (RFC 8305 conformant) — `•`.
    AaaaBeforeA,
    /// AAAA sent, but after the A query — `◑` ("Sends AAAA after A").
    AaaaAfterA,
    /// AAAA only queried after the resolver already contacted the
    /// authoritative server over IPv4 — Google Public DNS's behaviour.
    AaaaAfterAuthQuery,
    /// Sends either AAAA or A for a name server name, never both —
    /// Knot Resolver's behaviour.
    OneOfEither,
}

/// Which family the resolver prefers when both address families are known
/// for a name server.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum V6Preference {
    /// Always try IPv6 first (BIND, OpenDNS).
    Always,
    /// Try IPv6 first with this probability (Unbound ≈ 0.5, Knot ≈ 0.25,
    /// most open services 0.1–0.35 as the paper measured).
    Probability(f64),
    /// Never try IPv6 first (Google Public DNS, DNS.sb: 0 % IPv6 share).
    Never,
}

/// What a retry after a timeout does.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum RetryStyle {
    /// Alternate to the other family's next address (classic HE style).
    SwitchFamily,
    /// Stay within the initially chosen family until its addresses are
    /// exhausted (DNS0.EU "sticks to the IP version initially chosen").
    StickToFamily,
}

/// The complete selection policy of one resolver implementation.
#[derive(Clone, Debug)]
pub struct SelectionPolicy {
    /// NS-address query pattern.
    pub ns_query_style: NsQueryStyle,
    /// Family preference.
    pub v6_preference: V6Preference,
    /// Per-address timeout before moving on — the resolver's CAD analogue.
    pub server_timeout: Duration,
    /// Probability of retrying the *same* address (with backoff) instead of
    /// moving to the next candidate (Unbound: ≈ 0.44 observed).
    pub retry_same_prob: f64,
    /// Multiplier applied to `server_timeout` on a same-address retry
    /// (Unbound's exponential backoff: 376 ms → 1128 ms ⇒ factor 3).
    pub backoff_factor: f64,
    /// Retry behaviour across candidates.
    pub retry_style: RetryStyle,
    /// Total queries the resolver is willing to send per delegation step.
    pub max_attempts: u32,
    /// Query the best address of *each* family simultaneously instead of
    /// sequentially (observed for DNS0.EU — the paper could not determine
    /// its delay "due to parallel queries on IPv4 and IPv6").
    pub parallel_families: bool,
}

impl Default for SelectionPolicy {
    fn default() -> Self {
        SelectionPolicy {
            ns_query_style: NsQueryStyle::AaaaBeforeA,
            v6_preference: V6Preference::Always,
            server_timeout: Duration::from_millis(400),
            retry_same_prob: 0.0,
            backoff_factor: 2.0,
            retry_style: RetryStyle::SwitchFamily,
            max_attempts: 6,
            parallel_families: false,
        }
    }
}

/// One planned query attempt produced by [`plan_attempts`].
#[derive(Clone, Debug, PartialEq)]
pub struct Attempt {
    /// Destination address for this attempt.
    pub addr: IpAddr,
    /// Timeout for this attempt.
    pub timeout: Duration,
}

/// Decides whether IPv6 goes first for this resolution step. `coin` is a
/// uniform sample in `[0,1)` drawn from the simulation RNG by the caller
/// (keeping this function pure and unit-testable).
pub fn prefer_v6(policy: &SelectionPolicy, coin: f64) -> bool {
    match policy.v6_preference {
        V6Preference::Always => true,
        V6Preference::Never => false,
        V6Preference::Probability(p) => coin < p,
    }
}

/// Plans the sequence of attempts against a candidate set, given the
/// family decision and a sequence of uniform samples for the retry-same
/// coin flips. Pure function: the recursive resolver feeds it RNG samples.
///
/// The plan interleaves (or sticks), inserts same-address backoff retries,
/// and caps at `max_attempts`.
pub fn plan_attempts(
    policy: &SelectionPolicy,
    candidates: &[IpAddr],
    v6_first: bool,
    retry_coins: &[f64],
) -> Vec<Attempt> {
    let first_family = if v6_first { Family::V6 } else { Family::V4 };
    let (pref, other): (Vec<IpAddr>, Vec<IpAddr>) = candidates
        .iter()
        .copied()
        .partition(|a| Family::of(*a) == first_family);

    // Base ordering before backoff expansion.
    let ordered: Vec<IpAddr> = match policy.retry_style {
        RetryStyle::SwitchFamily => {
            // Interleave: pref[0], other[0], pref[1], other[1], ...
            let mut out = Vec::with_capacity(candidates.len());
            let mut i = 0;
            loop {
                let mut any = false;
                if let Some(a) = pref.get(i) {
                    out.push(*a);
                    any = true;
                }
                if let Some(a) = other.get(i) {
                    out.push(*a);
                    any = true;
                }
                if !any {
                    break;
                }
                i += 1;
            }
            out
        }
        RetryStyle::StickToFamily => {
            let mut out = pref.clone();
            out.extend(other.iter().copied());
            out
        }
    };

    let mut plan = Vec::new();
    let mut coin_idx = 0;
    let mut i = 0;
    while plan.len() < policy.max_attempts as usize && i < ordered.len() {
        let addr = ordered[i];
        plan.push(Attempt {
            addr,
            timeout: policy.server_timeout,
        });
        // Possibly retry the same address with backoff before moving on.
        let mut factor = policy.backoff_factor;
        while plan.len() < policy.max_attempts as usize
            && policy.retry_same_prob > 0.0
            && retry_coins
                .get(coin_idx)
                .map(|c| *c < policy.retry_same_prob)
                .unwrap_or(false)
        {
            coin_idx += 1;
            plan.push(Attempt {
                addr,
                timeout: mul_duration(policy.server_timeout, factor),
            });
            factor *= policy.backoff_factor;
        }
        if policy.retry_same_prob > 0.0 && coin_idx < retry_coins.len() {
            // Consume the coin that said "no".
            coin_idx += 1;
        }
        i += 1;
    }
    plan
}

fn mul_duration(d: Duration, f: f64) -> Duration {
    Duration::from_nanos((d.as_nanos() as f64 * f) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_net::addr::{v4, v6};

    fn candidates() -> Vec<IpAddr> {
        vec![
            v6("2001:db8::1"),
            v6("2001:db8::2"),
            v4("192.0.2.1"),
            v4("192.0.2.2"),
        ]
    }

    #[test]
    fn prefer_v6_modes() {
        let mut p = SelectionPolicy::default();
        assert!(prefer_v6(&p, 0.99));
        p.v6_preference = V6Preference::Never;
        assert!(!prefer_v6(&p, 0.0));
        p.v6_preference = V6Preference::Probability(0.5);
        assert!(prefer_v6(&p, 0.4));
        assert!(!prefer_v6(&p, 0.6));
    }

    #[test]
    fn interleave_alternates_families() {
        let p = SelectionPolicy::default();
        let plan = plan_attempts(&p, &candidates(), true, &[]);
        let fams: Vec<Family> = plan.iter().map(|a| Family::of(a.addr)).collect();
        assert_eq!(
            fams,
            vec![Family::V6, Family::V4, Family::V6, Family::V4],
            "switch-family must interleave"
        );
    }

    #[test]
    fn stick_exhausts_family_first() {
        let p = SelectionPolicy {
            retry_style: RetryStyle::StickToFamily,
            ..SelectionPolicy::default()
        };
        let plan = plan_attempts(&p, &candidates(), true, &[]);
        let fams: Vec<Family> = plan.iter().map(|a| Family::of(a.addr)).collect();
        assert_eq!(fams, vec![Family::V6, Family::V6, Family::V4, Family::V4]);
    }

    #[test]
    fn v4_first_when_not_preferring_v6() {
        let p = SelectionPolicy::default();
        let plan = plan_attempts(&p, &candidates(), false, &[]);
        assert_eq!(Family::of(plan[0].addr), Family::V4);
    }

    #[test]
    fn unbound_style_backoff_retries_same_address() {
        let p = SelectionPolicy {
            server_timeout: Duration::from_millis(376),
            retry_same_prob: 0.44,
            backoff_factor: 3.0,
            ..SelectionPolicy::default()
        };
        // First coin says retry (0.1 < 0.44), second says stop (0.9).
        let plan = plan_attempts(&p, &candidates(), true, &[0.1, 0.9]);
        assert_eq!(plan[0].addr, plan[1].addr, "same address retried");
        assert_eq!(plan[0].timeout, Duration::from_millis(376));
        assert_eq!(plan[1].timeout, Duration::from_millis(1128), "3x backoff");
        assert_ne!(plan[2].addr, plan[0].addr);
    }

    #[test]
    fn max_attempts_caps_plan() {
        let p = SelectionPolicy {
            max_attempts: 2,
            ..SelectionPolicy::default()
        };
        assert_eq!(plan_attempts(&p, &candidates(), true, &[]).len(), 2);
    }

    #[test]
    fn single_family_candidates_work() {
        let p = SelectionPolicy::default();
        let only_v4 = vec![v4("192.0.2.1"), v4("192.0.2.2")];
        let plan = plan_attempts(&p, &only_v4, true, &[]);
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|a| Family::of(a.addr) == Family::V4));
    }

    #[test]
    fn empty_candidates_empty_plan() {
        let p = SelectionPolicy::default();
        assert!(plan_attempts(&p, &[], true, &[]).is_empty());
    }
}

//! The stub resolver: what the OS (or a browser's built-in resolver) does
//! between the application and the recursive resolver.
//!
//! Happy Eyeballs v2 §3 prescribes: send the AAAA query first, immediately
//! followed by the A query, and hand each answer to the connection logic
//! *as it arrives*. [`StubResolver::resolve_streaming`] implements exactly
//! that interface; the HE engine consumes the stream.

use std::cell::Cell;
use std::net::SocketAddr;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use lazyeye_dns::{Message, Name, Rcode, Record, RrType};
use lazyeye_net::Host;
use lazyeye_sim::sync::mpsc;
use lazyeye_sim::{now, spawn, timeout, SimTime};

/// How the stub schedules its per-type queries.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum QueryOrder {
    /// AAAA first, A immediately after (RFC 8305).
    AaaaThenA,
    /// A first, AAAA immediately after (legacy stacks).
    AThenAaaa,
}

/// Stub configuration.
#[derive(Clone, Debug)]
pub struct StubConfig {
    /// Recursive resolver addresses, tried in order on timeout.
    pub servers: Vec<SocketAddr>,
    /// Per-attempt timeout (resolv.conf `timeout`, default 5 s).
    pub attempt_timeout: Duration,
    /// Additional attempts after the first (resolv.conf `attempts`).
    pub retries: u32,
    /// Query scheduling order.
    pub order: QueryOrder,
    /// Record types to resolve in a streaming resolution. HEv3 clients add
    /// [`RrType::Https`] in front.
    pub qtypes: Vec<RrType>,
}

impl Default for StubConfig {
    fn default() -> Self {
        StubConfig {
            servers: Vec::new(),
            attempt_timeout: Duration::from_secs(5),
            retries: 1,
            order: QueryOrder::AaaaThenA,
            qtypes: vec![RrType::Aaaa, RrType::A],
        }
    }
}

/// Terminal state of one query.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AnswerOutcome {
    /// Got records (possibly zero — NODATA).
    Ok,
    /// Authoritative NXDOMAIN.
    NxDomain,
    /// Upstream SERVFAIL/REFUSED.
    ServFail,
    /// No response within all attempts.
    Timeout,
}

/// One resolved answer, delivered on the stream when it arrives.
#[derive(Clone, Debug)]
pub struct DnsAnswer {
    /// Which query this answers.
    pub qtype: RrType,
    /// Arrival instant (feeds the Resolution Delay logic).
    pub at: SimTime,
    /// The records (address records, or SVCB/HTTPS for HEv3).
    pub records: Vec<Record>,
    /// Terminal state.
    pub outcome: AnswerOutcome,
}

/// The stub resolver bound to one host.
pub struct StubResolver {
    host: Host,
    cfg: StubConfig,
    next_id: Cell<u16>,
}

impl StubResolver {
    /// Creates a stub on `host` with the given config.
    pub fn new(host: Host, cfg: StubConfig) -> StubResolver {
        StubResolver {
            host,
            cfg,
            next_id: Cell::new(1),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StubConfig {
        &self.cfg
    }

    fn fresh_id(&self) -> u16 {
        let id = self.next_id.get();
        self.next_id.set(id.wrapping_add(1));
        id
    }

    /// Sends one query and waits for its answer, retrying across servers.
    pub async fn query_one(&self, name: &Name, qtype: RrType) -> DnsAnswer {
        let id = self.fresh_id();
        let q = Message::query(id, name.clone(), qtype);
        let wire = Bytes::from(q.encode());

        let total_attempts = 1 + self.cfg.retries;
        for attempt in 0..total_attempts {
            for server in &self.cfg.servers {
                let Ok(sock) = self.host.udp_bind_any(0) else {
                    continue;
                };
                if sock.send_to(wire.clone(), *server).is_err() {
                    continue;
                }
                let wait = async {
                    loop {
                        let (payload, src) = sock.recv_from().await.ok()?;
                        if src != *server {
                            continue;
                        }
                        let Ok(resp) = Message::decode(&payload) else {
                            continue;
                        };
                        if resp.header.id == id && resp.header.qr {
                            return Some(resp);
                        }
                    }
                };
                match timeout(self.cfg.attempt_timeout, wait).await {
                    Ok(Some(resp)) => {
                        let outcome = match resp.header.rcode {
                            Rcode::NoError => AnswerOutcome::Ok,
                            Rcode::NxDomain => AnswerOutcome::NxDomain,
                            _ => AnswerOutcome::ServFail,
                        };
                        let records = resp
                            .answers
                            .into_iter()
                            .filter(|r| r.rtype() == qtype)
                            .collect();
                        return DnsAnswer {
                            qtype,
                            at: now(),
                            records,
                            outcome,
                        };
                    }
                    Ok(None) | Err(lazyeye_sim::Elapsed) => {
                        let _ = attempt; // next server / next attempt round
                    }
                }
            }
        }
        DnsAnswer {
            qtype,
            at: now(),
            records: Vec::new(),
            outcome: AnswerOutcome::Timeout,
        }
    }

    /// Issues all configured query types with the configured ordering and
    /// streams answers back as they arrive. The sender side closes once
    /// every query reached a terminal state.
    pub fn resolve_streaming(self: &Rc<Self>, name: &Name) -> mpsc::Receiver<DnsAnswer> {
        let (tx, rx) = mpsc::unbounded();
        let mut qtypes = self.cfg.qtypes.clone();
        if self.cfg.order == QueryOrder::AThenAaaa {
            // Default list is [AAAA, A]; legacy order swaps address queries
            // but leaves e.g. HTTPS in place.
            qtypes.sort_by_key(|t| match t {
                RrType::A => 0,
                RrType::Aaaa => 1,
                _ => 2,
            });
        }
        for qtype in qtypes {
            let this = Rc::clone(self);
            let tx = tx.clone();
            let name = name.clone();
            spawn(async move {
                let answer = this.query_one(&name, qtype).await;
                let _ = tx.send(answer);
            });
        }
        rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_authns::{serve, AuthConfig, AuthServer, DelayTarget, TestDomain, TestParams};
    use lazyeye_dns::{Zone, ZoneSet};
    use lazyeye_net::Network;
    use lazyeye_sim::Sim;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn sa(ip: &str, port: u16) -> SocketAddr {
        SocketAddr::new(ip.parse().unwrap(), port)
    }

    struct Bed {
        sim: Sim,
        client: lazyeye_net::Host,
        ns: lazyeye_net::Host,
        auth: AuthServer,
    }

    fn testbed(cfg: AuthConfig) -> Bed {
        let sim = Sim::new(5);
        let net = Network::new();
        let ns = net.host("ns").v4("192.0.2.53").v6("2001:db8::53").build();
        let client = net
            .host("client")
            .v4("192.0.2.100")
            .v6("2001:db8::100")
            .build();
        let auth = AuthServer::new(cfg);
        Bed {
            sim,
            client,
            ns,
            auth,
        }
    }

    fn www_zone() -> AuthConfig {
        let mut zone = Zone::new(n("example.com"));
        zone.a(&n("www.example.com"), "192.0.2.80".parse().unwrap(), 300);
        zone.aaaa(&n("www.example.com"), "2001:db8::80".parse().unwrap(), 300);
        let mut zones = ZoneSet::new();
        zones.add(zone);
        AuthConfig {
            zones,
            ..AuthConfig::default()
        }
    }

    fn stub(client: &lazyeye_net::Host) -> Rc<StubResolver> {
        Rc::new(StubResolver::new(
            client.clone(),
            StubConfig {
                servers: vec![sa("192.0.2.53", 53)],
                ..StubConfig::default()
            },
        ))
    }

    #[test]
    fn query_one_resolves() {
        let mut bed = testbed(www_zone());
        let (client, ns, auth) = (bed.client.clone(), bed.ns.clone(), bed.auth.clone());
        let ans = bed.sim.block_on(async move {
            spawn(serve(ns.udp_bind_any(53).unwrap(), auth));
            stub(&client)
                .query_one(&n("www.example.com"), RrType::A)
                .await
        });
        assert_eq!(ans.outcome, AnswerOutcome::Ok);
        assert_eq!(ans.records.len(), 1);
    }

    #[test]
    fn streaming_aaaa_first_on_wire() {
        let mut bed = testbed(www_zone());
        let (client, ns, auth) = (bed.client.clone(), bed.ns.clone(), bed.auth.clone());
        let auth2 = auth.clone();
        bed.sim.block_on(async move {
            spawn(serve(ns.udp_bind_any(53).unwrap(), auth));
            let s = stub(&client);
            let mut rx = s.resolve_streaming(&n("www.example.com"));
            let _ = rx.recv().await.unwrap();
            let _ = rx.recv().await.unwrap();
        });
        let log = auth2.query_log();
        assert_eq!(log[0].qtype, RrType::Aaaa, "AAAA must hit the wire first");
        assert_eq!(log[1].qtype, RrType::A);
    }

    #[test]
    fn streaming_delivers_a_first_when_aaaa_delayed() {
        let mut cfg = www_zone();
        cfg.qtype_delays = vec![(RrType::Aaaa, Duration::from_millis(200))];
        let mut bed = testbed(cfg);
        let (client, ns, auth) = (bed.client.clone(), bed.ns.clone(), bed.auth.clone());
        let arrivals = bed.sim.block_on(async move {
            spawn(serve(ns.udp_bind_any(53).unwrap(), auth));
            let s = stub(&client);
            let mut rx = s.resolve_streaming(&n("www.example.com"));
            let first = rx.recv().await.unwrap();
            let second = rx.recv().await.unwrap();
            (first.qtype, second.qtype, second.at.as_millis())
        });
        assert_eq!(arrivals.0, RrType::A, "undelayed A answer arrives first");
        assert_eq!(arrivals.1, RrType::Aaaa);
        assert!(arrivals.2 >= 200);
    }

    #[test]
    fn timeout_outcome_when_server_dead() {
        let mut bed = testbed(www_zone());
        let client = bed.client.clone();
        // No server task spawned: queries vanish.
        let ans = bed.sim.block_on(async move {
            let s = Rc::new(StubResolver::new(
                client.clone(),
                StubConfig {
                    servers: vec![sa("192.0.2.53", 53)],
                    attempt_timeout: Duration::from_millis(100),
                    retries: 1,
                    ..StubConfig::default()
                },
            ));
            s.query_one(&n("www.example.com"), RrType::A).await
        });
        assert_eq!(ans.outcome, AnswerOutcome::Timeout);
        // 2 attempts x 100 ms.
        assert_eq!(bed.sim.now().as_millis(), 200);
    }

    #[test]
    fn nxdomain_outcome() {
        let mut bed = testbed(www_zone());
        let (client, ns, auth) = (bed.client.clone(), bed.ns.clone(), bed.auth.clone());
        let ans = bed.sim.block_on(async move {
            spawn(serve(ns.udp_bind_any(53).unwrap(), auth));
            stub(&client)
                .query_one(&n("missing.example.com"), RrType::A)
                .await
        });
        assert_eq!(ans.outcome, AnswerOutcome::NxDomain);
        assert!(ans.records.is_empty());
    }

    #[test]
    fn legacy_order_sends_a_first() {
        let mut bed = testbed(www_zone());
        let (client, ns, auth) = (bed.client.clone(), bed.ns.clone(), bed.auth.clone());
        let auth2 = auth.clone();
        bed.sim.block_on(async move {
            spawn(serve(ns.udp_bind_any(53).unwrap(), auth));
            let s = Rc::new(StubResolver::new(
                client.clone(),
                StubConfig {
                    servers: vec![sa("192.0.2.53", 53)],
                    order: QueryOrder::AThenAaaa,
                    ..StubConfig::default()
                },
            ));
            let mut rx = s.resolve_streaming(&n("www.example.com"));
            let _ = rx.recv().await;
            let _ = rx.recv().await;
        });
        assert_eq!(auth2.query_log()[0].qtype, RrType::A);
    }

    #[test]
    fn rd_test_domain_via_stub() {
        // End-to-end: parameter-encoded name delays only the AAAA answer.
        let cfg = AuthConfig {
            test_domains: vec![TestDomain {
                apex: n("rd.test"),
                v4: vec!["192.0.2.80".parse().unwrap()],
                v6: vec!["2001:db8::80".parse().unwrap()],
                ttl: 60,
            }],
            ..AuthConfig::default()
        };
        let mut bed = testbed(cfg);
        let (client, ns, auth) = (bed.client.clone(), bed.ns.clone(), bed.auth.clone());
        let qname = n(&format!(
            "{}.rd.test",
            TestParams::delay(120, DelayTarget::Aaaa, "s1").to_label()
        ));
        let (first, second_ms) = bed.sim.block_on(async move {
            spawn(serve(ns.udp_bind_any(53).unwrap(), auth));
            let s = stub(&client);
            let mut rx = s.resolve_streaming(&qname);
            let first = rx.recv().await.unwrap();
            let second = rx.recv().await.unwrap();
            (first.qtype, second.at.as_millis())
        });
        assert_eq!(first, RrType::A);
        assert!(second_ms >= 120);
    }
}

//! # lazyeye-resolver — stub and recursive DNS resolution
//!
//! Two resolvers built on the simulated network:
//!
//! * [`StubResolver`] — the client-side stub (OS or browser-internal): it
//!   issues AAAA-then-A per RFC 8305 and **streams** answers to the Happy
//!   Eyeballs engine as they arrive, which is what makes the Resolution
//!   Delay measurable.
//! * [`RecursiveResolver`] — a full iterative resolver (root hints,
//!   delegations, glue, CNAME chasing, TTL + negative caching) whose
//!   name-server *selection policy* is parameterised: IPv6 preference,
//!   per-server timeout, same-address backoff, family interleaving. The
//!   [`profiles`] module instantiates BIND 9, Unbound, Knot and the 17
//!   public services the paper measured (§5.3, Tables 3 & 4).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod policy;
pub mod profiles;
mod recursive;
mod serve;
mod stub;

pub use cache::DnsCache;
pub use policy::{
    plan_attempts, prefer_v6, Attempt, NsQueryStyle, RetryStyle, SelectionPolicy, V6Preference,
};
pub use profiles::{
    all_profiles, bind9, knot, open_resolver_profiles, software_profiles, unbound, AaaaMarker,
    ProfileKind, ResolverProfile,
};
pub use recursive::{RecursiveConfig, RecursiveResolver, ResolveError, ResolveResult};
pub use serve::serve_recursive;
pub use stub::{AnswerOutcome, DnsAnswer, QueryOrder, StubConfig, StubResolver};

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_authns::{serve, AuthConfig, AuthServer};
    use lazyeye_dns::{Name, RData, Rcode, Record, RrType, Zone, ZoneSet};
    use lazyeye_net::{Direction, Family, Host, Netem, NetemRule, Network, Proto};
    use lazyeye_sim::{spawn, Sim};
    use std::net::{IpAddr, SocketAddr};
    use std::rc::Rc;
    use std::time::Duration;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    /// Topology: root NS + "test." auth NS (dual-stack) + resolver + client.
    struct Bed {
        sim: Sim,
        root: Host,
        auth: Host,
        resolver_host: Host,
        roots: Vec<(Name, Vec<IpAddr>)>,
    }

    fn build_bed(seed: u64) -> Bed {
        let sim = Sim::new(seed);
        let net = Network::new();
        let root = net
            .host("root-ns")
            .v4("198.41.0.4")
            .v6("2001:503:ba3e::2:30")
            .build();
        let auth = net
            .host("auth-ns")
            .v4("192.0.2.53")
            .v6("2001:db8:53::53")
            .build();
        let resolver_host = net
            .host("resolver")
            .v4("192.0.2.10")
            .v6("2001:db8::10")
            .build();

        // Root zone: delegate "test." to ns1.test with dual-stack glue.
        let mut root_zone = Zone::new(Name::root());
        root_zone.ns(&n("test"), &n("ns1.test"), 3600);
        root_zone.a(&n("ns1.test"), "192.0.2.53".parse().unwrap(), 3600);
        root_zone.aaaa(&n("ns1.test"), "2001:db8:53::53".parse().unwrap(), 3600);
        let mut root_zones = ZoneSet::new();
        root_zones.add(root_zone);

        // test. zone content.
        let mut test_zone = Zone::new(n("test"));
        test_zone.ns(&n("test"), &n("ns1.test"), 3600);
        test_zone.a(&n("www.test"), "203.0.113.80".parse().unwrap(), 300);
        test_zone.aaaa(&n("www.test"), "2001:db8:80::80".parse().unwrap(), 300);
        test_zone.add(Record::new(
            n("alias.test"),
            300,
            RData::Cname(n("www.test")),
        ));
        let mut test_zones = ZoneSet::new();
        test_zones.add(test_zone);

        let auth_server = AuthServer::new(AuthConfig {
            zones: test_zones,
            ..AuthConfig::default()
        });
        let root_server = AuthServer::new(AuthConfig {
            zones: root_zones,
            ..AuthConfig::default()
        });

        let roots = vec![(
            n("ns.root"),
            vec![
                "198.41.0.4".parse::<IpAddr>().unwrap(),
                "2001:503:ba3e::2:30".parse::<IpAddr>().unwrap(),
            ],
        )];

        sim.enter(|| {
            spawn(serve(root.udp_bind_any(53).unwrap(), root_server));
            spawn(serve(auth.udp_bind_any(53).unwrap(), auth_server.clone()));
        });

        let _ = auth_server;
        Bed {
            sim,
            root,
            auth,
            resolver_host,
            roots,
        }
    }

    #[test]
    fn resolves_through_delegation() {
        let mut bed = build_bed(1);
        let resolver = RecursiveResolver::new(
            bed.resolver_host.clone(),
            RecursiveConfig::new(bed.roots.clone()),
        );
        let res = bed
            .sim
            .block_on(async move { resolver.resolve(&n("www.test"), RrType::A).await.unwrap() });
        assert_eq!(res.rcode, Rcode::NoError);
        assert_eq!(res.records.len(), 1);
        assert_eq!(
            res.records[0].rdata,
            RData::A("203.0.113.80".parse().unwrap())
        );
    }

    #[test]
    fn second_resolution_hits_cache() {
        let mut bed = build_bed(1);
        let resolver = RecursiveResolver::new(
            bed.resolver_host.clone(),
            RecursiveConfig::new(bed.roots.clone()),
        );
        let r2 = Rc::clone(&resolver);
        bed.sim.block_on(async move {
            let _ = r2.resolve(&n("www.test"), RrType::Aaaa).await.unwrap();
            let before = r2.cache_stats();
            let _ = r2.resolve(&n("www.test"), RrType::Aaaa).await.unwrap();
            let after = r2.cache_stats();
            assert!(after.0 > before.0, "second resolve must be a cache hit");
        });
        // No second round of packets to the auth server.
        let auth_queries = bed.auth.capture().udp_rx().count();
        assert_eq!(auth_queries, 1, "only one AAAA query reaches the auth NS");
    }

    #[test]
    fn cname_is_chased() {
        let mut bed = build_bed(1);
        let resolver = RecursiveResolver::new(
            bed.resolver_host.clone(),
            RecursiveConfig::new(bed.roots.clone()),
        );
        let res = bed
            .sim
            .block_on(async move { resolver.resolve(&n("alias.test"), RrType::A).await.unwrap() });
        assert_eq!(res.records.len(), 2, "CNAME + A");
        assert_eq!(res.records[0].rtype(), RrType::Cname);
        assert_eq!(res.records[1].rtype(), RrType::A);
    }

    #[test]
    fn nxdomain_resolution() {
        let mut bed = build_bed(1);
        let resolver = RecursiveResolver::new(
            bed.resolver_host.clone(),
            RecursiveConfig::new(bed.roots.clone()),
        );
        let res = bed.sim.block_on(async move {
            resolver
                .resolve(&n("missing.test"), RrType::A)
                .await
                .unwrap()
        });
        assert_eq!(res.rcode, Rcode::NxDomain);
        assert!(res.records.is_empty());
    }

    #[test]
    fn always_prefer_v6_uses_v6_to_auth() {
        let mut bed = build_bed(1);
        let mut cfg = RecursiveConfig::new(bed.roots.clone());
        cfg.policy = bind9().policy;
        let resolver = RecursiveResolver::new(bed.resolver_host.clone(), cfg);
        bed.sim.block_on(async move {
            let _ = resolver.resolve(&n("www.test"), RrType::A).await.unwrap();
        });
        let cap = bed.auth.capture();
        let v6_queries = cap
            .records()
            .iter()
            .filter(|r| r.dir == Direction::Rx && r.proto == Proto::Udp)
            .filter(|r| r.family() == Family::V6)
            .count();
        let v4_queries = cap
            .records()
            .iter()
            .filter(|r| r.dir == Direction::Rx && r.proto == Proto::Udp)
            .filter(|r| r.family() == Family::V4)
            .count();
        assert!(v6_queries > 0, "BIND profile must reach auth over IPv6");
        assert_eq!(v4_queries, 0, "no IPv4 needed when IPv6 answers");
    }

    #[test]
    fn never_prefer_v6_uses_v4_to_auth() {
        let mut bed = build_bed(1);
        let mut cfg = RecursiveConfig::new(bed.roots.clone());
        cfg.policy.v6_preference = V6Preference::Never;
        let resolver = RecursiveResolver::new(bed.resolver_host.clone(), cfg);
        bed.sim.block_on(async move {
            let _ = resolver.resolve(&n("www.test"), RrType::A).await.unwrap();
        });
        let cap = bed.auth.capture();
        let v6_queries = cap
            .records()
            .iter()
            .filter(|r| r.dir == Direction::Rx && r.family() == Family::V6)
            .count();
        assert_eq!(v6_queries, 0);
    }

    #[test]
    fn falls_back_to_v4_when_v6_blackholed() {
        let mut bed = build_bed(1);
        // The auth NS IPv6 address swallows packets (shaped away).
        bed.auth.blackhole("2001:db8:53::53".parse().unwrap());
        let mut cfg = RecursiveConfig::new(bed.roots.clone());
        cfg.policy = bind9().policy; // always v6 first, 800 ms timeout
        let resolver = RecursiveResolver::new(bed.resolver_host.clone(), cfg);
        let res = bed
            .sim
            .block_on(async move { resolver.resolve(&n("www.test"), RrType::A).await.unwrap() });
        assert_eq!(res.records.len(), 1, "answer still obtained via IPv4");
        // The fallback is visible on the resolver host: a v6 query with no
        // answer, then a v4 query ~800 ms later.
        let cap = bed.resolver_host.capture();
        let v6_tx: Vec<_> = cap
            .records()
            .iter()
            .filter(|r| {
                r.dir == Direction::Tx
                    && r.family() == Family::V6
                    && r.dst.port() == 53
                    && r.dst.ip() == "2001:db8:53::53".parse::<IpAddr>().unwrap()
            })
            .collect();
        assert_eq!(v6_tx.len(), 1, "BIND sends exactly one IPv6 packet");
    }

    #[test]
    fn unbound_backoff_retries_same_v6_address() {
        // Find a seed where Unbound (a) picks v6 first and (b) retries it.
        for seed in 0..50 {
            let mut bed = build_bed(seed);
            bed.auth.blackhole("2001:db8:53::53".parse().unwrap());
            let mut cfg = RecursiveConfig::new(bed.roots.clone());
            cfg.policy = unbound().policy;
            let resolver = RecursiveResolver::new(bed.resolver_host.clone(), cfg);
            let res = bed
                .sim
                .block_on(async move { resolver.resolve(&n("www.test"), RrType::A).await });
            assert!(res.is_ok(), "must still resolve via v4");
            let cap = bed.resolver_host.capture();
            let v6_times: Vec<_> = cap
                .records()
                .iter()
                .filter(|r| {
                    r.dir == Direction::Tx
                        && r.dst.ip() == "2001:db8:53::53".parse::<IpAddr>().unwrap()
                })
                .map(|r| r.time)
                .collect();
            if v6_times.len() == 2 {
                let gap = (v6_times[1] - v6_times[0]).as_millis();
                assert_eq!(gap, 376, "retry after the 376 ms timeout");
                return;
            }
        }
        panic!("no seed produced an Unbound same-address retry in 50 tries");
    }

    #[test]
    fn stub_through_recursive_end_to_end() {
        let mut bed = build_bed(1);
        let resolver = RecursiveResolver::new(
            bed.resolver_host.clone(),
            RecursiveConfig::new(bed.roots.clone()),
        );
        let resolver_host = bed.resolver_host.clone();
        // A separate client host using the resolver via stub.
        let net_client = {
            // reuse the bed's network through any host handle: build via root's network
            // (hosts share the world), so just bind a new address on resolver's net.
            // Simplest: give the resolver host a client role too.
            resolver_host.clone()
        };
        let ans = bed.sim.block_on(async move {
            spawn(serve_recursive(
                resolver_host.udp_bind_any(53).unwrap(),
                resolver,
            ));
            let stub = Rc::new(StubResolver::new(
                net_client.clone(),
                StubConfig {
                    servers: vec![SocketAddr::new("192.0.2.10".parse().unwrap(), 53)],
                    ..StubConfig::default()
                },
            ));
            stub.query_one(&n("www.test"), RrType::Aaaa).await
        });
        assert_eq!(ans.outcome, AnswerOutcome::Ok);
        assert_eq!(
            ans.records[0].rdata,
            RData::Aaaa("2001:db8:80::80".parse().unwrap())
        );
    }

    #[test]
    fn slow_auth_delegates_timeout_to_stub() {
        // The paper's §5.2 finding: clients without their own DNS timeout
        // inherit the recursive resolver's. Delay AAAA at the auth server
        // beyond the resolver's per-server timeout and watch the stub wait.
        let mut bed = build_bed(1);
        bed.auth.add_egress(NetemRule::all(Netem::delay_ms(0))); // no-op rule exercise
        let mut cfg = RecursiveConfig::new(bed.roots.clone());
        cfg.policy.server_timeout = Duration::from_millis(300);
        cfg.policy.max_attempts = 2;
        let resolver = RecursiveResolver::new(bed.resolver_host.clone(), cfg);
        let resolver_host = bed.resolver_host.clone();

        // Delay every response from the auth server by 900 ms (looks like a
        // slow path; resolver retries at 300 ms and eventually gets the
        // late answer or fails).
        let auth_host = bed.auth.clone();
        auth_host.clear_netem();
        auth_host.add_egress(NetemRule::all(Netem::delay_ms(900)).with_proto(Proto::Udp));

        let (outcome, elapsed_ms) = bed.sim.block_on(async move {
            spawn(serve_recursive(
                resolver_host.udp_bind_any(53).unwrap(),
                resolver,
            ));
            let stub = Rc::new(StubResolver::new(
                resolver_host.clone(),
                StubConfig {
                    servers: vec![SocketAddr::new("192.0.2.10".parse().unwrap(), 53)],
                    attempt_timeout: Duration::from_secs(5),
                    retries: 0,
                    ..StubConfig::default()
                },
            ));
            let t0 = lazyeye_sim::now();
            let ans = stub.query_one(&n("www.test"), RrType::Aaaa).await;
            (ans.outcome, (lazyeye_sim::now() - t0).as_millis())
        });
        // Either the resolver eventually fails over and answers late, or
        // the stub sees SERVFAIL/timeout — in all cases the stub waited on
        // the *resolver's* schedule, far beyond any HE Resolution Delay.
        assert!(elapsed_ms >= 300, "stub waited {elapsed_ms} ms");
        let _ = outcome;
    }

    #[test]
    fn root_capture_sees_exactly_one_referral_exchange() {
        let mut bed = build_bed(1);
        let resolver = RecursiveResolver::new(
            bed.resolver_host.clone(),
            RecursiveConfig::new(bed.roots.clone()),
        );
        bed.sim.block_on(async move {
            let _ = resolver.resolve(&n("www.test"), RrType::A).await.unwrap();
        });
        let root_rx = bed.root.capture().udp_rx().count();
        assert_eq!(
            root_rx, 1,
            "one query to the root, then the referral is followed"
        );
    }
}

//! Serving recursive resolution to stub clients over UDP.

use std::rc::Rc;

use bytes::Bytes;
use lazyeye_dns::{Message, Rcode};
use lazyeye_net::UdpSocket;
use lazyeye_sim::spawn;

use crate::recursive::{RecursiveResolver, ResolveError};

/// Serves stub queries on the socket: each query triggers a full iterative
/// resolution and the result is returned with RA set. Queries run
/// concurrently — one slow upstream never blocks the next client, which is
/// exactly the property that lets browsers "delegate their timeouts to the
/// resolver" (§5.2 of the paper).
pub async fn serve_recursive(sock: UdpSocket, resolver: Rc<RecursiveResolver>) {
    let sock = Rc::new(sock);
    loop {
        let Ok((payload, src)) = sock.recv_from().await else {
            return;
        };
        let Ok(query) = Message::decode(&payload) else {
            continue;
        };
        let Some(q) = query.question().cloned() else {
            continue;
        };
        let resolver = Rc::clone(&resolver);
        let sock = Rc::clone(&sock);
        spawn(async move {
            let result = resolver.resolve(&q.name, q.qtype).await;
            let mut resp = match result {
                Ok(res) => {
                    let mut m = Message::response_to(&query, res.rcode, false);
                    m.answers = res.records;
                    m
                }
                Err(ResolveError::Timeout) | Err(ResolveError::NoServers) => {
                    Message::response_to(&query, Rcode::ServFail, false)
                }
                Err(_) => Message::response_to(&query, Rcode::ServFail, false),
            };
            resp.header.ra = true;
            let _ = sock.send_to(Bytes::from(resp.encode()), src);
        });
    }
}

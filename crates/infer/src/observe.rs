//! Per-run observations: the reduction of one trace (or one campaign run
//! output) to exactly the facts inference consumes.
//!
//! The inference layer never touches raw traces during a campaign — the
//! executor already reduces every run to a small output on the worker.
//! [`Observation`] is the shared denominator both paths produce: the
//! trace path via [`Observation::from_trace`], the campaign path via a
//! converter on its own run-output type.

use lazyeye_net::Family;
use lazyeye_trace::Trace;

/// Which case family an observation came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CaseKind {
    /// Connection Attempt Delay sweep (IPv6 path delayed).
    Cad,
    /// Resolution Delay sweep (one DNS record type delayed).
    Rd,
    /// Address-selection run (dead addresses, watch the order).
    Selection,
    /// Resolver run (server-side view of a recursive resolver).
    Resolver,
}

lazyeye_json::impl_json_unit_enum!(CaseKind {
    Cad,
    Rd,
    Selection,
    Resolver
});

impl CaseKind {
    /// Parses the case label used in trace metadata and report cells.
    pub fn parse(s: &str) -> Option<CaseKind> {
        match s {
            "cad" => Some(CaseKind::Cad),
            "rd" => Some(CaseKind::Rd),
            "selection" => Some(CaseKind::Selection),
            "resolver" => Some(CaseKind::Resolver),
            _ => None,
        }
    }
}

/// One run's inference-relevant facts.
#[derive(Clone, Debug, PartialEq)]
pub struct Observation {
    /// Case family.
    pub case: CaseKind,
    /// Subject id (client profile id or resolver name).
    pub subject: String,
    /// Cell condition (netem label, delayed-record label, `"-"`).
    pub condition: String,
    /// Configured delay of the run (ms).
    pub delay_ms: u64,
    /// Repetition index.
    pub rep: u32,
    /// Established family (CAD/RD) or first-query family (resolver).
    pub family: Option<Family>,
    /// Observed CAD (ms): first IPv4 attempt − first IPv6 attempt.
    pub observed_cad_ms: Option<f64>,
    /// Whether AAAA hit the wire before A.
    pub aaaa_first: Option<bool>,
    /// Whether a Resolution Delay timer was armed.
    pub used_rd: bool,
    /// The armed Resolution Delay (ms), when the trace recorded it.
    pub rd_delay_ms: Option<u64>,
    /// When the first connection attempt left the client (ms).
    pub first_attempt_ms: Option<f64>,
    /// Family sequence of distinct attempted addresses.
    pub attempt_order: Vec<Family>,
    /// Distinct IPv6 addresses attempted.
    pub v6_addrs_used: u64,
    /// Distinct IPv4 addresses attempted.
    pub v4_addrs_used: u64,
}

impl Observation {
    /// An empty observation shell for `(case, subject, condition, delay,
    /// rep)` — converters fill in what they know.
    pub fn shell(
        case: CaseKind,
        subject: &str,
        condition: &str,
        delay_ms: u64,
        rep: u32,
    ) -> Observation {
        crate::metrics::observations().inc();
        Observation {
            case,
            subject: subject.to_string(),
            condition: condition.to_string(),
            delay_ms,
            rep,
            family: None,
            observed_cad_ms: None,
            aaaa_first: None,
            used_rd: false,
            rd_delay_ms: None,
            first_attempt_ms: None,
            attempt_order: Vec::new(),
            v6_addrs_used: 0,
            v4_addrs_used: 0,
        }
    }

    /// Reduces one trace to its observation. Returns `None` when the
    /// trace's case label is unknown.
    pub fn from_trace(trace: &Trace) -> Option<Observation> {
        let case = CaseKind::parse(&trace.meta.case)?;
        let mut o = Observation::shell(
            case,
            &trace.meta.subject,
            &trace.meta.condition,
            trace.meta.configured_delay_ms,
            trace.meta.rep,
        );
        match case {
            CaseKind::Resolver => {
                // Server-side view: family of the first arrived query, and
                // nothing client-side.
                let v6 = trace.query_arrivals_ms(Family::V6);
                let v4 = trace.query_arrivals_ms(Family::V4);
                o.family = match (v6.first(), v4.first()) {
                    (Some(a), Some(b)) => Some(if a <= b { Family::V6 } else { Family::V4 }),
                    (Some(_), None) => Some(Family::V6),
                    (None, Some(_)) => Some(Family::V4),
                    (None, None) => None,
                };
                o.observed_cad_ms = match (v6.first(), v4.first()) {
                    (Some(a), Some(b)) if b > a => Some(b - a),
                    _ => None,
                };
            }
            _ => {
                o.family = trace.established_family();
                o.observed_cad_ms = trace.observed_cad_ms();
                o.aaaa_first = trace.aaaa_first();
                o.rd_delay_ms = trace.resolution_delay_ms();
                o.used_rd = o.rd_delay_ms.is_some();
                o.first_attempt_ms = trace
                    .first_attempt_ms(Family::V6)
                    .into_iter()
                    .chain(trace.first_attempt_ms(Family::V4))
                    .fold(None, |acc: Option<f64>, t| {
                        Some(acc.map_or(t, |a| a.min(t)))
                    });
                o.attempt_order = trace.attempt_order();
                o.v6_addrs_used = trace.addrs_used(Family::V6) as u64;
                o.v4_addrs_used = trace.addrs_used(Family::V4) as u64;
            }
        }
        Some(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_trace::{TraceEvent, TraceEventKind, TraceMeta};

    fn meta(case: &str) -> TraceMeta {
        TraceMeta {
            subject: "chrome-130.0".into(),
            case: case.into(),
            condition: "baseline".into(),
            configured_delay_ms: 400,
            rep: 0,
            seed: 7,
        }
    }

    #[test]
    fn cad_trace_reduces_to_observation() {
        let trace = Trace {
            meta: meta("cad"),
            events: vec![
                TraceEvent {
                    at_ns: 1_000_000,
                    kind: TraceEventKind::AttemptStarted {
                        index: 0,
                        addr: "2001:db8::1".into(),
                        family: Family::V6,
                        proto: "tcp".into(),
                    },
                },
                TraceEvent {
                    at_ns: 301_000_000,
                    kind: TraceEventKind::AttemptStarted {
                        index: 1,
                        addr: "192.0.2.1".into(),
                        family: Family::V4,
                        proto: "tcp".into(),
                    },
                },
                TraceEvent {
                    at_ns: 302_000_000,
                    kind: TraceEventKind::Established {
                        addr: "192.0.2.1".into(),
                        family: Family::V4,
                        proto: "tcp".into(),
                    },
                },
            ],
        };
        let o = Observation::from_trace(&trace).unwrap();
        assert_eq!(o.case, CaseKind::Cad);
        assert_eq!(o.family, Some(Family::V4));
        assert_eq!(o.observed_cad_ms, Some(300.0));
        assert_eq!(o.first_attempt_ms, Some(1.0));
        assert_eq!(o.attempt_order, vec![Family::V6, Family::V4]);
    }

    #[test]
    fn resolver_trace_uses_server_side_arrivals() {
        let trace = Trace {
            meta: meta("resolver"),
            events: vec![
                TraceEvent {
                    at_ns: 5_000_000,
                    kind: TraceEventKind::QueryArrived {
                        qtype: "A".into(),
                        family: Family::V6,
                    },
                },
                TraceEvent {
                    at_ns: 805_000_000,
                    kind: TraceEventKind::QueryArrived {
                        qtype: "A".into(),
                        family: Family::V4,
                    },
                },
            ],
        };
        let o = Observation::from_trace(&trace).unwrap();
        assert_eq!(o.family, Some(Family::V6));
        assert_eq!(o.observed_cad_ms, Some(800.0));
    }

    #[test]
    fn unknown_case_is_none() {
        let trace = Trace {
            meta: meta("weird"),
            events: vec![],
        };
        assert!(Observation::from_trace(&trace).is_none());
    }
}

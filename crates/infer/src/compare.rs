//! Profile/report comparison primitives: typed field-level deltas shared
//! by the campaign's inference-vs-summary agreement check and the
//! `lazyeye campaign --diff` report differ.

use lazyeye_json::ToJson;

use crate::profile::InferredProfile;

/// One changed field: `field: old -> new`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDelta {
    /// Field path (`"cad.estimate_ms"`, `"cells[cad/chrome].v6_share_pct"`).
    pub field: String,
    /// Old / left-hand rendering (`"-"` for absent).
    pub old: String,
    /// New / right-hand rendering.
    pub new: String,
}

lazyeye_json::impl_json_struct!(FieldDelta { field, old, new });

impl std::fmt::Display for FieldDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} -> {}", self.field, self.old, self.new)
    }
}

/// Renders an optional value for a delta (`"-"` for `None`).
pub fn fmt_opt<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "-".to_string(),
    }
}

/// Collects a delta when two renderings differ.
pub fn push_delta(out: &mut Vec<FieldDelta>, field: impl Into<String>, old: String, new: String) {
    if old != new {
        out.push(FieldDelta {
            field: field.into(),
            old,
            new,
        });
    }
}

/// Field-level diff of two inferred profiles (same subject or not); used
/// to compare a client across versions or campaigns.
pub fn diff_profiles(old: &InferredProfile, new: &InferredProfile) -> Vec<FieldDelta> {
    let mut out = Vec::new();
    push_delta(
        &mut out,
        "prefers_v6",
        fmt_opt(&old.prefers_v6),
        fmt_opt(&new.prefers_v6),
    );
    push_delta(
        &mut out,
        "aaaa_first",
        fmt_opt(&old.aaaa_first),
        fmt_opt(&new.aaaa_first),
    );
    push_delta(
        &mut out,
        "cad.implemented",
        fmt_opt(&old.cad.implemented),
        fmt_opt(&new.cad.implemented),
    );
    push_delta(
        &mut out,
        "cad.estimate_ms",
        fmt_opt(&old.cad.estimate_ms),
        fmt_opt(&new.cad.estimate_ms),
    );
    push_delta(
        &mut out,
        "cad.last_v6_delay_ms",
        fmt_opt(&old.cad.last_v6_delay_ms),
        fmt_opt(&new.cad.last_v6_delay_ms),
    );
    push_delta(
        &mut out,
        "cad.first_v4_delay_ms",
        fmt_opt(&old.cad.first_v4_delay_ms),
        fmt_opt(&new.cad.first_v4_delay_ms),
    );
    push_delta(
        &mut out,
        "rd.implemented",
        fmt_opt(&old.rd.implemented),
        fmt_opt(&new.rd.implemented),
    );
    push_delta(
        &mut out,
        "rd.delay_ms",
        fmt_opt(&old.rd.delay_ms),
        fmt_opt(&new.rd.delay_ms),
    );
    push_delta(
        &mut out,
        "rd.waits_for_all_answers",
        fmt_opt(&old.rd.waits_for_all_answers),
        fmt_opt(&new.rd.waits_for_all_answers),
    );
    push_delta(
        &mut out,
        "sorting",
        old.sorting.to_json().to_string_compact(),
        new.sorting.to_json().to_string_compact(),
    );
    push_delta(
        &mut out,
        "v6_addrs_used",
        fmt_opt(&old.v6_addrs_used),
        fmt_opt(&new.v6_addrs_used),
    );
    push_delta(
        &mut out,
        "v4_addrs_used",
        fmt_opt(&old.v4_addrs_used),
        fmt_opt(&new.v4_addrs_used),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{CaseKind, Observation};
    use crate::profile::infer_profile;
    use lazyeye_net::Family;

    #[test]
    fn identical_profiles_produce_no_deltas() {
        let mut v6 = Observation::shell(CaseKind::Cad, "c", "baseline", 0, 0);
        v6.family = Some(Family::V6);
        let p = infer_profile("c", &[v6]);
        assert!(diff_profiles(&p, &p).is_empty());
    }

    #[test]
    fn changed_cad_shows_up() {
        let mk = |fallback: bool| {
            let mut v6 = Observation::shell(CaseKind::Cad, "c", "baseline", 0, 0);
            v6.family = Some(Family::V6);
            let mut far = Observation::shell(CaseKind::Cad, "c", "baseline", 400, 0);
            far.family = Some(if fallback { Family::V4 } else { Family::V6 });
            far.observed_cad_ms = fallback.then_some(300.0);
            infer_profile("c", &[v6, far])
        };
        let deltas = diff_profiles(&mk(false), &mk(true));
        assert!(deltas.iter().any(|d| d.field == "cad.implemented"));
        let d = deltas
            .iter()
            .find(|d| d.field == "cad.estimate_ms")
            .unwrap();
        assert_eq!(d.old, "-");
        assert_eq!(d.new, "300");
        assert_eq!(d.to_string(), "cad.estimate_ms: - -> 300");
    }
}

//! Inference-pipeline metrics.
//!
//! Everything here is [`Clock::Virtual`]: the inference fold is a pure
//! function of its input observations, so these counters are
//! byte-pinnable in the CI exposition whatever the worker count.

use lazyeye_obs::{counter, Clock, Counter};

/// Observations reduced into the inference fold (one per
/// [`Observation::shell`](crate::Observation::shell) construction, which
/// both the trace and the campaign reduction paths go through).
pub fn observations() -> &'static Counter {
    counter("infer.observations", Clock::Virtual)
}

/// Candidate thresholds evaluated by
/// [`detect_switchover`](crate::detect_switchover) (the `-∞` threshold
/// plus one per distinct delay).
pub fn changepoint_candidates() -> &'static Counter {
    counter("infer.changepoint.candidates", Clock::Virtual)
}

/// Runs the best-fit step model misclassified (0 on clean sweeps; each
/// one is an [`InferenceMisfit`](lazyeye_obs::trigger::TriggerKind)
/// trigger candidate).
pub fn misfit_runs() -> &'static Counter {
    counter("infer.misfit.runs", Clock::Virtual)
}

/// Conformance features scored `UNMEASURABLE`.
pub fn unmeasurable_features() -> &'static Counter {
    counter("infer.unmeasurable", Clock::Virtual)
}

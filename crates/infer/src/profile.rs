//! Profile inference: a sweep's observations → the client's inferred
//! Happy Eyeballs state-machine parameters.

use lazyeye_net::Family;
use lazyeye_trace::TraceSet;

use crate::changepoint::detect_switchover;
use crate::observe::{CaseKind, Observation};

/// How the client orders connection attempts across address families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortingPolicy {
    /// No selection observation available.
    Unknown,
    /// Sticks to the first family; never touches the other (wget).
    NoFallback,
    /// One address per family, then stops (the HEv1 clients).
    SingleFallback,
    /// Walks multiple addresses but family-grouped (RFC 6724-style
    /// sequential order, no interleaving).
    Grouped,
    /// Alternates address families across the candidate list (RFC 8305
    /// §4 / Safari-style).
    Interleaved,
}

lazyeye_json::impl_json_unit_enum!(SortingPolicy {
    Unknown,
    NoFallback,
    SingleFallback,
    Grouped,
    Interleaved
});

/// The inferred Connection Attempt Delay behaviour.
#[derive(Clone, Debug, PartialEq)]
pub struct CadEstimate {
    /// Whether the client ever fell back to IPv4 (`None`: no CAD case
    /// observed at all).
    pub implemented: Option<bool>,
    /// Largest configured delay the changepoint fit assigns to IPv6.
    pub last_v6_delay_ms: Option<u64>,
    /// Smallest configured delay above the fitted changepoint won by IPv4.
    pub first_v4_delay_ms: Option<u64>,
    /// The CAD estimate (ms): median observed attempt gap when fallback
    /// happened, else the changepoint bracket's lower edge.
    pub estimate_ms: Option<f64>,
    /// Observations the changepoint step model misclassifies.
    pub misfits: u64,
}

lazyeye_json::impl_json_struct!(CadEstimate {
    implemented,
    last_v6_delay_ms,
    first_v4_delay_ms,
    estimate_ms,
    misfits,
});

/// The inferred Resolution Delay behaviour.
#[derive(Clone, Debug, PartialEq)]
pub struct RdEstimate {
    /// Whether an RD timer was ever armed (`None`: no RD case observed).
    pub implemented: Option<bool>,
    /// The armed delay (ms), when traces recorded it.
    pub delay_ms: Option<u64>,
    /// Whether the client stalls until *all* lookups answer (the §5.2
    /// delayed-A stall); `None` when no delayed-A cell was observed.
    pub waits_for_all_answers: Option<bool>,
}

lazyeye_json::impl_json_struct!(RdEstimate {
    implemented,
    delay_ms,
    waits_for_all_answers,
});

/// Everything inferred about one subject.
#[derive(Clone, Debug, PartialEq)]
pub struct InferredProfile {
    /// Subject id (client profile id).
    pub subject: String,
    /// Observations folded in.
    pub runs: u64,
    /// IPv6 share (%) at the smallest configured delay of the CAD cell.
    pub v6_share_pct: Option<f64>,
    /// Whether the client prefers IPv6 on a healthy path.
    pub prefers_v6: Option<bool>,
    /// Whether AAAA is queried before A (majority over known runs).
    pub aaaa_first: Option<bool>,
    /// Connection Attempt Delay inference.
    pub cad: CadEstimate,
    /// Resolution Delay inference.
    pub rd: RdEstimate,
    /// Address-sorting policy.
    pub sorting: SortingPolicy,
    /// Max distinct IPv6 addresses attempted in selection runs.
    pub v6_addrs_used: Option<u64>,
    /// Max distinct IPv4 addresses attempted in selection runs.
    pub v4_addrs_used: Option<u64>,
}

lazyeye_json::impl_json_struct!(InferredProfile {
    subject,
    runs,
    v6_share_pct,
    prefers_v6,
    aaaa_first,
    cad,
    rd,
    sorting,
    v6_addrs_used,
    v4_addrs_used,
});

/// Picks the canonical condition of a case for a subject: `preferred`
/// when present, else the lexicographically smallest — mirroring the
/// campaign roll-up's cell choice so the two derivations must agree.
/// Public so forensics can locate the exact cell a verdict came from.
pub fn canonical_condition<'a>(obs: &'a [&Observation], preferred: &'a str) -> Option<&'a str> {
    let mut conditions: Vec<&str> = obs.iter().map(|o| o.condition.as_str()).collect();
    conditions.sort_unstable();
    conditions.dedup();
    if conditions.contains(&preferred) {
        Some(preferred)
    } else {
        conditions.first().copied()
    }
}

use crate::round3;

fn median_sorted(v: &mut [f64]) -> Option<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    match v.len() {
        0 => None,
        n if n % 2 == 1 => Some(v[n / 2]),
        n => Some((v[n / 2 - 1] + v[n / 2]) / 2.0),
    }
}

/// Classifies the address-sorting policy from distinct-address attempt
/// orders (one per selection run); the longest order wins, ties broken by
/// the earlier run.
fn classify_sorting(orders: &[&Vec<Family>]) -> SortingPolicy {
    let Some(order) = orders.iter().max_by_key(|o| o.len()) else {
        return SortingPolicy::Unknown;
    };
    if order.is_empty() {
        return SortingPolicy::Unknown;
    }
    let v6 = order.iter().filter(|f| **f == Family::V6).count();
    let v4 = order.len() - v6;
    if v6 == 0 || v4 == 0 {
        return SortingPolicy::NoFallback;
    }
    if v6 <= 1 && v4 <= 1 {
        return SortingPolicy::SingleFallback;
    }
    // Interleaved orders switch family at least every other step.
    let transitions = order.windows(2).filter(|w| w[0] != w[1]).count();
    if transitions * 2 >= order.len() - 1 {
        SortingPolicy::Interleaved
    } else {
        SortingPolicy::Grouped
    }
}

/// Infers one subject's profile from its observations (any case mix).
/// Observations for other subjects are ignored.
pub fn infer_profile(subject: &str, observations: &[Observation]) -> InferredProfile {
    let mine: Vec<&Observation> = observations
        .iter()
        .filter(|o| o.subject == subject)
        .collect();

    // --- CAD cell: changepoint over the sweep grid --------------------
    let cad_obs: Vec<&Observation> = mine
        .iter()
        .copied()
        .filter(|o| o.case == CaseKind::Cad)
        .collect();
    let cad_cell: Vec<&Observation> = match canonical_condition(&cad_obs, "baseline") {
        Some(cond) => {
            let cond = cond.to_string();
            cad_obs
                .iter()
                .copied()
                .filter(|o| o.condition == cond)
                .collect()
        }
        None => Vec::new(),
    };
    let points: Vec<(u64, Family)> = cad_cell
        .iter()
        .filter_map(|o| o.family.map(|f| (o.delay_ms, f)))
        .collect();
    let fit = detect_switchover(&points);
    let mut gaps: Vec<f64> = cad_cell
        .iter()
        .filter(|o| o.family == Some(Family::V4))
        .filter_map(|o| o.observed_cad_ms)
        .collect();
    let estimate_ms = median_sorted(&mut gaps)
        .or(fit.bracket().map(|(lo, _)| lo as f64))
        .map(round3);
    let cad = CadEstimate {
        implemented: (!cad_cell.is_empty()).then(|| fit.first_v4_delay_ms.is_some()),
        last_v6_delay_ms: fit.last_v6_delay_ms,
        first_v4_delay_ms: fit.first_v4_delay_ms,
        estimate_ms,
        misfits: fit.misfits,
    };

    // --- Preference + query order: the CAD cell's smallest delay ------
    let min_delay = cad_cell.iter().map(|o| o.delay_ms).min();
    let v6_share_pct = min_delay.map(|d| {
        let at_min: Vec<&&Observation> = cad_cell.iter().filter(|o| o.delay_ms == d).collect();
        round3(
            100.0
                * at_min
                    .iter()
                    .filter(|o| o.family == Some(Family::V6))
                    .count() as f64
                / at_min.len() as f64,
        )
    });
    let prefers_v6 = v6_share_pct.map(|p| p >= 50.0);
    let aaaa_known = cad_cell.iter().filter(|o| o.aaaa_first.is_some()).count() as u64;
    let aaaa_true = cad_cell
        .iter()
        .filter(|o| o.aaaa_first == Some(true))
        .count() as u64;
    let aaaa_first = (aaaa_known > 0).then(|| aaaa_true * 2 > aaaa_known);

    // --- RD cell ------------------------------------------------------
    let rd_obs: Vec<&Observation> = mine
        .iter()
        .copied()
        .filter(|o| o.case == CaseKind::Rd)
        .collect();
    let rd_cell: Vec<&Observation> = match canonical_condition(&rd_obs, "delayed-aaaa") {
        Some(cond) => {
            let cond = cond.to_string();
            rd_obs
                .iter()
                .copied()
                .filter(|o| o.condition == cond)
                .collect()
        }
        None => Vec::new(),
    };
    let mut rd_delays: Vec<f64> = rd_cell
        .iter()
        .filter_map(|o| o.rd_delay_ms)
        .map(|d| d as f64)
        .collect();
    // Stall detection: delayed-A cells where the first attempt waited for
    // (almost all of) the configured DNS delay.
    let delayed_a: Vec<&&Observation> = rd_obs
        .iter()
        .filter(|o| {
            o.condition.starts_with("delayed-a") && !o.condition.starts_with("delayed-aaaa")
        })
        .collect();
    let waits_for_all_answers =
        delayed_a
            .iter()
            .filter(|o| o.delay_ms >= 100)
            .fold(None, |acc: Option<bool>, o| {
                let stalled = o
                    .first_attempt_ms
                    .is_some_and(|t| t >= o.delay_ms as f64 * 0.9);
                Some(acc.unwrap_or(false) | stalled)
            });
    let rd = RdEstimate {
        implemented: (!rd_cell.is_empty()).then(|| rd_cell.iter().any(|o| o.used_rd)),
        delay_ms: median_sorted(&mut rd_delays).map(|d| d.round() as u64),
        waits_for_all_answers,
    };

    // --- Selection cell -----------------------------------------------
    let sel_obs: Vec<&Observation> = mine
        .iter()
        .copied()
        .filter(|o| o.case == CaseKind::Selection)
        .collect();
    let sel_cell: Vec<&Observation> = match canonical_condition(&sel_obs, "-") {
        Some(cond) => {
            let cond = cond.to_string();
            sel_obs
                .iter()
                .copied()
                .filter(|o| o.condition == cond)
                .collect()
        }
        None => Vec::new(),
    };
    let orders: Vec<&Vec<Family>> = sel_cell.iter().map(|o| &o.attempt_order).collect();
    let sorting = classify_sorting(&orders);
    let v6_addrs_used = sel_cell.iter().map(|o| o.v6_addrs_used).max();
    let v4_addrs_used = sel_cell.iter().map(|o| o.v4_addrs_used).max();

    InferredProfile {
        subject: subject.to_string(),
        runs: mine.len() as u64,
        v6_share_pct,
        prefers_v6,
        aaaa_first,
        cad,
        rd,
        sorting,
        v6_addrs_used,
        v4_addrs_used,
    }
}

/// Infers a profile per subject in a trace set, in first-appearance order.
pub fn infer_traces(set: &TraceSet) -> Vec<InferredProfile> {
    let observations: Vec<Observation> = set
        .traces
        .iter()
        .filter_map(Observation::from_trace)
        .collect();
    set.subjects()
        .iter()
        .map(|s| infer_profile(s, &observations))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cad_obs(delay: u64, family: Family, cad: Option<f64>) -> Observation {
        let mut o = Observation::shell(CaseKind::Cad, "c", "baseline", delay, 0);
        o.family = Some(family);
        o.observed_cad_ms = cad;
        o.aaaa_first = Some(true);
        o
    }

    #[test]
    fn cad_inference_from_clean_sweep() {
        let obs: Vec<Observation> = vec![
            cad_obs(0, Family::V6, None),
            cad_obs(100, Family::V6, None),
            cad_obs(200, Family::V6, None),
            cad_obs(300, Family::V4, Some(251.0)),
            cad_obs(400, Family::V4, Some(249.0)),
        ];
        let p = infer_profile("c", &obs);
        assert_eq!(p.cad.implemented, Some(true));
        assert_eq!(p.cad.last_v6_delay_ms, Some(200));
        assert_eq!(p.cad.first_v4_delay_ms, Some(300));
        assert_eq!(p.cad.estimate_ms, Some(250.0));
        assert_eq!(p.prefers_v6, Some(true));
        assert_eq!(p.v6_share_pct, Some(100.0));
        assert_eq!(p.aaaa_first, Some(true));
        assert_eq!(p.rd.implemented, None, "no RD case observed");
        assert_eq!(p.sorting, SortingPolicy::Unknown);
    }

    #[test]
    fn sorting_classification() {
        use Family::{V4, V6};
        assert_eq!(classify_sorting(&[]), SortingPolicy::Unknown);
        assert_eq!(classify_sorting(&[&vec![V6]]), SortingPolicy::NoFallback);
        assert_eq!(
            classify_sorting(&[&vec![V6, V4]]),
            SortingPolicy::SingleFallback
        );
        assert_eq!(
            classify_sorting(&[&vec![V6, V6, V4, V6, V4, V6, V4]]),
            SortingPolicy::Interleaved
        );
        assert_eq!(
            classify_sorting(&[&vec![V6, V6, V6, V6, V4, V4, V4, V4]]),
            SortingPolicy::Grouped
        );
    }

    #[test]
    fn rd_inference_with_stall() {
        let mut armed = Observation::shell(CaseKind::Rd, "c", "delayed-aaaa", 400, 0);
        armed.used_rd = true;
        armed.rd_delay_ms = Some(50);
        armed.family = Some(Family::V4);
        let mut stalled = Observation::shell(CaseKind::Rd, "c", "delayed-a", 800, 0);
        stalled.family = Some(Family::V6);
        stalled.first_attempt_ms = Some(801.0);
        let p = infer_profile("c", &[armed, stalled]);
        assert_eq!(p.rd.implemented, Some(true));
        assert_eq!(p.rd.delay_ms, Some(50));
        assert_eq!(p.rd.waits_for_all_answers, Some(true));
    }

    #[test]
    fn profile_json_roundtrip() {
        let p = infer_profile(
            "c",
            &[
                cad_obs(0, Family::V6, None),
                cad_obs(300, Family::V4, Some(250.0)),
            ],
        );
        let text = lazyeye_json::ToJson::to_json(&p).to_string_pretty();
        let back: InferredProfile =
            lazyeye_json::FromJson::from_json(&lazyeye_json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }
}

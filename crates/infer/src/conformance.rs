//! RFC 8305 conformance scoring: each inferred feature gets a verdict of
//! `CONFORMANT`, `DEVIATES(reason)` or `UNMEASURABLE`.
//!
//! The recommendations scored against (RFC 8305, "Happy Eyeballs v2"):
//!
//! - **§3** Send AAAA before A.
//! - **§3** Do not block on the slower lookup once the first usable
//!   answer arrived (the "Resolution Delay" replaces the full wait).
//! - **§3** If the non-preferred family answers first, wait a Resolution
//!   Delay (recommended 50 ms) for the preferred one.
//! - **§4** Prefer IPv6 and interleave address families in the candidate
//!   list.
//! - **§5** Stagger connection attempts by a Connection Attempt Delay;
//!   recommended 250 ms, bounded between 100 ms and 2 s.

use crate::profile::{InferredProfile, SortingPolicy};

/// A per-feature conformance verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Behaviour matches the RFC 8305 recommendation.
    Conformant,
    /// Behaviour observably differs (the entry carries the reason).
    Deviates,
    /// The input contained no observation that could decide the feature.
    Unmeasurable,
}

lazyeye_json::impl_json_unit_enum!(Verdict {
    Conformant,
    Deviates,
    Unmeasurable
});

impl Verdict {
    /// The report label: `CONFORMANT` / `DEVIATES` / `UNMEASURABLE`.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Conformant => "CONFORMANT",
            Verdict::Deviates => "DEVIATES",
            Verdict::Unmeasurable => "UNMEASURABLE",
        }
    }
}

/// One scored feature.
#[derive(Clone, Debug, PartialEq)]
pub struct ConformanceEntry {
    /// Feature id (`"query-order"`, `"connection-attempt-delay"`, ...).
    pub feature: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Why, for `DEVIATES` (and occasionally context for the others).
    pub reason: Option<String>,
}

lazyeye_json::impl_json_struct!(ConformanceEntry {
    feature,
    verdict,
    reason,
});

impl ConformanceEntry {
    fn conformant(feature: &str) -> ConformanceEntry {
        ConformanceEntry {
            feature: feature.to_string(),
            verdict: Verdict::Conformant,
            reason: None,
        }
    }

    fn deviates(feature: &str, reason: String) -> ConformanceEntry {
        ConformanceEntry {
            feature: feature.to_string(),
            verdict: Verdict::Deviates,
            reason: Some(reason),
        }
    }

    fn unmeasurable(feature: &str) -> ConformanceEntry {
        ConformanceEntry {
            feature: feature.to_string(),
            verdict: Verdict::Unmeasurable,
            reason: None,
        }
    }

    /// Compact rendering: `DEVIATES(reason)` / `CONFORMANT`.
    pub fn render(&self) -> String {
        match &self.reason {
            Some(r) if self.verdict == Verdict::Deviates => {
                format!("{}({r})", self.verdict.label())
            }
            _ => self.verdict.label().to_string(),
        }
    }
}

/// RFC 8305 §5 CAD bounds (ms).
pub const CAD_MIN_MS: f64 = 100.0;
/// RFC 8305 §5 CAD upper bound (ms).
pub const CAD_MAX_MS: f64 = 2000.0;

/// Scores an inferred profile against the RFC 8305 recommendations. The
/// entry order is fixed (stable report output).
pub fn score_profile(p: &InferredProfile) -> Vec<ConformanceEntry> {
    let mut out = Vec::new();

    // §4: prefer IPv6 on a healthy dual-stack path.
    out.push(match p.prefers_v6 {
        None => ConformanceEntry::unmeasurable("family-preference"),
        Some(true) => ConformanceEntry::conformant("family-preference"),
        Some(false) => ConformanceEntry::deviates(
            "family-preference",
            "prefers IPv4 on a healthy dual-stack path".to_string(),
        ),
    });

    // §3: AAAA before A.
    out.push(match p.aaaa_first {
        None => ConformanceEntry::unmeasurable("query-order"),
        Some(true) => ConformanceEntry::conformant("query-order"),
        Some(false) => ConformanceEntry::deviates("query-order", "sends A before AAAA".to_string()),
    });

    // §3: arm a Resolution Delay instead of connecting on the first
    // answer of the wrong family.
    out.push(match p.rd.implemented {
        None => ConformanceEntry::unmeasurable("resolution-delay"),
        Some(true) => ConformanceEntry::conformant("resolution-delay"),
        Some(false) => ConformanceEntry::deviates(
            "resolution-delay",
            "connects without arming a Resolution Delay".to_string(),
        ),
    });

    // §3: do not block on the slower lookup (the delayed-A stall).
    out.push(match p.rd.waits_for_all_answers {
        None => ConformanceEntry::unmeasurable("no-lookup-stall"),
        Some(false) => ConformanceEntry::conformant("no-lookup-stall"),
        Some(true) => ConformanceEntry::deviates(
            "no-lookup-stall",
            "waits for all DNS answers before the first attempt".to_string(),
        ),
    });

    // §5: Connection Attempt Delay within [100 ms, 2 s].
    out.push(match (p.cad.implemented, p.cad.estimate_ms) {
        (None, _) => ConformanceEntry::unmeasurable("connection-attempt-delay"),
        (Some(false), _) => ConformanceEntry::deviates(
            "connection-attempt-delay",
            "never falls back to IPv4".to_string(),
        ),
        (Some(true), None) => ConformanceEntry::conformant("connection-attempt-delay"),
        (Some(true), Some(ms)) if (CAD_MIN_MS..=CAD_MAX_MS).contains(&ms) => {
            ConformanceEntry::conformant("connection-attempt-delay")
        }
        (Some(true), Some(ms)) => ConformanceEntry::deviates(
            "connection-attempt-delay",
            format!("CAD {ms:.0} ms outside the RFC 8305 100-2000 ms range"),
        ),
    });

    // §4: interleave address families across the candidate list.
    out.push(match p.sorting {
        SortingPolicy::Unknown => ConformanceEntry::unmeasurable("address-sorting"),
        SortingPolicy::Interleaved => ConformanceEntry::conformant("address-sorting"),
        SortingPolicy::NoFallback => ConformanceEntry::deviates(
            "address-sorting",
            "attempts a single address family only".to_string(),
        ),
        SortingPolicy::SingleFallback => ConformanceEntry::deviates(
            "address-sorting",
            "stops after one address per family".to_string(),
        ),
        SortingPolicy::Grouped => ConformanceEntry::deviates(
            "address-sorting",
            "walks addresses family-grouped instead of interleaved".to_string(),
        ),
    });

    let unmeasurable = out
        .iter()
        .filter(|e| e.verdict == Verdict::Unmeasurable)
        .count() as u64;
    crate::metrics::unmeasurable_features().add(unmeasurable);

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{CaseKind, Observation};
    use crate::profile::infer_profile;
    use lazyeye_net::Family;

    fn entry<'a>(entries: &'a [ConformanceEntry], feature: &str) -> &'a ConformanceEntry {
        entries.iter().find(|e| e.feature == feature).unwrap()
    }

    #[test]
    fn empty_profile_is_all_unmeasurable() {
        let p = infer_profile("ghost", &[]);
        for e in score_profile(&p) {
            assert_eq!(e.verdict, Verdict::Unmeasurable, "{}", e.feature);
        }
    }

    #[test]
    fn conformant_cad_and_deviating_cad() {
        let mk = |cadms: f64| {
            let mut v6 = Observation::shell(CaseKind::Cad, "c", "baseline", 0, 0);
            v6.family = Some(Family::V6);
            let mut v4 = Observation::shell(CaseKind::Cad, "c", "baseline", 5000, 0);
            v4.family = Some(Family::V4);
            v4.observed_cad_ms = Some(cadms);
            infer_profile("c", &[v6, v4])
        };
        let ok = score_profile(&mk(250.0));
        assert_eq!(
            entry(&ok, "connection-attempt-delay").verdict,
            Verdict::Conformant
        );
        let fast = score_profile(&mk(10.0));
        let e = entry(&fast, "connection-attempt-delay");
        assert_eq!(e.verdict, Verdict::Deviates);
        assert!(e.render().contains("10 ms"), "{}", e.render());
    }

    #[test]
    fn no_fallback_deviates() {
        let mut v6 = Observation::shell(CaseKind::Cad, "w", "baseline", 5000, 0);
        v6.family = Some(Family::V6);
        let p = infer_profile("w", &[v6]);
        let s = score_profile(&p);
        let e = entry(&s, "connection-attempt-delay");
        assert_eq!(e.verdict, Verdict::Deviates);
        assert_eq!(e.render(), "DEVIATES(never falls back to IPv4)");
    }
}

//! # lazyeye-infer — event traces → inferred client state + conformance
//!
//! The paper's point is *capturing the state* of Happy Eyeballs
//! implementations from observed behaviour. This crate is the automated
//! version of that analysis, in the spirit of black-box protocol
//! noncompliance checkers: feed it the [`lazyeye_trace`] event traces (or
//! per-run observations reduced from them) of a measurement sweep, and it
//! *infers* the client's Happy Eyeballs state-machine parameters —
//!
//! - the **Connection Attempt Delay** policy, via [`changepoint`]
//!   detection over the sweep grid (no hand-coded switchover brackets),
//! - the **Resolution Delay** policy (armed? with which delay? or does
//!   the client stall waiting for all answers — the §5.2 bug),
//! - **address-family preference** and **address-sorting** behaviour
//!   (RFC 6724-style grouped, single-fallback, or RFC 8305 interleaved),
//! - DNS **query scheduling** (AAAA before A),
//!
//! and scores each inferred feature against the RFC 8305 recommendations,
//! yielding a [`Verdict`] of `CONFORMANT` / `DEVIATES(reason)` /
//! `UNMEASURABLE` per feature ([`conformance`]).
//!
//! Everything is a pure fold over the input observations: same traces in,
//! byte-identical inference out — which is what lets the campaign engine
//! ship an inference-derived feature matrix that must agree with (and is
//! diffed against) the summary-derived Table 2 roll-up.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod changepoint;
pub mod compare;
pub mod conformance;
pub mod metrics;
pub mod observe;
pub mod profile;
pub mod resolver;

pub use changepoint::{detect_switchover, Changepoint};
pub use compare::{diff_profiles, fmt_opt, push_delta, FieldDelta};
pub use conformance::{score_profile, ConformanceEntry, Verdict};
pub use observe::{CaseKind, Observation};
pub use profile::{
    canonical_condition, infer_profile, infer_traces, CadEstimate, InferredProfile, RdEstimate,
    SortingPolicy,
};
pub use resolver::{
    infer_resolver_profile, infer_resolver_traces, merge_capability, score_resolver,
    InferredResolverProfile, InferredResolverReport,
};

/// Rounds to 3 decimals — the shared precision of every percentage and
/// millisecond estimate in inferred profiles and reports (one definition,
/// so derivations that must agree byte-for-byte cannot drift).
pub fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

//! Changepoint detection over a measurement sweep grid.
//!
//! A Happy Eyeballs client with Connection Attempt Delay `c` wins over
//! IPv6 while the configured IPv6 delay stays ≤ `c` and switches to IPv4
//! above it. A sweep therefore produces a (noisy) step function
//! `delay → family`, and recovering the client's CAD is a single
//! changepoint problem: find the threshold `t` that minimises the number
//! of observations the step model `v6 for delay ≤ t, v4 for delay > t`
//! misclassifies. This replaces the hand-coded "largest v6 delay /
//! smallest v4 delay" bracket: on clean data the two agree exactly, and
//! on noisy data (loss, jitter conditions) the changepoint fit is robust
//! to individual flipped runs.

use lazyeye_net::Family;

/// The fitted switchover of one sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Changepoint {
    /// The fitted threshold `t` of the step model (`None` encodes `-∞`,
    /// i.e. the model says IPv4 from the start).
    pub threshold_ms: Option<u64>,
    /// Largest configured delay the fitted model still assigns to IPv6 and
    /// at which IPv6 was actually observed. `None` when the model says the
    /// client uses IPv4 from the start (or no IPv6 win exists).
    pub last_v6_delay_ms: Option<u64>,
    /// Smallest configured delay above the fitted threshold at which IPv4
    /// was actually observed. `None` when the client never fell back.
    pub first_v4_delay_ms: Option<u64>,
    /// Observations the best-fit step model misclassifies (0 on clean
    /// sweeps; > 0 signals noise or non-step behaviour).
    pub misfits: u64,
    /// Observations considered (runs with an established family).
    pub total: u64,
}

impl Changepoint {
    /// The open switchover bracket `(last_v6, first_v4)` when the fit
    /// found a genuine switchover.
    pub fn bracket(&self) -> Option<(u64, u64)> {
        match (self.last_v6_delay_ms, self.first_v4_delay_ms) {
            (Some(lo), Some(hi)) if lo < hi => Some((lo, hi)),
            _ => None,
        }
    }

    /// The observations (from the same `points` the fit ran on) that the
    /// fitted model misclassifies, in input order. Empty on clean
    /// sweeps; forensics uses the first entry as the representative
    /// misfit run.
    pub fn misfit_points(&self, points: &[(u64, Family)]) -> Vec<(u64, Family)> {
        points
            .iter()
            .copied()
            .filter(|(d, f)| match self.threshold_ms {
                Some(t) => (*f == Family::V4 && *d <= t) || (*f == Family::V6 && *d > t),
                None => *f == Family::V6,
            })
            .collect()
    }
}

/// Fits the single-changepoint step model to `(configured_delay_ms,
/// established_family)` points and returns the switchover.
///
/// Deterministic: ties between equally good thresholds resolve to the
/// smallest threshold. The input order does not matter.
pub fn detect_switchover(points: &[(u64, Family)]) -> Changepoint {
    let total = points.len() as u64;
    if points.is_empty() {
        return Changepoint {
            threshold_ms: None,
            last_v6_delay_ms: None,
            first_v4_delay_ms: None,
            misfits: 0,
            total,
        };
    }
    let mut sorted: Vec<(u64, Family)> = points.to_vec();
    sorted.sort_by_key(|(d, f)| (*d, *f == Family::V4));

    // Candidate thresholds: "before everything" plus every distinct delay.
    // errors(t) = #v4 at delay ≤ t  +  #v6 at delay > t.
    let v6_total = sorted.iter().filter(|(_, f)| *f == Family::V6).count() as u64;
    let mut best_errors = v6_total; // t = -∞: every v6 win is a misfit.
    let mut best_t: Option<u64> = None; // None encodes -∞.
    let mut candidates = 1u64; // the -∞ threshold
    let mut v4_below = 0u64;
    let mut v6_below = 0u64;
    let mut i = 0;
    while i < sorted.len() {
        candidates += 1;
        let t = sorted[i].0;
        // Fold the whole group of equal delays into the prefix counters.
        while i < sorted.len() && sorted[i].0 == t {
            match sorted[i].1 {
                Family::V4 => v4_below += 1,
                Family::V6 => v6_below += 1,
            }
            i += 1;
        }
        let errors = v4_below + (v6_total - v6_below);
        if errors < best_errors {
            best_errors = errors;
            best_t = Some(t);
        }
    }

    let last_v6_delay_ms = best_t.and_then(|t| {
        sorted
            .iter()
            .filter(|(d, f)| *f == Family::V6 && *d <= t)
            .map(|(d, _)| *d)
            .max()
    });
    let first_v4_delay_ms = sorted
        .iter()
        .filter(|(d, f)| *f == Family::V4 && best_t.is_none_or(|t| *d > t))
        .map(|(d, _)| *d)
        .min();
    crate::metrics::changepoint_candidates().add(candidates);
    crate::metrics::misfit_runs().add(best_errors);
    Changepoint {
        threshold_ms: best_t,
        last_v6_delay_ms,
        first_v4_delay_ms,
        misfits: best_errors,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(step: &[(u64, char)]) -> Vec<(u64, Family)> {
        step.iter()
            .map(|(d, c)| (*d, if *c == '6' { Family::V6 } else { Family::V4 }))
            .collect()
    }

    #[test]
    fn clean_step_recovers_the_bracket() {
        let pts = grid(&[(0, '6'), (100, '6'), (200, '6'), (300, '4'), (400, '4')]);
        let cp = detect_switchover(&pts);
        assert_eq!(cp.last_v6_delay_ms, Some(200));
        assert_eq!(cp.first_v4_delay_ms, Some(300));
        assert_eq!(cp.bracket(), Some((200, 300)));
        assert_eq!(cp.misfits, 0);
        assert_eq!(cp.total, 5);
    }

    #[test]
    fn all_v6_means_no_fallback() {
        let cp = detect_switchover(&grid(&[(0, '6'), (200, '6'), (400, '6')]));
        assert_eq!(cp.last_v6_delay_ms, Some(400));
        assert_eq!(cp.first_v4_delay_ms, None);
        assert_eq!(cp.misfits, 0);
    }

    #[test]
    fn all_v4_means_immediate_fallback() {
        let cp = detect_switchover(&grid(&[(0, '4'), (200, '4')]));
        assert_eq!(cp.last_v6_delay_ms, None);
        assert_eq!(cp.first_v4_delay_ms, Some(0));
        assert_eq!(cp.misfits, 0);
    }

    #[test]
    fn single_flipped_run_does_not_move_the_changepoint() {
        // A lossy run flipped one 100 ms repetition to v4; the hand-coded
        // bracket rule would report first_v4 = 100 and an inverted
        // bracket. The changepoint fit shrugs it off as one misfit.
        let pts = grid(&[
            (0, '6'),
            (100, '6'),
            (100, '4'),
            (200, '6'),
            (300, '4'),
            (400, '4'),
        ]);
        let cp = detect_switchover(&pts);
        assert_eq!(cp.last_v6_delay_ms, Some(200));
        assert_eq!(cp.first_v4_delay_ms, Some(300));
        assert_eq!(cp.misfits, 1);
    }

    #[test]
    fn empty_input_is_unmeasurable() {
        let cp = detect_switchover(&[]);
        assert_eq!(cp.last_v6_delay_ms, None);
        assert_eq!(cp.first_v4_delay_ms, None);
        assert_eq!(cp.total, 0);
    }

    #[test]
    fn order_independent() {
        let mut pts = grid(&[(300, '4'), (0, '6'), (400, '4'), (100, '6'), (200, '6')]);
        let a = detect_switchover(&pts);
        pts.reverse();
        assert_eq!(detect_switchover(&pts), a);
    }
}

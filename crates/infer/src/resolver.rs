//! Resolver conformance: the missing half of the scoring layer.
//!
//! The campaign has always *collected* resolver observations (the
//! server-side view of a recursive resolver working a delayed IPv6 path)
//! and the web tool *checks* IPv6-only delegation capability — but
//! neither was scored. This module infers a resolver profile from those
//! observations and issues per-feature verdicts, mirroring
//! [`crate::score_profile`] for clients:
//!
//! - **IPv6 preference** — does the resolver query the authoritative
//!   server over IPv6 first on a healthy path? (The paper's Table 3
//!   column; all but Baidu's service did.)
//! - **IPv4 fallback** — once the IPv6 path is delayed past the per-try
//!   timeout, does the resolver retry over IPv4 at all? (A resolver that
//!   never does dead-ends exactly like the paper's Table 4 services.)
//! - **IPv6-only delegations** — can the resolver walk a delegation
//!   whose name server has only AAAA glue? (The web tool's §5.3 check;
//!   Hurricane Electric, Lumen, Dyn and G-Core fail it.)

use lazyeye_net::Family;

use crate::changepoint::detect_switchover;
use crate::conformance::{ConformanceEntry, Verdict};
use crate::observe::{CaseKind, Observation};

/// Everything inferred about one recursive resolver.
#[derive(Clone, Debug, PartialEq)]
pub struct InferredResolverProfile {
    /// Subject id (resolver profile name, or the check's stack label).
    pub subject: String,
    /// Observations folded in.
    pub runs: u64,
    /// Share (%) of runs whose first query went out over IPv6, at the
    /// smallest configured delay.
    pub v6_first_share_pct: Option<f64>,
    /// Whether the resolver prefers IPv6 towards authoritative servers.
    pub prefers_v6: Option<bool>,
    /// Largest configured IPv6-path delay still answered IPv6-first.
    pub last_v6_delay_ms: Option<u64>,
    /// Smallest configured delay at which IPv4 was queried first — the
    /// observable per-try timeout.
    pub first_v4_delay_ms: Option<u64>,
    /// Whether the resolver ever fell back to IPv4 under IPv6 delay.
    pub falls_back: Option<bool>,
    /// Whether the resolver resolves IPv6-only delegations (`None` when
    /// no web check was run).
    pub ipv6_only_capable: Option<bool>,
}

lazyeye_json::impl_json_struct!(InferredResolverProfile {
    subject,
    runs,
    v6_first_share_pct,
    prefers_v6,
    last_v6_delay_ms,
    first_v4_delay_ms,
    falls_back,
    ipv6_only_capable,
});

use crate::round3;

/// Infers one resolver's profile from its observations (the
/// [`CaseKind::Resolver`] ones; everything else is ignored). The web
/// check's capability bit is not observable here and stays `None` —
/// [`merge_capability`] folds it in when a check ran.
pub fn infer_resolver_profile(
    subject: &str,
    observations: &[Observation],
) -> InferredResolverProfile {
    let mine: Vec<&Observation> = observations
        .iter()
        .filter(|o| o.subject == subject && o.case == CaseKind::Resolver)
        .collect();

    // Changepoint over the sweep grid, exactly like the client CAD fit:
    // the first-query family flips from V6 to V4 once the configured
    // delay crosses the resolver's per-try timeout.
    let points: Vec<(u64, Family)> = mine
        .iter()
        .filter_map(|o| o.family.map(|f| (o.delay_ms, f)))
        .collect();
    let fit = detect_switchover(&points);

    let min_delay = mine.iter().map(|o| o.delay_ms).min();
    let v6_first_share_pct = min_delay.map(|d| {
        let at_min: Vec<&&Observation> = mine.iter().filter(|o| o.delay_ms == d).collect();
        round3(
            100.0
                * at_min
                    .iter()
                    .filter(|o| o.family == Some(Family::V6))
                    .count() as f64
                / at_min.len() as f64,
        )
    });

    InferredResolverProfile {
        subject: subject.to_string(),
        runs: mine.len() as u64,
        v6_first_share_pct,
        prefers_v6: v6_first_share_pct.map(|p| p >= 50.0),
        last_v6_delay_ms: fit.last_v6_delay_ms,
        first_v4_delay_ms: fit.first_v4_delay_ms,
        falls_back: (!mine.is_empty()).then(|| fit.first_v4_delay_ms.is_some()),
        ipv6_only_capable: None,
    }
}

/// Folds a web-tool capability check into a profile (majority over
/// `capable_runs` of `check_runs`).
pub fn merge_capability(
    mut profile: InferredResolverProfile,
    capable_runs: u64,
    check_runs: u64,
) -> InferredResolverProfile {
    if check_runs > 0 {
        profile.ipv6_only_capable = Some(capable_runs * 2 > check_runs);
        profile.runs += check_runs;
    }
    profile
}

/// Scores an inferred resolver profile. The entry order is fixed (stable
/// report output).
pub fn score_resolver(p: &InferredResolverProfile) -> Vec<ConformanceEntry> {
    let preference = match p.prefers_v6 {
        None => ConformanceEntry {
            feature: "resolver-v6-preference".to_string(),
            verdict: Verdict::Unmeasurable,
            reason: None,
        },
        Some(true) => ConformanceEntry {
            feature: "resolver-v6-preference".to_string(),
            verdict: Verdict::Conformant,
            reason: None,
        },
        Some(false) => ConformanceEntry {
            feature: "resolver-v6-preference".to_string(),
            verdict: Verdict::Deviates,
            reason: Some("queries authoritative servers over IPv4 first".to_string()),
        },
    };

    let fallback = match p.falls_back {
        None => ConformanceEntry {
            feature: "resolver-v4-fallback".to_string(),
            verdict: Verdict::Unmeasurable,
            reason: None,
        },
        Some(true) => ConformanceEntry {
            feature: "resolver-v4-fallback".to_string(),
            verdict: Verdict::Conformant,
            reason: None,
        },
        Some(false) => ConformanceEntry {
            feature: "resolver-v4-fallback".to_string(),
            verdict: Verdict::Deviates,
            reason: Some("never falls back to IPv4 under IPv6-path delay".to_string()),
        },
    };

    let delegation = match p.ipv6_only_capable {
        None => ConformanceEntry {
            feature: "ipv6-only-delegation".to_string(),
            verdict: Verdict::Unmeasurable,
            reason: None,
        },
        Some(true) => ConformanceEntry {
            feature: "ipv6-only-delegation".to_string(),
            verdict: Verdict::Conformant,
            reason: None,
        },
        Some(false) => ConformanceEntry {
            feature: "ipv6-only-delegation".to_string(),
            verdict: Verdict::Deviates,
            reason: Some(
                "cannot resolve IPv6-only delegations (no IPv6 on the resolution path)".to_string(),
            ),
        },
    };

    vec![preference, fallback, delegation]
}

/// One resolver's inference result: profile plus verdicts.
#[derive(Clone, Debug, PartialEq)]
pub struct InferredResolverReport {
    /// The inferred resolver behaviour.
    pub profile: InferredResolverProfile,
    /// Per-feature verdicts (fixed feature order).
    pub conformance: Vec<ConformanceEntry>,
}

lazyeye_json::impl_json_struct!(InferredResolverReport {
    profile,
    conformance,
});

/// Infers and scores every subject in a trace set that produced resolver
/// observations, in first-appearance order.
pub fn infer_resolver_traces(set: &lazyeye_trace::TraceSet) -> Vec<InferredResolverReport> {
    let observations: Vec<Observation> = set
        .traces
        .iter()
        .filter_map(Observation::from_trace)
        .collect();
    set.subjects()
        .iter()
        .filter(|s| {
            observations
                .iter()
                .any(|o| &o.subject == *s && o.case == CaseKind::Resolver)
        })
        .map(|s| {
            let profile = infer_resolver_profile(s, &observations);
            let conformance = score_resolver(&profile);
            InferredResolverReport {
                profile,
                conformance,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(delay: u64, family: Option<Family>) -> Observation {
        let mut o = Observation::shell(CaseKind::Resolver, "r", "-", delay, 0);
        o.family = family;
        o
    }

    #[test]
    fn v6_preferring_resolver_with_fallback_conforms() {
        let observations = vec![
            obs(0, Some(Family::V6)),
            obs(200, Some(Family::V6)),
            obs(400, Some(Family::V4)),
            obs(600, Some(Family::V4)),
        ];
        let p = infer_resolver_profile("r", &observations);
        assert_eq!(p.runs, 4);
        assert_eq!(p.prefers_v6, Some(true));
        assert_eq!(p.v6_first_share_pct, Some(100.0));
        assert_eq!(p.last_v6_delay_ms, Some(200));
        assert_eq!(p.first_v4_delay_ms, Some(400));
        assert_eq!(p.falls_back, Some(true));
        let verdicts = score_resolver(&p);
        assert_eq!(verdicts[0].verdict, Verdict::Conformant);
        assert_eq!(verdicts[1].verdict, Verdict::Conformant);
        assert_eq!(verdicts[2].verdict, Verdict::Unmeasurable, "no web check");
    }

    #[test]
    fn v4_only_resolver_deviates_everywhere() {
        let observations = vec![obs(0, Some(Family::V4)), obs(400, Some(Family::V4))];
        let p = infer_resolver_profile("r", &observations);
        assert_eq!(p.prefers_v6, Some(false));
        let p = merge_capability(p, 0, 3);
        assert_eq!(p.ipv6_only_capable, Some(false));
        let verdicts = score_resolver(&p);
        assert_eq!(verdicts[0].verdict, Verdict::Deviates);
        assert_eq!(
            verdicts[2].render(),
            "DEVIATES(cannot resolve IPv6-only delegations (no IPv6 on the resolution path))"
        );
    }

    #[test]
    fn never_falling_back_deviates() {
        let observations = vec![obs(0, Some(Family::V6)), obs(5000, Some(Family::V6))];
        let p = infer_resolver_profile("r", &observations);
        assert_eq!(p.falls_back, Some(false));
        let verdicts = score_resolver(&p);
        assert_eq!(
            verdicts[1].render(),
            "DEVIATES(never falls back to IPv4 under IPv6-path delay)"
        );
    }

    #[test]
    fn empty_observations_are_unmeasurable() {
        let p = infer_resolver_profile("ghost", &[]);
        assert_eq!(p.runs, 0);
        assert!(score_resolver(&p)
            .iter()
            .all(|e| e.verdict == Verdict::Unmeasurable));
    }

    #[test]
    fn profile_json_roundtrip() {
        let p = merge_capability(
            infer_resolver_profile("r", &[obs(0, Some(Family::V6))]),
            2,
            2,
        );
        let text = lazyeye_json::ToJson::to_json(&p).to_string_pretty();
        let back: InferredResolverProfile =
            lazyeye_json::FromJson::from_json(&lazyeye_json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }
}

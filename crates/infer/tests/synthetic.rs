//! Acceptance test: on synthetic traces of a client with a configured
//! CAD/RD, the inference engine recovers the configured values within the
//! refinement step of the sweep grid.

use lazyeye_infer::{infer_traces, SortingPolicy};
use lazyeye_net::Family;
use lazyeye_trace::{Trace, TraceEvent, TraceEventKind, TraceMeta, TraceSet};

const MS: u64 = 1_000_000;

/// A synthetic CAD run: the client starts v6 at 1 ms; if the configured
/// path delay exceeds its CAD it starts (and wins over) v4 exactly CAD ms
/// later, else v6 establishes after the path delay.
fn cad_trace(client: &str, cad_ms: u64, path_delay_ms: u64, rep: u32) -> Trace {
    let mut events = vec![
        TraceEvent {
            at_ns: 0,
            kind: TraceEventKind::DnsQuerySent {
                qtype: "AAAA".into(),
            },
        },
        TraceEvent {
            at_ns: 0,
            kind: TraceEventKind::QueryArrived {
                qtype: "AAAA".into(),
                family: Family::V4,
            },
        },
        TraceEvent {
            at_ns: 100,
            kind: TraceEventKind::QueryArrived {
                qtype: "A".into(),
                family: Family::V4,
            },
        },
        TraceEvent {
            at_ns: MS,
            kind: TraceEventKind::AttemptStarted {
                index: 0,
                addr: "2001:db8::1".into(),
                family: Family::V6,
                proto: "tcp".into(),
            },
        },
    ];
    if path_delay_ms > cad_ms {
        events.push(TraceEvent {
            at_ns: MS + cad_ms * MS,
            kind: TraceEventKind::AttemptStarted {
                index: 1,
                addr: "192.0.2.1".into(),
                family: Family::V4,
                proto: "tcp".into(),
            },
        });
        events.push(TraceEvent {
            at_ns: MS + cad_ms * MS + MS,
            kind: TraceEventKind::Established {
                addr: "192.0.2.1".into(),
                family: Family::V4,
                proto: "tcp".into(),
            },
        });
    } else {
        events.push(TraceEvent {
            at_ns: MS + path_delay_ms * MS,
            kind: TraceEventKind::Established {
                addr: "2001:db8::1".into(),
                family: Family::V6,
                proto: "tcp".into(),
            },
        });
    }
    Trace {
        meta: TraceMeta {
            subject: client.to_string(),
            case: "cad".into(),
            condition: "baseline".into(),
            configured_delay_ms: path_delay_ms,
            rep,
            seed: 1,
        },
        events,
    }
}

/// The campaign's coarse→fine grid around a bracket: a coarse sweep plus
/// a `step`-resolution refinement inside the detected bracket.
fn two_pass_grid(coarse_step: u64, max: u64, refine_step: u64, cad_ms: u64) -> Vec<u64> {
    let mut delays: Vec<u64> = (0..=max / coarse_step).map(|i| i * coarse_step).collect();
    let last_v6 = delays
        .iter()
        .copied()
        .filter(|d| *d <= cad_ms)
        .max()
        .unwrap();
    let first_v4 = delays
        .iter()
        .copied()
        .filter(|d| *d > cad_ms)
        .min()
        .unwrap();
    let mut v = last_v6 + refine_step;
    while v < first_v4 {
        delays.push(v);
        v += refine_step;
    }
    delays
}

#[test]
fn recovers_configured_cad_within_refine_step() {
    // The acceptance case: configured CADs across the client spectrum,
    // measured on the default campaign's 20 ms coarse grid with the
    // default 5 ms refinement pass.
    for &cad_ms in &[200u64, 250, 300, 333] {
        let refine_step = 5;
        let mut set = TraceSet::default();
        for delay in two_pass_grid(20, 400, refine_step, cad_ms) {
            set.push(cad_trace("synthetic", cad_ms, delay, 0));
        }
        let profiles = infer_traces(&set);
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.cad.implemented, Some(true), "cad {cad_ms}");
        assert_eq!(p.cad.misfits, 0, "synthetic step data fits perfectly");

        // The direct estimate (median attempt gap) is exact.
        let est = p.cad.estimate_ms.unwrap();
        assert!(
            (est - cad_ms as f64).abs() < f64::EPSILON,
            "cad {cad_ms}: estimate {est}"
        );
        // The changepoint bracket pins the switchover to the refinement
        // step: last_v6 ≤ cad < first_v4 and the bracket is ≤ step wide.
        let last_v6 = p.cad.last_v6_delay_ms.unwrap();
        let first_v4 = p.cad.first_v4_delay_ms.unwrap();
        assert!(last_v6 <= cad_ms && cad_ms < first_v4);
        assert!(
            first_v4 - last_v6 <= refine_step,
            "cad {cad_ms}: bracket ({last_v6}, {first_v4}) wider than {refine_step} ms"
        );
    }
}

#[test]
fn recovers_configured_rd_and_stall() {
    // Synthetic RD runs: the AAAA answer is delayed, the client arms its
    // configured 50 ms Resolution Delay; delayed-A runs show no stall.
    let mut set = TraceSet::default();
    for (rep, delay) in [(0u32, 200u64), (1, 400)] {
        set.push(Trace {
            meta: TraceMeta {
                subject: "synthetic".into(),
                case: "rd".into(),
                condition: "delayed-aaaa".into(),
                configured_delay_ms: delay,
                rep,
                seed: 1,
            },
            events: vec![
                TraceEvent {
                    at_ns: MS,
                    kind: TraceEventKind::ResolutionDelayStarted { delay_ms: 50 },
                },
                TraceEvent {
                    at_ns: 51 * MS,
                    kind: TraceEventKind::ResolutionDelayExpired,
                },
                TraceEvent {
                    at_ns: 52 * MS,
                    kind: TraceEventKind::AttemptStarted {
                        index: 0,
                        addr: "192.0.2.1".into(),
                        family: Family::V4,
                        proto: "tcp".into(),
                    },
                },
            ],
        });
    }
    set.push(Trace {
        meta: TraceMeta {
            subject: "synthetic".into(),
            case: "rd".into(),
            condition: "delayed-a".into(),
            configured_delay_ms: 800,
            rep: 0,
            seed: 1,
        },
        events: vec![TraceEvent {
            at_ns: 2 * MS,
            kind: TraceEventKind::AttemptStarted {
                index: 0,
                addr: "2001:db8::1".into(),
                family: Family::V6,
                proto: "tcp".into(),
            },
        }],
    });
    let profiles = infer_traces(&set);
    let p = &profiles[0];
    assert_eq!(p.rd.implemented, Some(true));
    assert_eq!(p.rd.delay_ms, Some(50), "recovers the configured RD value");
    assert_eq!(
        p.rd.waits_for_all_answers,
        Some(false),
        "first attempt at 2 ms with an 800 ms A delay is no stall"
    );
}

#[test]
fn noisy_sweep_still_recovers_the_changepoint() {
    // One flipped run per side of the switchover must not move the fit.
    let cad_ms = 250;
    let mut set = TraceSet::default();
    for delay in two_pass_grid(20, 400, 5, cad_ms) {
        set.push(cad_trace("noisy", cad_ms, delay, 0));
    }
    // Noise: a v4 win at 40 ms (spurious fallback), encoded as a run
    // whose client fell back immediately.
    set.push(cad_trace("noisy", 0, 40, 1));
    let profiles = infer_traces(&set);
    let p = &profiles[0];
    assert_eq!(p.cad.misfits, 1, "exactly the flipped run misfits");
    let last_v6 = p.cad.last_v6_delay_ms.unwrap();
    let first_v4 = p.cad.first_v4_delay_ms.unwrap();
    assert!(last_v6 <= cad_ms && cad_ms < first_v4);
    assert!(first_v4 - last_v6 <= 5);
    assert_eq!(p.sorting, SortingPolicy::Unknown, "no selection case");
}

//! The trigger engine: rules that turn anomalies into black-box
//! bundles.
//!
//! Subsystems call [`fire`] at well-defined anomaly sites (fast-path
//! fallback, inference misfit, `DEVIATES(..)` verdict, refinement
//! bracket, run panic). When the engine is [armed](arm) with an output
//! directory (`--flight-record <dir>`), the first fire per
//! `(kind, key)` builds its bundle, attaches the wall context (flight
//! recorder ring snapshot + metrics exposition) and writes it to
//! `<dir>/<kind>-<key>.json`. Unarmed, `fire` returns immediately
//! without invoking the bundle builder, so campaigns pay nothing for
//! the instrumentation by default.
//!
//! Keys embed the full cell provenance (case, subject, condition,
//! delay, rep), so the *set* of bundles written is a deterministic
//! function of (spec, seed) — never of worker scheduling.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use lazyeye_json::Json;

use crate::bundle::Bundle;
use crate::Clock;

/// The anomaly classes the engine reacts to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TriggerKind {
    /// The compiled fast path refused a run and the campaign fell back
    /// to full simulation.
    FastPathFallback,
    /// The inferred changepoint left misfit runs (observations on the
    /// wrong side of the threshold).
    InferenceMisfit,
    /// A conformance feature scored `DEVIATES(..)`.
    Deviates,
    /// The refinement planner detected a switchover bracket and
    /// scheduled a second pass.
    RefinementBracket,
    /// A run panicked inside a campaign worker.
    RunPanic,
    /// The causal profiler's attributed stall phase disagreed with the
    /// inference layer's wait-for-all-answers verdict for a subject.
    AttributionMismatch,
}

impl TriggerKind {
    /// Stable label used in bundle documents and file names.
    pub fn label(self) -> &'static str {
        match self {
            TriggerKind::FastPathFallback => "fastpath-fallback",
            TriggerKind::InferenceMisfit => "inference-misfit",
            TriggerKind::Deviates => "deviates",
            TriggerKind::RefinementBracket => "refinement-bracket",
            TriggerKind::RunPanic => "run-panic",
            TriggerKind::AttributionMismatch => "attribution-mismatch",
        }
    }

    /// Inverse of [`TriggerKind::label`].
    pub fn parse(s: &str) -> Option<TriggerKind> {
        Some(match s {
            "fastpath-fallback" => TriggerKind::FastPathFallback,
            "inference-misfit" => TriggerKind::InferenceMisfit,
            "deviates" => TriggerKind::Deviates,
            "refinement-bracket" => TriggerKind::RefinementBracket,
            "run-panic" => TriggerKind::RunPanic,
            "attribution-mismatch" => TriggerKind::AttributionMismatch,
            _ => return None,
        })
    }
}

struct Armed {
    dir: PathBuf,
    seen: BTreeSet<String>,
}

fn state() -> &'static Mutex<Option<Armed>> {
    static STATE: Mutex<Option<Armed>> = Mutex::new(None);
    &STATE
}

/// Arms the engine: bundles are written into `dir` (created if needed)
/// until [`disarm`]. Re-arming resets the per-session deduplication
/// set.
pub fn arm(dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    *state().lock().unwrap() = Some(Armed {
        dir: dir.to_path_buf(),
        seen: BTreeSet::new(),
    });
    Ok(())
}

/// Disarms the engine; subsequent [`fire`] calls are no-ops.
pub fn disarm() {
    *state().lock().unwrap() = None;
}

/// Whether the engine is currently armed. Trigger sites that need to
/// compute provenance before firing use this as their early-out.
pub fn armed() -> bool {
    state().lock().unwrap().is_some()
}

/// Number of bundles written since process start (virtual domain: the
/// bundle set is deterministic for an armed (spec, seed) workload).
pub fn bundles_written() -> u64 {
    crate::counter("flightrec.bundles", Clock::Virtual).get()
}

/// Fires a trigger. Returns the bundle path if one was written; `None`
/// when unarmed, deduplicated, or on I/O failure (recorded in the ring
/// as `flightrec.error`).
///
/// `build` runs outside the engine lock — it may re-execute the run to
/// capture a trace — and only for the first fire per `(kind, key)`.
pub fn fire(kind: TriggerKind, key: &str, build: impl FnOnce() -> Bundle) -> Option<PathBuf> {
    let dir = {
        let mut guard = state().lock().unwrap();
        let armed = guard.as_mut()?;
        if !armed.seen.insert(format!("{}:{key}", kind.label())) {
            return None;
        }
        armed.dir.clone()
    };
    let mut bundle = build();
    bundle.wall = Json::obj(vec![
        ("ring", crate::recorder::recorder().snapshot_json()),
        (
            "metrics",
            Json::Str(crate::registry::render_prometheus(None)),
        ),
    ]);
    let path = dir.join(bundle.file_name());
    match std::fs::write(&path, bundle.to_json_string()) {
        Ok(()) => {
            crate::counter("flightrec.bundles", Clock::Virtual).inc();
            crate::recorder::record(Clock::Wall, "flightrec.bundle", path.display().to_string());
            Some(path)
        }
        Err(e) => {
            crate::recorder::record(
                Clock::Wall,
                "flightrec.error",
                format!("{}: {e}", path.display()),
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle(kind: TriggerKind, key: &str) -> Bundle {
        Bundle::new(
            kind.label(),
            key,
            "detail",
            Json::obj(vec![("seed", Json::UInt(1))]),
            Json::Null,
        )
    }

    #[test]
    fn kind_labels_roundtrip() {
        for kind in [
            TriggerKind::FastPathFallback,
            TriggerKind::InferenceMisfit,
            TriggerKind::Deviates,
            TriggerKind::RefinementBracket,
            TriggerKind::RunPanic,
            TriggerKind::AttributionMismatch,
        ] {
            assert_eq!(TriggerKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(TriggerKind::parse("nope"), None);
    }

    #[test]
    fn fire_is_noop_unarmed_and_dedups_when_armed() {
        let _g = crate::test_lock().lock().unwrap();
        disarm();
        let mut built = 0u32;
        assert!(fire(TriggerKind::RunPanic, "k", || {
            built += 1;
            bundle(TriggerKind::RunPanic, "k")
        })
        .is_none());
        assert_eq!(built, 0, "unarmed fire must not build");

        let dir = std::env::temp_dir().join(format!("lazyeye-trigger-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        arm(&dir).unwrap();
        assert!(armed());
        let p1 = fire(TriggerKind::RunPanic, "k", || {
            built += 1;
            bundle(TriggerKind::RunPanic, "k")
        });
        let p2 = fire(TriggerKind::RunPanic, "k", || {
            built += 1;
            bundle(TriggerKind::RunPanic, "k")
        });
        disarm();
        assert_eq!(built, 1, "second fire deduplicated");
        let p1 = p1.expect("first fire writes a bundle");
        assert!(p2.is_none());
        let text = std::fs::read_to_string(&p1).unwrap();
        let parsed = Bundle::from_json_str(&text).unwrap();
        assert_eq!(parsed.kind, "run-panic");
        assert!(
            parsed.wall.get("ring").is_some(),
            "wall context attached at write time"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

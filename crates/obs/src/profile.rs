//! Collapsed-stack flame-graph export.
//!
//! The collapsed ("folded") format is the lingua franca of flame-graph
//! tooling — one line per unique stack, `frame;frame;frame weight` —
//! loadable by speedscope, inferno and Brendan Gregg's original
//! `flamegraph.pl`. Stacks live in a [`BTreeMap`], so rendering is
//! deterministic: same samples in, byte-identical text out, whatever
//! the insertion order. That keeps flame graphs inside the virtual
//! clock's purity contract (byte-comparable across `--jobs`).

use std::collections::BTreeMap;

/// An accumulating collapsed-stack flame graph.
///
/// Frames never contain `;` (the stack separator) or newlines; offending
/// characters are replaced with `_` on insertion.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlameGraph {
    stacks: BTreeMap<String, u64>,
}

fn clean(frame: &str) -> String {
    frame
        .chars()
        .map(|c| {
            if c == ';' || c == '\n' || c == '\r' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

impl FlameGraph {
    /// An empty flame graph.
    pub fn new() -> FlameGraph {
        FlameGraph::default()
    }

    /// Adds `weight` samples of the stack `frames` (root first).
    /// Zero-weight samples are dropped so the output only lists stacks
    /// that actually accumulated time.
    pub fn add<I, S>(&mut self, frames: I, weight: u64)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        if weight == 0 {
            return;
        }
        let stack = frames
            .into_iter()
            .map(|f| clean(f.as_ref()))
            .collect::<Vec<_>>()
            .join(";");
        if stack.is_empty() {
            return;
        }
        *self.stacks.entry(stack).or_insert(0) += weight;
    }

    /// Merges another flame graph into this one.
    pub fn merge(&mut self, other: &FlameGraph) {
        for (stack, w) in &other.stacks {
            *self.stacks.entry(stack.clone()).or_insert(0) += *w;
        }
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// Whether no stack has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Total accumulated weight across all stacks.
    pub fn total_weight(&self) -> u64 {
        self.stacks.values().sum()
    }

    /// Renders the collapsed-stack text: one `stack weight` line per
    /// stack, lexicographically sorted, newline-terminated.
    pub fn render_collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, w) in &self.stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sorted_collapsed_lines() {
        let mut fg = FlameGraph::new();
        fg.add(["cad", "chrome-130.0", "connect"], 20);
        fg.add(["cad", "chrome-130.0", "cad"], 300);
        fg.add(["cad", "chrome-130.0", "cad"], 100);
        assert_eq!(
            fg.render_collapsed(),
            "cad;chrome-130.0;cad 400\ncad;chrome-130.0;connect 20\n"
        );
        assert_eq!(fg.total_weight(), 420);
        assert_eq!(fg.len(), 2);
    }

    #[test]
    fn zero_weight_and_empty_stacks_are_dropped() {
        let mut fg = FlameGraph::new();
        fg.add(["a"], 0);
        fg.add(Vec::<&str>::new(), 5);
        assert!(fg.is_empty());
    }

    #[test]
    fn frames_are_sanitized() {
        let mut fg = FlameGraph::new();
        fg.add(["we;ird\nframe"], 1);
        assert_eq!(fg.render_collapsed(), "we_ird_frame 1\n");
    }

    #[test]
    fn merge_accumulates_and_stays_deterministic() {
        let mut a = FlameGraph::new();
        a.add(["x", "y"], 1);
        let mut b = FlameGraph::new();
        b.add(["x", "y"], 2);
        b.add(["x", "z"], 3);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.render_collapsed(), ba.render_collapsed());
        assert_eq!(ab.render_collapsed(), "x;y 3\nx;z 3\n");
    }
}

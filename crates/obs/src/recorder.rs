//! The flight recorder: an always-on, bounded ring buffer of structured
//! events.
//!
//! Subsystems record coarse, clock-domain-tagged events (one per
//! campaign run, fleet session, sim run or fast-path refusal — never
//! per poll) into a fixed-size ring. The ring never grows: once full,
//! each new event overwrites the oldest slot (FIFO eviction). When a
//! [trigger](crate::trigger) fires, [`snapshot`] captures the recent
//! past into the black-box bundle's wall section.
//!
//! The ring is sharded: a global atomic cursor assigns every write a
//! unique sequence number and slot, and each slot is guarded by its own
//! mutex, so concurrent writers contend only when they land on the same
//! slot. A snapshot taken concurrently with writers is always
//! *internally consistent* — every event it contains is complete and
//! events are ordered by sequence number — though it may span writes
//! from a window in which some slots were overwritten.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use lazyeye_json::Json;

use crate::Clock;

/// Capacity of the process-global ring returned by [`recorder`].
pub const DEFAULT_CAPACITY: usize = 4096;

/// One recorded flight-recorder event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Global sequence number: the total order of writes into the ring.
    pub seq: u64,
    /// Clock domain of the emitting subsystem.
    pub clock: Clock,
    /// Wall-clock microseconds since the Unix epoch at record time.
    pub at_us: u64,
    /// Subsystem-scoped event name (e.g. `campaign.run`).
    pub name: &'static str,
    /// Free-form detail payload.
    pub detail: String,
}

impl RecordedEvent {
    /// JSON form used in black-box bundles (wall section only: `at_us`
    /// is host time, so recorded events are never part of report or
    /// replay-pinned bytes).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::UInt(self.seq)),
            ("clock", Json::Str(self.clock.label().into())),
            ("at_us", Json::UInt(self.at_us)),
            ("name", Json::Str(self.name.into())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

/// A bounded ring of [`RecordedEvent`]s. See the module docs for the
/// concurrency contract.
pub struct Recorder {
    slots: Vec<Mutex<Option<RecordedEvent>>>,
    next: AtomicU64,
}

impl Recorder {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Recorder {
        assert!(capacity > 0, "flight recorder capacity must be nonzero");
        Recorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Maximum number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total number of events ever written (including overwritten ones).
    pub fn written(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Records one event, returning its sequence number. Overwrites the
    /// oldest event when the ring is full.
    pub fn record(&self, clock: Clock, name: &'static str, detail: impl Into<String>) -> u64 {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let event = RecordedEvent {
            seq,
            clock,
            at_us: crate::trace::wall_now_us(),
            name,
            detail: detail.into(),
        };
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().unwrap() = Some(event);
        seq
    }

    /// The ring's current contents, ordered by sequence number.
    pub fn snapshot(&self) -> Vec<RecordedEvent> {
        let mut events: Vec<RecordedEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap().clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The ring's current contents as a JSON array (bundle wall section).
    pub fn snapshot_json(&self) -> Json {
        Json::Arr(self.snapshot().iter().map(RecordedEvent::to_json).collect())
    }

    /// Empties every slot. Sequence numbers keep increasing across a
    /// clear, so snapshots before and after never interleave.
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap() = None;
        }
    }
}

/// The process-global flight recorder ([`DEFAULT_CAPACITY`] events).
pub fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder::new(DEFAULT_CAPACITY))
}

/// Records one event into the process-global ring.
pub fn record(clock: Clock, name: &'static str, detail: impl Into<String>) {
    recorder().record(clock, name, detail);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_last_capacity_events() {
        let r = Recorder::new(8);
        for i in 0..20u64 {
            r.record(Clock::Virtual, "test.ring", format!("e{i}"));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 8);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>(), "oldest evicted first");
        assert_eq!(r.written(), 20);
    }

    #[test]
    fn snapshot_of_partial_ring_is_ordered() {
        let r = Recorder::new(16);
        for i in 0..5u64 {
            r.record(Clock::Wall, "test.partial", format!("{i}"));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 5);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(snap[0].detail, "0");
        assert_eq!(snap[4].detail, "4");
    }

    #[test]
    fn clear_empties_but_keeps_sequencing_monotonic() {
        let r = Recorder::new(4);
        r.record(Clock::Wall, "test.clear", "a");
        r.clear();
        assert!(r.snapshot().is_empty());
        let seq = r.record(Clock::Wall, "test.clear", "b");
        assert_eq!(seq, 1, "sequence numbers survive clear");
    }
}

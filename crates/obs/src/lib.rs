//! # lazyeye-obs — the unified observability layer
//!
//! One subsystem, three surfaces, two clocks:
//!
//! * a [`registry`] of counters, gauges and log-scale histograms that
//!   the scheduler, executor, campaign and fleet engines all feed;
//! * a [`trace`] span/event API ([`span!`], [`event!`]) recording into
//!   per-thread buffers, exported as Chrome trace-event JSON by
//!   [`timeline`];
//! * live [`progress`] state for the CLI's `--progress` reporter;
//! * a flight [`recorder`] — an always-on bounded ring of structured
//!   events — plus a [`trigger`] engine that snapshots it (with full
//!   run provenance) into self-contained black-box [`bundle`]s on
//!   anomalies, for `lazyeye replay` forensics;
//! * a [`profile`] collapsed-stack [`profile::FlameGraph`] builder —
//!   the deterministic export surface of the causal latency profiler.
//!
//! **Clock domains.** Every metric and span is tagged [`Clock::Virtual`]
//! or [`Clock::Wall`]. Virtual-domain values are functions of the
//! simulated workload only: for a fixed spec and seed they are
//! byte-identical whatever `--jobs` is, so they may sit next to report
//! data and CI pins them. Wall-domain values (worker utilization, steal
//! counters, latencies) describe the host execution and are kept
//! strictly out of report bytes — they appear only in `--timeline`,
//! `--metrics-out` and `--progress` output.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bundle;
pub mod profile;
pub mod progress;
pub mod recorder;
pub mod registry;
pub mod timeline;
pub mod trace;
pub mod trigger;

pub use registry::{counter, counter_labeled, gauge, histogram, Counter, Gauge, Histogram};

/// The clock domain a metric or span lives in.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Clock {
    /// Simulated time: deterministic for (spec, seed), independent of
    /// the worker count. Safe next to report bytes.
    Virtual,
    /// Host time and host execution structure: never part of reports.
    Wall,
}

impl Clock {
    /// The label used in exposition output (`clock="..."`).
    pub fn label(self) -> &'static str {
        match self {
            Clock::Virtual => "virtual",
            Clock::Wall => "wall",
        }
    }
}

/// Opens a wall-clock span on the current worker track; the span closes
/// when the returned guard drops. Records nothing unless tracing is
/// enabled.
///
/// ```
/// let _span = lazyeye_obs::span!("campaign.pass1");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::wall_span($name)
    };
}

/// Records an instant wall-clock event on the current worker track.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::trace::wall_event($name)
    };
}

/// Serializes tests that mutate process-global observability state
/// (trace enable flag, progress state) within one test binary.
#[cfg(test)]
pub(crate) fn test_lock() -> &'static std::sync::Mutex<()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    &LOCK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_labels() {
        assert_eq!(Clock::Virtual.label(), "virtual");
        assert_eq!(Clock::Wall.label(), "wall");
    }

    #[test]
    fn span_and_event_macros_compile_and_are_noops_when_disabled() {
        let _g = test_lock().lock().unwrap();
        trace::disable();
        let guard = span!("macro.span");
        assert!(guard.is_none());
        event!("macro.event");
    }
}

//! Black-box bundles: the self-contained JSON artifact a
//! [trigger](crate::trigger) writes when an anomaly fires.
//!
//! A bundle splits cleanly along the [`Clock`](crate::Clock) domains:
//!
//! * the **virtual** section — trigger identity, full run provenance
//!   and the captured trace — is a pure function of (spec, seed), so
//!   its bytes are pinned across `--jobs` and are what
//!   `lazyeye replay` regenerates and diffs;
//! * the **wall** section — a flight-recorder ring snapshot and a
//!   metrics-registry exposition — describes the host execution at
//!   capture time and is excluded from all byte pinning.
//!
//! This crate stays payload-agnostic (provenance and trace are opaque
//! [`Json`] values) so it can sit below `core`/`testbed` in the crate
//! graph; `lazyeye-campaign` builds the concrete payloads.

use lazyeye_json::{Json, JsonError};

/// Bundle schema version.
pub const BUNDLE_VERSION: u64 = 1;

/// A black-box bundle. See the module docs for the schema split.
#[derive(Clone, Debug, PartialEq)]
pub struct Bundle {
    /// Trigger kind label (e.g. `fastpath-fallback`).
    pub kind: String,
    /// Deduplication key: one bundle per (kind, key) per armed session.
    pub key: String,
    /// Human-oriented detail (refusal reason, panic message, verdict).
    pub detail: String,
    /// Full run provenance — everything needed to re-execute the run.
    pub provenance: Json,
    /// The captured trace (`Json::Null` when capture is impossible,
    /// e.g. for a run-panic bundle).
    pub trace: Json,
    /// Host-side context: ring snapshot and metrics exposition. Not
    /// part of the pinned bytes; attached by the trigger engine at
    /// write time.
    pub wall: Json,
}

impl Bundle {
    /// Builds a bundle with an empty wall section (the trigger engine
    /// fills it in when the bundle is written).
    pub fn new(
        kind: impl Into<String>,
        key: impl Into<String>,
        detail: impl Into<String>,
        provenance: Json,
        trace: Json,
    ) -> Bundle {
        Bundle {
            kind: kind.into(),
            key: key.into(),
            detail: detail.into(),
            provenance,
            trace,
            wall: Json::Null,
        }
    }

    /// The virtual (deterministic) section: trigger identity,
    /// provenance and trace.
    pub fn virtual_json(&self) -> Json {
        Json::obj(vec![
            (
                "trigger",
                Json::obj(vec![
                    ("kind", Json::Str(self.kind.clone())),
                    ("key", Json::Str(self.key.clone())),
                    ("detail", Json::Str(self.detail.clone())),
                ]),
            ),
            ("provenance", self.provenance.clone()),
            ("trace", self.trace.clone()),
        ])
    }

    /// Pretty-printed virtual section plus trailing newline — the bytes
    /// CI pins identical across `--jobs 1/4/8`.
    pub fn virtual_json_string(&self) -> String {
        let mut out = self.virtual_json().to_string_pretty();
        out.push('\n');
        out
    }

    /// The complete bundle document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", Json::UInt(BUNDLE_VERSION)),
            ("virtual", self.virtual_json()),
            ("wall", self.wall.clone()),
        ])
    }

    /// Pretty-printed bundle plus trailing newline (the on-disk format).
    pub fn to_json_string(&self) -> String {
        let mut out = self.to_json().to_string_pretty();
        out.push('\n');
        out
    }

    /// Parses a bundle document written by [`Bundle::to_json_string`].
    pub fn from_json_str(s: &str) -> Result<Bundle, JsonError> {
        let doc = Json::parse(s)?;
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| JsonError::new("bundle: missing version"))?;
        if version != BUNDLE_VERSION {
            return Err(JsonError::new(format!(
                "bundle: unsupported version {version} (expected {BUNDLE_VERSION})"
            )));
        }
        let virt = doc
            .get("virtual")
            .ok_or_else(|| JsonError::new("bundle: missing virtual section"))?;
        let trigger = virt
            .get("trigger")
            .ok_or_else(|| JsonError::new("bundle: missing trigger"))?;
        let field = |key: &str| -> Result<String, JsonError> {
            trigger
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| JsonError::new(format!("bundle: missing trigger.{key}")))
        };
        Ok(Bundle {
            kind: field("kind")?,
            key: field("key")?,
            detail: field("detail")?,
            provenance: virt.get("provenance").cloned().unwrap_or(Json::Null),
            trace: virt.get("trace").cloned().unwrap_or(Json::Null),
            wall: doc.get("wall").cloned().unwrap_or(Json::Null),
        })
    }

    /// Deterministic on-disk file name: `<kind>-<sanitized key>.json`
    /// with every non-alphanumeric character mapped to `-`.
    pub fn file_name(&self) -> String {
        let mut out = String::with_capacity(self.kind.len() + self.key.len() + 6);
        for c in self.kind.chars().chain("-".chars()).chain(self.key.chars()) {
            out.push(if c.is_ascii_alphanumeric() { c } else { '-' });
        }
        out.push_str(".json");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bundle {
        let mut b = Bundle::new(
            "fastpath-fallback",
            "cad:chrome-130.0:baseline:d300:r1",
            "tie",
            Json::obj(vec![("seed", Json::Int(7))]),
            Json::obj(vec![("events", Json::Arr(vec![]))]),
        );
        b.wall = Json::obj(vec![("ring", Json::Arr(vec![]))]);
        b
    }

    #[test]
    fn bundle_roundtrips_through_json() {
        let b = sample();
        let text = b.to_json_string();
        let parsed = Bundle::from_json_str(&text).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn virtual_section_excludes_wall_context() {
        let b = sample();
        let virt = b.virtual_json_string();
        assert!(!virt.contains("ring"));
        assert!(virt.contains("\"kind\""));
        assert!(virt.contains("\"provenance\""));
    }

    #[test]
    fn file_name_is_sanitized() {
        assert_eq!(
            sample().file_name(),
            "fastpath-fallback-cad-chrome-130-0-baseline-d300-r1.json"
        );
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let err = Bundle::from_json_str("{\"version\": 99, \"virtual\": {}}").unwrap_err();
        assert!(format!("{err:?}").contains("unsupported version"));
    }
}

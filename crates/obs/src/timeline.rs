//! Chrome trace-event JSON export (loadable in Perfetto or
//! `chrome://tracing`).
//!
//! The two clock domains become two trace "processes": pid 1 carries one
//! track per worker thread plus the orchestrator track (wall clock), pid
//! 2 carries one track per sampled simulation run (virtual time). Spans
//! are `"X"` complete events, instants are `"i"` events, and `"M"`
//! metadata events name every process and thread. Events are sorted
//! deterministically before writing, so for a deterministic workload the
//! virtual-time half of the file is byte-identical across worker counts.

use std::fmt::Write as _;

use crate::trace::{TraceEvent, ORCHESTRATOR_TRACK};
use crate::Clock;

/// The trace-event `pid` used for the wall-clock (orchestration) domain.
pub const WALL_PID: u32 = 1;
/// The trace-event `pid` used for the virtual-time (sampled run) domain.
pub const VIRTUAL_PID: u32 = 2;

fn pid_of(clock: Clock) -> u32 {
    match clock {
        Clock::Wall => WALL_PID,
        Clock::Virtual => VIRTUAL_PID,
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn meta_event(out: &mut String, name: &str, pid: u32, tid: u32, value: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
    );
    escape_into(out, value);
    out.push_str("\"}},\n");
}

/// Renders `events` as a Chrome trace-event JSON document.
pub fn render_chrome_trace(mut events: Vec<TraceEvent>) -> String {
    // Deterministic order: domain, then track, then time, then name.
    events.sort_by(|a, b| {
        (pid_of(a.clock), a.track, a.ts_us, &a.name, a.dur_us).cmp(&(
            pid_of(b.clock),
            b.track,
            b.ts_us,
            &b.name,
            b.dur_us,
        ))
    });

    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    meta_event(
        &mut out,
        "process_name",
        WALL_PID,
        0,
        "wall clock (orchestration)",
    );
    meta_event(
        &mut out,
        "process_name",
        VIRTUAL_PID,
        0,
        "virtual time (sampled runs)",
    );

    // Name every track that actually carries events.
    let mut tracks: Vec<(u32, u32)> = events
        .iter()
        .map(|e| (pid_of(e.clock), e.track))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    tracks.sort_unstable();
    for (pid, tid) in tracks {
        let label = match (pid, tid) {
            (WALL_PID, ORCHESTRATOR_TRACK) => "orchestrator".to_string(),
            (WALL_PID, i) => format!("worker-{i}"),
            (_, i) => format!("run-{i}"),
        };
        meta_event(&mut out, "thread_name", pid, tid, &label);
    }

    for (i, e) in events.iter().enumerate() {
        let pid = pid_of(e.clock);
        out.push_str("{\"name\":\"");
        escape_into(&mut out, &e.name);
        let _ = match e.dur_us {
            Some(dur) => write!(
                out,
                "\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{dur},\"args\":{{\"clock\":\"{}\"}}}}",
                e.track,
                e.ts_us,
                e.clock.label()
            ),
            None => write!(
                out,
                "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"args\":{{\"clock\":\"{}\"}}}}",
                e.track,
                e.ts_us,
                e.clock.label()
            ),
        };
        out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn ev(
        name: &'static str,
        track: u32,
        clock: Clock,
        ts_us: u64,
        dur_us: Option<u64>,
    ) -> TraceEvent {
        TraceEvent {
            name: Cow::Borrowed(name),
            track,
            clock,
            ts_us,
            dur_us,
        }
    }

    #[test]
    fn chrome_trace_parses_and_round_trips_nesting_and_domains() {
        let events = vec![
            ev("outer", 0, Clock::Wall, 100, Some(900)),
            ev("inner", 0, Clock::Wall, 200, Some(300)),
            ev("mark", 1, Clock::Wall, 50, None),
            ev("sim.run", 0, Clock::Virtual, 0, Some(5000)),
            ev("timer", 0, Clock::Virtual, 1250, None),
            ev(
                "orchestrate",
                ORCHESTRATOR_TRACK,
                Clock::Wall,
                0,
                Some(2000),
            ),
        ];
        let json = render_chrome_trace(events);
        let doc = lazyeye_json::Json::parse(&json).expect("trace JSON must parse");
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();

        // Every X/i event carries a clock arg; both domains are present.
        let clock_of = |e: &lazyeye_json::Json| {
            e.get("args")
                .and_then(|a| a.get("clock"))
                .and_then(|c| c.as_str().map(str::to_string))
        };
        let spans: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert!(spans.iter().any(|e| clock_of(e).as_deref() == Some("wall")));
        assert!(spans
            .iter()
            .any(|e| clock_of(e).as_deref() == Some("virtual")));

        // Nesting survives: inner sits fully inside outer on the same
        // worker track.
        let find = |name: &str| {
            spans
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(name))
                .unwrap()
        };
        let as_u64 = |e: &lazyeye_json::Json, k: &str| e.get(k).unwrap().as_u64().unwrap();
        let (outer, inner) = (find("outer"), find("inner"));
        assert_eq!(as_u64(outer, "tid"), as_u64(inner, "tid"));
        assert!(as_u64(inner, "ts") >= as_u64(outer, "ts"));
        assert!(
            as_u64(inner, "ts") + as_u64(inner, "dur")
                <= as_u64(outer, "ts") + as_u64(outer, "dur")
        );

        // Track assignment: the wall pid carries worker + orchestrator
        // tracks, the virtual pid carries the run track.
        assert_eq!(as_u64(find("outer"), "pid"), u64::from(WALL_PID));
        assert_eq!(as_u64(find("sim.run"), "pid"), u64::from(VIRTUAL_PID));
        let names: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str().map(str::to_string))
            .collect();
        assert!(names.iter().any(|n| n == "worker-0"));
        assert!(names.iter().any(|n| n == "worker-1"));
        assert!(names.iter().any(|n| n == "run-0"));
        assert!(names.iter().any(|n| n == "orchestrator"));
    }

    #[test]
    fn rendering_is_deterministic_under_input_order() {
        let a = vec![
            ev("b", 1, Clock::Wall, 10, Some(5)),
            ev("a", 0, Clock::Virtual, 0, None),
        ];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(render_chrome_trace(a), render_chrome_trace(b));
    }
}

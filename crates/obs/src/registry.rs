//! The process-wide metrics registry: counters, gauges and log-scale
//! histograms, each tagged with the [`Clock`] domain its values live in.
//!
//! Handles are registered once (by `&'static str` name) and returned as
//! `&'static` references, so hot paths pay one atomic op per update and
//! never touch the registry lock. Exposition walks the registry in
//! name order, which makes the rendered snapshot deterministic for a
//! deterministic workload.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::Clock;

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    clock: Clock,
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The counter's clock domain.
    pub fn clock(&self) -> Clock {
        self.clock
    }
}

/// A gauge: a value that can move in both directions.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    clock: Clock,
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero under races only in the sense
    /// that callers are expected to pair add/sub).
    pub fn sub(&self, n: u64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// Number of log-scale buckets: bucket `i > 0` counts values `v` with
/// `2^(i-1) <= v <= 2^i - 1`; bucket 0 counts `v == 0`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free base-2 log-scale histogram.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    clock: Clock,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let idx = Self::bucket_index(v).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative).
    pub fn buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Value at quantile `q` (`0 < q <= 1`), reported as the inclusive
    /// upper bound of the log2 bucket holding the rank-`ceil(q*count)`
    /// observation; `0` for an empty histogram. Exact when the true
    /// quantile lands on a bucket boundary, otherwise an overestimate
    /// by less than 2x (the bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, b) in self.buckets().into_iter().enumerate() {
            cumulative += b;
            if cumulative >= target {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Zeroes every bucket and the count/sum.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Inclusive upper bound of log2 bucket `i`: `2^i - 1`, saturating at
/// `u64::MAX` (bucket 0 holds only `v == 0`).
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, &'static Counter>,
    labeled: BTreeMap<(&'static str, &'static str, &'static str), &'static Counter>,
    gauges: BTreeMap<&'static str, &'static Gauge>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        counters: BTreeMap::new(),
        labeled: BTreeMap::new(),
        gauges: BTreeMap::new(),
        histograms: BTreeMap::new(),
    });
    &REGISTRY
}

/// Registers (or fetches) the counter `name` in the given clock domain.
/// The first registration fixes the clock domain; later callers get the
/// existing handle.
pub fn counter(name: &'static str, clock: Clock) -> &'static Counter {
    let mut reg = registry().lock().unwrap();
    reg.counters.entry(name).or_insert_with(|| {
        Box::leak(Box::new(Counter {
            name,
            clock,
            value: AtomicU64::new(0),
        }))
    })
}

/// Registers (or fetches) the counter `name` carrying one extra
/// `label_key="label_value"` exposition label. Labeled counters sharing
/// a base name render under one `# TYPE` block together with the
/// unlabeled aggregate (if registered), so e.g.
/// `fastpath.fallbacks{reason="tie"}` breaks the aggregate down without
/// changing its meaning.
pub fn counter_labeled(
    name: &'static str,
    label_key: &'static str,
    label_value: &'static str,
    clock: Clock,
) -> &'static Counter {
    let mut reg = registry().lock().unwrap();
    reg.labeled
        .entry((name, label_key, label_value))
        .or_insert_with(|| {
            Box::leak(Box::new(Counter {
                name,
                clock,
                value: AtomicU64::new(0),
            }))
        })
}

/// Registers (or fetches) the gauge `name`.
pub fn gauge(name: &'static str, clock: Clock) -> &'static Gauge {
    let mut reg = registry().lock().unwrap();
    reg.gauges.entry(name).or_insert_with(|| {
        Box::leak(Box::new(Gauge {
            name,
            clock,
            value: AtomicU64::new(0),
        }))
    })
}

/// Registers (or fetches) the histogram `name`.
pub fn histogram(name: &'static str, clock: Clock) -> &'static Histogram {
    let mut reg = registry().lock().unwrap();
    reg.histograms.entry(name).or_insert_with(|| {
        Box::leak(Box::new(Histogram {
            name,
            clock,
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    })
}

/// Zeroes every registered metric (test isolation between workloads
/// sharing one process).
pub fn reset_all() {
    let reg = registry().lock().unwrap();
    for c in reg.counters.values() {
        c.reset();
    }
    for c in reg.labeled.values() {
        c.reset();
    }
    for g in reg.gauges.values() {
        g.reset();
    }
    for h in reg.histograms.values() {
        h.reset();
    }
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("lazyeye_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Renders a Prometheus-style text exposition of every registered metric,
/// optionally restricted to one clock domain.
///
/// Lines are emitted in metric-name order; for a deterministic workload
/// the `Clock::Virtual` subset is byte-identical whatever the worker
/// count (CI pins this across `--jobs 1/4/8`).
pub fn render_prometheus(filter: Option<Clock>) -> String {
    struct Block {
        name: String,
        text: String,
    }
    let keep = |clock: Clock| filter.is_none() || filter == Some(clock);
    let mut blocks: Vec<Block> = Vec::new();
    {
        let reg = registry().lock().unwrap();
        // Plain and labeled counters sharing a base name merge into one
        // block: the unlabeled aggregate line first, then labeled lines
        // in (label key, label value) order.
        let mut counter_blocks: BTreeMap<String, String> = BTreeMap::new();
        for c in reg.counters.values() {
            if !keep(c.clock) {
                continue;
            }
            let pname = prom_name(c.name);
            let text = counter_blocks
                .entry(pname.clone())
                .or_insert_with(|| format!("# TYPE {pname} counter\n"));
            let _ = writeln!(text, "{pname}{{clock=\"{}\"}} {}", c.clock.label(), c.get());
        }
        for ((_, key, value), c) in &reg.labeled {
            if !keep(c.clock) {
                continue;
            }
            let pname = prom_name(c.name);
            let text = counter_blocks
                .entry(pname.clone())
                .or_insert_with(|| format!("# TYPE {pname} counter\n"));
            let _ = writeln!(
                text,
                "{pname}{{clock=\"{}\",{key}=\"{value}\"}} {}",
                c.clock.label(),
                c.get()
            );
        }
        for (name, text) in counter_blocks {
            blocks.push(Block { name, text });
        }
        for g in reg.gauges.values() {
            if !keep(g.clock) {
                continue;
            }
            let pname = prom_name(g.name);
            let mut text = String::new();
            let _ = writeln!(text, "# TYPE {pname} gauge");
            let _ = writeln!(text, "{pname}{{clock=\"{}\"}} {}", g.clock.label(), g.get());
            blocks.push(Block { name: pname, text });
        }
        for h in reg.histograms.values() {
            if !keep(h.clock) {
                continue;
            }
            let pname = prom_name(h.name);
            let clock = h.clock.label();
            let buckets = h.buckets();
            let highest = buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
            let mut text = String::new();
            let _ = writeln!(text, "# TYPE {pname} histogram");
            let mut cumulative = 0u64;
            for (i, &b) in buckets.iter().enumerate().take(highest + 1) {
                cumulative += b;
                // Bucket i holds v <= 2^i - 1 (v == 0 lands in bucket 0).
                let le = bucket_upper_bound(i);
                let _ = writeln!(
                    text,
                    "{pname}_bucket{{clock=\"{clock}\",le=\"{le}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                text,
                "{pname}_bucket{{clock=\"{clock}\",le=\"+Inf\"}} {}",
                h.count()
            );
            let _ = writeln!(text, "{pname}_sum{{clock=\"{clock}\"}} {}", h.sum());
            let _ = writeln!(text, "{pname}_count{{clock=\"{clock}\"}} {}", h.count());
            for (suffix, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                let _ = writeln!(
                    text,
                    "{pname}_{suffix}{{clock=\"{clock}\"}} {}",
                    h.quantile(q)
                );
            }
            blocks.push(Block { name: pname, text });
        }
    }
    blocks.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    for b in blocks {
        out.push_str(&b.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_idempotent() {
        let a = counter("test.reg.counter", Clock::Virtual);
        let b = counter("test.reg.counter", Clock::Wall);
        assert!(std::ptr::eq(a, b), "same name must yield the same handle");
        assert_eq!(b.clock(), Clock::Virtual, "first registration wins");
        a.reset();
        a.add(3);
        a.inc();
        assert_eq!(b.get(), 4);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = histogram("test.reg.hist", Clock::Wall);
        h.reset();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        let b = h.buckets();
        assert_eq!(b[0], 1, "v=0");
        assert_eq!(b[1], 1, "v=1");
        assert_eq!(b[2], 2, "v in 2..=3");
        assert_eq!(b[3], 1, "v in 4..=7");
        assert_eq!(b[10], 1, "v in 512..=1023");
    }

    #[test]
    fn exposition_filters_by_clock_domain() {
        counter("test.expo.virtual", Clock::Virtual).add(7);
        counter("test.expo.wall", Clock::Wall).add(9);
        let all = render_prometheus(None);
        assert!(all.contains("lazyeye_test_expo_virtual{clock=\"virtual\"}"));
        assert!(all.contains("lazyeye_test_expo_wall{clock=\"wall\"}"));
        let virt = render_prometheus(Some(Clock::Virtual));
        assert!(virt.contains("lazyeye_test_expo_virtual"));
        assert!(!virt.contains("lazyeye_test_expo_wall"));
    }

    #[test]
    fn quantiles_pin_bucket_upper_bounds() {
        let h = histogram("test.reg.quant", Clock::Wall);
        h.reset();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 rank 50 -> value 50 -> bucket 32..=63 -> upper bound 63.
        assert_eq!(h.quantile(0.5), 63);
        // p90 rank 90 -> value 90 -> bucket 64..=127 -> upper bound 127.
        assert_eq!(h.quantile(0.9), 127);
        // p99 rank 99 -> value 99 -> same bucket.
        assert_eq!(h.quantile(0.99), 127);
        // p100 rank 100 -> value 100 -> same bucket.
        assert_eq!(h.quantile(1.0), 127);

        h.reset();
        for v in [0, 0, 1, 1] {
            h.record(v);
        }
        // rank ceil(0.5*4)=2 is still in the v==0 bucket.
        assert_eq!(h.quantile(0.5), 0);
        // rank ceil(0.99*4)=4 -> v==1 bucket, exact boundary.
        assert_eq!(h.quantile(0.99), 1);

        h.reset();
        h.record(1000);
        assert_eq!(h.quantile(0.5), 1023, "single value in 512..=1023");
    }

    #[test]
    fn exposition_emits_percentile_lines() {
        let h = histogram("test.expo.pct", Clock::Wall);
        h.reset();
        for v in 1..=100u64 {
            h.record(v);
        }
        let out = render_prometheus(None);
        assert!(out.contains("lazyeye_test_expo_pct_p50{clock=\"wall\"} 63"));
        assert!(out.contains("lazyeye_test_expo_pct_p90{clock=\"wall\"} 127"));
        assert!(out.contains("lazyeye_test_expo_pct_p99{clock=\"wall\"} 127"));
    }

    #[test]
    fn labeled_counters_merge_under_one_type_block() {
        counter("test.lab.fb", Clock::Virtual).add(5);
        counter_labeled("test.lab.fb", "reason", "tie", Clock::Virtual).add(3);
        counter_labeled("test.lab.fb", "reason", "quic", Clock::Virtual).add(2);
        let out = render_prometheus(Some(Clock::Virtual));
        assert_eq!(
            out.matches("# TYPE lazyeye_test_lab_fb counter").count(),
            1,
            "one TYPE block for aggregate + labels"
        );
        let agg = out
            .find("lazyeye_test_lab_fb{clock=\"virtual\"} 5")
            .unwrap();
        let quic = out
            .find("lazyeye_test_lab_fb{clock=\"virtual\",reason=\"quic\"} 2")
            .unwrap();
        let tie = out
            .find("lazyeye_test_lab_fb{clock=\"virtual\",reason=\"tie\"} 3")
            .unwrap();
        assert!(agg < quic && quic < tie, "aggregate first, labels sorted");
    }

    #[test]
    fn exposition_is_sorted_by_metric_name() {
        counter("test.sorted.b", Clock::Wall).inc();
        counter("test.sorted.a", Clock::Wall).inc();
        let out = render_prometheus(None);
        let a = out.find("lazyeye_test_sorted_a").unwrap();
        let b = out.find("lazyeye_test_sorted_b").unwrap();
        assert!(a < b);
    }
}

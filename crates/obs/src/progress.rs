//! Live progress state for `--progress`: per-worker in-flight items,
//! busy time, throughput and ETA, all derived from the same registry
//! counters the exporters read.
//!
//! Workers report cheaply (two atomics and, when enabled, one small
//! mutex touch per item); a reporter thread in the CLI samples
//! [`snapshot`] a couple of times a second and renders a status line.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::trace;

/// Upper bound on tracked workers; workers past it still run, they just
/// don't get per-worker progress attribution.
pub const MAX_WORKERS: usize = 256;

struct WorkerSlot {
    busy_us: AtomicU64,
    items: AtomicU64,
    start_us: AtomicU64,
    in_flight: AtomicBool,
    label: Mutex<Option<String>>,
}

#[allow(clippy::declare_interior_mutable_const)]
const WORKER_SLOT_INIT: WorkerSlot = WorkerSlot {
    busy_us: AtomicU64::new(0),
    items: AtomicU64::new(0),
    start_us: AtomicU64::new(0),
    in_flight: AtomicBool::new(false),
    label: Mutex::new(None),
};

static WORKERS: [WorkerSlot; MAX_WORKERS] = [WORKER_SLOT_INIT; MAX_WORKERS];
static ENABLED: AtomicBool = AtomicBool::new(false);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static DONE: AtomicU64 = AtomicU64::new(0);
static JOBS: AtomicU64 = AtomicU64::new(0);
static START_US: AtomicU64 = AtomicU64::new(0);

fn origin() -> Instant {
    static ORIGIN: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    u64::try_from(origin().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Arms progress tracking for a workload of `total` items on `jobs`
/// workers.
pub fn begin(total: u64, jobs: u64) {
    for w in WORKERS.iter().take(MAX_WORKERS) {
        w.busy_us.store(0, Ordering::Relaxed);
        w.items.store(0, Ordering::Relaxed);
        w.in_flight.store(false, Ordering::Relaxed);
        *w.label.lock().unwrap() = None;
    }
    TOTAL.store(total, Ordering::Relaxed);
    DONE.store(0, Ordering::Relaxed);
    JOBS.store(jobs.max(1), Ordering::Relaxed);
    START_US.store(now_us(), Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether progress tracking is armed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Updates the planned item count mid-flight (a campaign's refinement
/// pass grows the total after [`begin`]).
pub fn set_total(total: u64) {
    TOTAL.store(total, Ordering::Relaxed);
}

/// Disarms progress tracking.
pub fn end() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Marks worker `worker` as starting one item.
pub fn item_start(worker: u32) {
    let Some(slot) = WORKERS.get(worker as usize) else {
        return;
    };
    slot.start_us.store(now_us(), Ordering::Relaxed);
    slot.in_flight.store(true, Ordering::Relaxed);
}

/// Attaches a human-readable label to the calling worker's in-flight
/// item ("slowest cell" display). The closure only runs when progress is
/// armed.
pub fn annotate(label: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    let Some(slot) = WORKERS.get(trace::worker() as usize) else {
        return;
    };
    *slot.label.lock().unwrap() = Some(label());
}

/// Marks worker `worker` as done with its current item.
pub fn item_done(worker: u32) {
    DONE.fetch_add(1, Ordering::Relaxed);
    let Some(slot) = WORKERS.get(worker as usize) else {
        return;
    };
    let started = slot.start_us.load(Ordering::Relaxed);
    slot.busy_us
        .fetch_add(now_us().saturating_sub(started), Ordering::Relaxed);
    slot.items.fetch_add(1, Ordering::Relaxed);
    slot.in_flight.store(false, Ordering::Relaxed);
}

/// A point-in-time progress reading.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Items completed so far.
    pub done: u64,
    /// Items planned.
    pub total: u64,
    /// Seconds since [`begin`].
    pub elapsed_s: f64,
    /// Completed items per second.
    pub rate: f64,
    /// Estimated seconds to completion (`None` before any item lands).
    pub eta_s: Option<f64>,
    /// Slowest currently-in-flight item: label (when annotated) and its
    /// age in seconds.
    pub slowest: Option<(String, f64)>,
    /// Fraction of worker capacity spent idle since [`begin`], in 0..=1.
    pub idle_frac: f64,
}

/// Samples the current progress state; `None` when tracking is off.
pub fn snapshot() -> Option<Snapshot> {
    if !enabled() {
        return None;
    }
    let now = now_us();
    let start = START_US.load(Ordering::Relaxed);
    let elapsed_us = now.saturating_sub(start).max(1);
    let done = DONE.load(Ordering::Relaxed);
    let total = TOTAL.load(Ordering::Relaxed);
    let jobs = JOBS.load(Ordering::Relaxed).max(1);

    let mut busy_us = 0u64;
    let mut slowest: Option<(String, u64)> = None;
    for slot in WORKERS.iter().take(jobs.min(MAX_WORKERS as u64) as usize) {
        busy_us += slot.busy_us.load(Ordering::Relaxed);
        if slot.in_flight.load(Ordering::Relaxed) {
            let age = now.saturating_sub(slot.start_us.load(Ordering::Relaxed));
            busy_us += age;
            if slowest.as_ref().is_none_or(|(_, a)| age > *a) {
                let label = slot
                    .label
                    .lock()
                    .unwrap()
                    .clone()
                    .unwrap_or_else(|| "(unlabelled)".to_string());
                slowest = Some((label, age));
            }
        }
    }
    let capacity_us = elapsed_us.saturating_mul(jobs).max(1);
    let rate = done as f64 / (elapsed_us as f64 / 1e6);
    Some(Snapshot {
        done,
        total,
        elapsed_s: elapsed_us as f64 / 1e6,
        rate,
        eta_s: (done > 0).then(|| total.saturating_sub(done) as f64 / rate.max(1e-9)),
        slowest: slowest.map(|(l, us)| (l, us as f64 / 1e6)),
        idle_frac: (1.0 - busy_us as f64 / capacity_us as f64).clamp(0.0, 1.0),
    })
}

impl Snapshot {
    /// Renders the one-line status the CLI prints for `--progress`.
    pub fn status_line(&self, unit: &str) -> String {
        let pct = if self.total > 0 {
            self.done as f64 * 100.0 / self.total as f64
        } else {
            0.0
        };
        let eta = match self.eta_s {
            Some(s) if self.done < self.total => format!(" eta {s:.1}s"),
            _ => String::new(),
        };
        let slow = match &self.slowest {
            Some((label, age)) if self.done < self.total => {
                format!(" slowest {label} ({age:.1}s)")
            }
            _ => String::new(),
        };
        format!(
            "{}/{} {unit} ({pct:.1}%) {:.1}/s{eta} idle {:.0}%{slow}",
            self.done,
            self.total,
            self.rate,
            self.idle_frac * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_tracks_items_rates_and_slowest() {
        let _g = crate::test_lock().lock().unwrap();
        begin(4, 2);
        trace::set_worker(0);
        item_start(0);
        annotate(|| "cell cad delay=100".to_string());
        item_done(0);
        item_start(1);
        let snap = snapshot().unwrap();
        assert_eq!(snap.done, 1);
        assert_eq!(snap.total, 4);
        assert!(snap.rate > 0.0);
        assert!(snap.eta_s.is_some());
        let slowest = snap.slowest.as_ref().unwrap();
        assert_eq!(slowest.0, "(unlabelled)", "worker 1 never annotated");
        let line = snap.status_line("cells");
        assert!(line.contains("1/4 cells"), "{line}");
        end();
        assert!(snapshot().is_none());
    }
}

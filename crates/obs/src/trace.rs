//! Span/event recording.
//!
//! Recording is **off by default** (a single relaxed atomic load on the
//! fast path) and enabled by the CLI's `--timeline` flag. Events land in
//! a per-thread buffer (no lock on the record path) that flushes into a
//! process-wide sink when the thread exits or when [`take_events`] runs
//! on that thread — which matches the executor's scoped worker threads:
//! by the time the caller exports a timeline, every worker has exited
//! and flushed.
//!
//! Two clock domains exist side by side (see [`Clock`]): wall-clock
//! spans describe the orchestration (workers, cells, passes) in
//! microseconds since [`enable`] was called; virtual-time spans describe
//! the inside of sampled simulation runs in simulated microseconds.
//! They are kept on separate process tracks by the timeline exporter and
//! never enter report bytes.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::registry;
use crate::Clock;

/// One recorded event: a complete span (`dur_us` set) or an instant
/// event (`dur_us == None`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (span or instant label).
    pub name: Cow<'static, str>,
    /// Track the event belongs to: the worker index for wall-clock
    /// events, the sampled-run index for virtual-time events.
    pub track: u32,
    /// Clock domain of `ts_us`/`dur_us`.
    pub clock: Clock,
    /// Start timestamp in microseconds (wall: since [`enable`]; virtual:
    /// simulated time since the run's t=0).
    pub ts_us: u64,
    /// Span duration in microseconds, `None` for instant events.
    pub dur_us: Option<u64>,
}

/// Hard cap on buffered events; past it, events are dropped and counted
/// in the `timeline.dropped_spans` metric, with a one-line stderr note
/// under `--progress` (no silent truncation of `--timeline` export).
pub const EVENT_CAP: usize = 1 << 20;

/// The wall-clock track index used for orchestration (non-worker) spans.
pub const ORCHESTRATOR_TRACK: u32 = u32::MAX;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TOTAL_BUFFERED: AtomicUsize = AtomicUsize::new(0);
static VIRTUAL_TRACK_BUDGET: AtomicU32 = AtomicU32::new(0);
static NEXT_VIRTUAL_TRACK: AtomicU32 = AtomicU32::new(0);

fn sink() -> &'static Mutex<Vec<TraceEvent>> {
    static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
    &SINK
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

struct LocalBuf {
    events: RefCell<Vec<TraceEvent>>,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        let events = self.events.get_mut();
        if !events.is_empty() {
            sink().lock().unwrap().append(events);
        }
    }
}

thread_local! {
    static LOCAL: LocalBuf = const {
        LocalBuf {
            events: RefCell::new(Vec::new()),
        }
    };
    static WORKER: Cell<u32> = const { Cell::new(ORCHESTRATOR_TRACK) };
}

/// Turns recording on, with a budget of `sampled_runs` virtual-time run
/// tracks, and pins the wall-clock epoch.
pub fn enable(sampled_runs: u32) {
    epoch();
    VIRTUAL_TRACK_BUDGET.store(sampled_runs, Ordering::Relaxed);
    NEXT_VIRTUAL_TRACK.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether recording is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording off (buffered events stay until [`take_events`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Microseconds of wall clock since [`enable`].
pub fn wall_now_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Tags the calling thread as worker `id`; wall-clock spans and progress
/// annotations recorded on this thread attach to that worker's track.
pub fn set_worker(id: u32) {
    WORKER.with(|w| w.set(id));
}

/// The calling thread's worker track ([`ORCHESTRATOR_TRACK`] when the
/// thread was never tagged).
pub fn worker() -> u32 {
    WORKER.with(|w| w.get())
}

static DROP_NOTED: AtomicBool = AtomicBool::new(false);

fn push(ev: TraceEvent) {
    if TOTAL_BUFFERED.fetch_add(1, Ordering::Relaxed) >= EVENT_CAP {
        TOTAL_BUFFERED.fetch_sub(1, Ordering::Relaxed);
        registry::counter("timeline.dropped_spans", Clock::Virtual).inc();
        if !DROP_NOTED.swap(true, Ordering::Relaxed) && crate::progress::enabled() {
            eprintln!(
                "[progress] timeline span buffer saturated ({EVENT_CAP} events); \
                 further spans are dropped and counted in timeline.dropped_spans"
            );
        }
        return;
    }
    LOCAL.with(|l| l.events.borrow_mut().push(ev));
}

/// Claims one of the sampled-run virtual tracks, or `None` when tracing
/// is off or the sample budget is spent.
pub fn claim_virtual_track() -> Option<u32> {
    if !enabled() {
        return None;
    }
    if VIRTUAL_TRACK_BUDGET
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
        .is_err()
    {
        return None;
    }
    Some(NEXT_VIRTUAL_TRACK.fetch_add(1, Ordering::Relaxed))
}

/// RAII guard for a wall-clock span: records on drop.
pub struct SpanGuard {
    name: Cow<'static, str>,
    track: u32,
    start_us: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = wall_now_us();
        push(TraceEvent {
            name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
            track: self.track,
            clock: Clock::Wall,
            ts_us: self.start_us,
            dur_us: Some(end.saturating_sub(self.start_us)),
        });
    }
}

/// Opens a wall-clock span on the calling thread's worker track. Returns
/// `None` (and records nothing) when tracing is off.
pub fn wall_span(name: impl Into<Cow<'static, str>>) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    Some(SpanGuard {
        name: name.into(),
        track: worker(),
        start_us: wall_now_us(),
    })
}

/// Records an instant wall-clock event on the calling thread's worker
/// track.
pub fn wall_event(name: impl Into<Cow<'static, str>>) {
    if !enabled() {
        return;
    }
    push(TraceEvent {
        name: name.into(),
        track: worker(),
        clock: Clock::Wall,
        ts_us: wall_now_us(),
        dur_us: None,
    });
}

/// Records a complete virtual-time span on a sampled-run track. The
/// caller supplies simulated-time microsecond bounds.
pub fn virtual_span(track: u32, name: impl Into<Cow<'static, str>>, start_us: u64, end_us: u64) {
    if !enabled() {
        return;
    }
    push(TraceEvent {
        name: name.into(),
        track,
        clock: Clock::Virtual,
        ts_us: start_us,
        dur_us: Some(end_us.saturating_sub(start_us)),
    });
}

/// Records an instant virtual-time event on a sampled-run track.
pub fn virtual_event(track: u32, name: impl Into<Cow<'static, str>>, ts_us: u64) {
    if !enabled() {
        return;
    }
    push(TraceEvent {
        name: name.into(),
        track,
        clock: Clock::Virtual,
        ts_us,
        dur_us: None,
    });
}

/// Drains every buffered event: the calling thread's local buffer plus
/// everything already flushed by exited threads. Buffers of *other live*
/// threads are not visible — export after workers have joined.
pub fn take_events() -> Vec<TraceEvent> {
    LOCAL.with(|l| {
        let mut local = l.events.borrow_mut();
        if !local.is_empty() {
            sink().lock().unwrap().append(&mut local);
        }
    });
    let mut out = Vec::new();
    std::mem::swap(&mut out, &mut sink().lock().unwrap());
    TOTAL_BUFFERED.store(0, Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_free_and_empty() {
        let _g = crate::test_lock().lock().unwrap();
        disable();
        assert!(wall_span("noop").is_none());
        wall_event("noop");
        virtual_span(0, "noop", 0, 5);
        assert!(claim_virtual_track().is_none());
    }

    #[test]
    fn spans_and_events_round_trip_through_the_buffers() {
        let _g = crate::test_lock().lock().unwrap();
        enable(2);
        let _ = take_events(); // isolate from other tests in this binary
        set_worker(3);
        {
            let _outer = wall_span("outer");
            wall_event("mark");
        }
        let t = claim_virtual_track().unwrap();
        virtual_span(t, "sim.run", 0, 1000);
        virtual_event(t, "timer", 250);
        assert!(claim_virtual_track().is_some());
        assert!(claim_virtual_track().is_none(), "budget of 2 exhausted");
        let events = take_events();
        disable();
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(outer.clock, Clock::Wall);
        assert_eq!(outer.track, 3);
        assert!(outer.dur_us.is_some());
        let mark = events.iter().find(|e| e.name == "mark").unwrap();
        assert_eq!(mark.dur_us, None);
        let run = events.iter().find(|e| e.name == "sim.run").unwrap();
        assert_eq!(run.clock, Clock::Virtual);
        assert_eq!((run.ts_us, run.dur_us), (0, Some(1000)));
        let timer = events.iter().find(|e| e.name == "timer").unwrap();
        assert_eq!(timer.track, run.track);
        assert_eq!(timer.ts_us, 250);
    }
}

//! Property-based tests for the flight-recorder ring: bounded memory
//! under arbitrary event floods, FIFO eviction order, and snapshots
//! that stay internally consistent while writers are running.

use std::sync::Arc;

use lazyeye_obs::recorder::Recorder;
use lazyeye_obs::Clock;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// However many events flood in, the ring holds at most `capacity`
    /// of them and they are exactly the most recent ones, in order.
    #[test]
    fn flood_is_bounded_and_fifo(
        capacity in 1usize..64,
        flood in 0usize..512,
    ) {
        let r = Recorder::new(capacity);
        for i in 0..flood {
            r.record(Clock::Virtual, "prop.flood", format!("{i}"));
        }
        let snap = r.snapshot();
        prop_assert_eq!(snap.len(), flood.min(capacity), "bounded");
        prop_assert_eq!(r.written(), flood as u64);
        // FIFO eviction: the survivors are the last min(flood, cap)
        // writes, in sequence order.
        let first_kept = flood.saturating_sub(capacity);
        for (offset, event) in snap.iter().enumerate() {
            let expected = first_kept + offset;
            prop_assert_eq!(event.seq, expected as u64);
            let want = format!("{expected}");
            prop_assert_eq!(event.detail.as_str(), want.as_str());
        }
    }

    /// Interleaving floods with clears never violates the bound, and
    /// sequence numbers stay strictly monotonic across clears.
    #[test]
    fn clears_interleaved_with_floods_stay_bounded(
        capacity in 1usize..32,
        bursts in proptest::collection::vec((0usize..64, any::<bool>()), 0..8),
    ) {
        let r = Recorder::new(capacity);
        let mut expected_written = 0u64;
        for (burst, clear) in bursts {
            for _ in 0..burst {
                let seq = r.record(Clock::Wall, "prop.burst", "");
                prop_assert_eq!(seq, expected_written, "sequence is a total order");
                expected_written += 1;
            }
            prop_assert!(r.snapshot().len() <= capacity);
            if clear {
                r.clear();
                prop_assert!(r.snapshot().is_empty());
            }
        }
        prop_assert_eq!(r.written(), expected_written);
    }
}

/// A snapshot taken while writer threads are mid-flood is internally
/// consistent: every event is complete (name/detail intact), sequence
/// numbers are strictly increasing and unique, and the size bound
/// holds. The snapshot may legitimately contain gaps where a slot was
/// overwritten between reads — consistency, not atomicity, is the
/// contract.
#[test]
fn concurrent_snapshot_is_internally_consistent() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 2000;
    let r = Arc::new(Recorder::new(64));
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let r = Arc::clone(&r);
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    r.record(Clock::Wall, "prop.concurrent", format!("w{w}i{i}"));
                }
            });
        }
        for _ in 0..50 {
            let snap = r.snapshot();
            assert!(snap.len() <= r.capacity(), "bounded during writes");
            for pair in snap.windows(2) {
                assert!(
                    pair[0].seq < pair[1].seq,
                    "sequence numbers sorted and unique"
                );
            }
            for event in &snap {
                assert_eq!(event.name, "prop.concurrent");
                assert!(
                    event.detail.starts_with('w') && event.detail.contains('i'),
                    "event payload is complete, got {:?}",
                    event.detail
                );
            }
        }
    });
    assert_eq!(r.written(), (WRITERS * PER_WRITER) as u64);
    let final_snap = r.snapshot();
    assert_eq!(final_snap.len(), r.capacity());
    assert_eq!(
        final_snap.last().unwrap().seq,
        (WRITERS * PER_WRITER - 1) as u64,
        "last write is retained once writers are done"
    );
}

//! # lazyeye-exec — the shared deterministic fan-out layer
//!
//! Both measurement engines — the local-testbed campaign
//! (`lazyeye-campaign`) and the population-scale web-tool fleet
//! (`lazyeye-fleet`) — need the same thing: execute `N` independent,
//! index-addressed jobs across worker threads and get the outputs back
//! **in index order**, so everything derived from them is byte-identical
//! whatever the worker count. This crate is that extracted common core:
//!
//! - [`execute_indexed`] / [`execute_indexed_with`] — a work-stealing
//!   thread pool over jobs `0..total`. Jobs are striped across per-worker
//!   deques up front; a worker drains its own deque from the front and,
//!   when empty, steals the back half of the longest other deque. Results
//!   are keyed by job index, so the output vector is independent of
//!   scheduling.
//! - [`Shard`] — the `--shard i/n` arithmetic (`index % n == i`) both
//!   CLIs use for multi-machine splits, with its JSON mapping.
//!
//! The engines keep their domain glue (run specs, checkpoints, reports);
//! only the scheduling-neutral machinery lives here.

//! **Arena reuse.** Worker threads live for the whole `execute_indexed`
//! call, and the simulator keeps a per-thread `lazyeye_sim::SimPool`:
//! the first run on a worker allocates a simulation arena (task slab,
//! timer wheel, queues), and every subsequent run on that worker recycles
//! it via `Sim::reset` — one allocation storm per *worker* instead of one
//! per *run*. This file only needs to keep threads alive across jobs
//! (which `std::thread::scope` does); the pooling itself lives in
//! `lazyeye-sim` and the testbed topologies.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Registry handles for the executor's scheduling metrics. Everything
/// here is wall-clock: steal outcomes and job latencies depend on host
/// scheduling and worker count, so none of it may feed report bytes.
struct ExecMetrics {
    steal_attempts: &'static lazyeye_obs::Counter,
    steal_hits: &'static lazyeye_obs::Counter,
    jobs_completed: &'static lazyeye_obs::Counter,
    worker_busy_us: &'static lazyeye_obs::Counter,
    job_wall_us: &'static lazyeye_obs::Histogram,
    steal_queue_depth: &'static lazyeye_obs::Histogram,
}

fn metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        use lazyeye_obs::Clock::Wall;
        ExecMetrics {
            steal_attempts: lazyeye_obs::counter("exec.steal_attempts", Wall),
            steal_hits: lazyeye_obs::counter("exec.steal_hits", Wall),
            jobs_completed: lazyeye_obs::counter("exec.jobs_completed", Wall),
            worker_busy_us: lazyeye_obs::counter("exec.worker_busy_us", Wall),
            job_wall_us: lazyeye_obs::histogram("exec.job_wall_us", Wall),
            steal_queue_depth: lazyeye_obs::histogram("exec.steal_queue_depth", Wall),
        }
    })
}

/// Runs one job with per-item progress attribution and wall-clock
/// scheduling metrics (busy time, latency histogram, completion count).
fn timed<O>(worker: u32, run: impl FnOnce() -> O) -> O {
    lazyeye_obs::progress::item_start(worker);
    let _job_span = lazyeye_obs::trace::wall_span("exec.job");
    let started = Instant::now();
    let out = run();
    let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let m = metrics();
    m.worker_busy_us.add(elapsed_us);
    m.job_wall_us.record(elapsed_us);
    m.jobs_completed.inc();
    lazyeye_obs::progress::item_done(worker);
    out
}

/// A `--shard i/n` restriction: this process executes only jobs whose
/// `job_index % count == shard.index`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Shard position, `0 ≤ index < count`.
    pub index: u64,
    /// Total shard count.
    pub count: u64,
}

lazyeye_json::impl_json_struct!(Shard { index, count });

impl Shard {
    /// Parses the CLI form `i/n` (e.g. `"0/4"`).
    pub fn parse(s: &str) -> Result<Shard, String> {
        let Some((i, n)) = s.split_once('/') else {
            return Err(format!("shard {s:?}: expected i/n (e.g. 0/4)"));
        };
        let (Ok(index), Ok(count)) = (i.parse::<u64>(), n.parse::<u64>()) else {
            return Err(format!("shard {s:?}: expected two integers i/n"));
        };
        if count == 0 || index >= count {
            return Err(format!("shard {s:?}: need 0 <= i < n"));
        }
        Ok(Shard { index, count })
    }

    /// Whether this shard owns job `index`.
    pub fn owns(&self, index: u64) -> bool {
        index % self.count == self.index
    }
}

/// A worker's job deque plus a lock-free length hint, so victim selection
/// reads one atomic per queue instead of taking every lock per steal
/// attempt (the old scan serialized all workers through all locks exactly
/// when the pool was busiest — the end-of-campaign tail).
struct WorkQueue {
    jobs: Mutex<VecDeque<usize>>,
    /// Advisory length, maintained under `jobs`' lock; may lag reads.
    len: AtomicUsize,
}

impl WorkQueue {
    fn new(jobs: VecDeque<usize>) -> WorkQueue {
        let len = AtomicUsize::new(jobs.len());
        WorkQueue {
            jobs: Mutex::new(jobs),
            len,
        }
    }

    fn pop_front(&self) -> Option<usize> {
        let mut q = self.jobs.lock().ok()?;
        let job = q.pop_front();
        self.len.store(q.len(), Ordering::Relaxed);
        job
    }
}

/// Steals the back half of the longest foreign deque into `mine`,
/// returning one job to run immediately. Returns `None` once every
/// foreign length hint reads zero — a worker may then retire while a
/// lagging owner still holds jobs, but owners always drain their own
/// deque before retiring, so every job still runs exactly once. A victim
/// drained between the snapshot and the lock triggers a re-scan.
fn steal(queues: &[WorkQueue], me: usize) -> Option<usize> {
    let m = metrics();
    m.steal_attempts.inc();
    loop {
        // Pick the victim with the most remaining work (an atomic
        // snapshot; rechecked under the victim's lock).
        let (victim, snapshot_len) = queues
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != me)
            .map(|(i, q)| (i, q.len.load(Ordering::Relaxed)))
            .max_by_key(|&(_, len)| len)?;
        m.steal_queue_depth.record(snapshot_len as u64);
        if snapshot_len == 0 {
            return None;
        }
        let mut stolen = {
            let mut v = queues[victim].jobs.lock().ok()?;
            if v.is_empty() {
                // Lost the race to the victim's owner; look again.
                queues[victim].len.store(0, Ordering::Relaxed);
                continue;
            }
            let keep = v.len() / 2;
            let stolen = v.split_off(keep);
            queues[victim].len.store(v.len(), Ordering::Relaxed);
            stolen
        };
        let job = stolen.pop_front();
        if !stolen.is_empty() {
            if let Ok(mut mine) = queues[me].jobs.lock() {
                mine.extend(stolen);
                queues[me].len.store(mine.len(), Ordering::Relaxed);
            }
        }
        if job.is_some() {
            m.steal_hits.inc();
        }
        return job;
    }
}

/// Executes jobs `0..total` with `run(index)`, fanning out over `jobs`
/// worker threads, and returns the outputs **in index order**.
///
/// `progress` is invoked on the calling thread after every finished job
/// with `(finished_so_far, total)` — wire it to a progress bar or ETA
/// display; it has no effect on the results.
pub fn execute_indexed<O: Send>(
    total: usize,
    jobs: usize,
    run: impl Fn(usize) -> O + Sync,
    progress: impl FnMut(usize, usize),
) -> Vec<O> {
    execute_indexed_with(total, jobs, run, progress, |_, _| {})
}

/// [`execute_indexed`] with a per-result hook: `on_result(index, output)`
/// fires on the calling thread as each job finishes. Completion order is
/// scheduling-dependent — the hook is for side channels (checkpoints,
/// logs), never for anything that feeds a deterministic report.
pub fn execute_indexed_with<O: Send>(
    total: usize,
    jobs: usize,
    run: impl Fn(usize) -> O + Sync,
    mut progress: impl FnMut(usize, usize),
    mut on_result: impl FnMut(usize, &O),
) -> Vec<O> {
    let jobs = jobs.max(1).min(total.max(1));
    if jobs == 1 {
        // The caller thread IS worker 0 for the duration of the loop, so
        // spans and progress annotations attribute to its track.
        let prev_worker = lazyeye_obs::trace::worker();
        lazyeye_obs::trace::set_worker(0);
        let out = (0..total)
            .map(|index| {
                let out = timed(0, || run(index));
                on_result(index, &out);
                progress(index + 1, total);
                out
            })
            .collect();
        lazyeye_obs::trace::set_worker(prev_worker);
        return out;
    }

    // Stripe jobs across workers so early indices start immediately on
    // every thread; stealing rebalances the tail.
    let queues: Vec<WorkQueue> = (0..jobs)
        .map(|w| WorkQueue::new((w..total).step_by(jobs).collect()))
        .collect();

    let mut results: Vec<Option<O>> = (0..total).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    std::thread::scope(|scope| {
        for me in 0..jobs {
            let tx = tx.clone();
            let queues = &queues;
            let run = &run;
            scope.spawn(move || {
                let me32 = u32::try_from(me).unwrap_or(u32::MAX - 1);
                lazyeye_obs::trace::set_worker(me32);
                let _worker_span = lazyeye_obs::trace::wall_span(format!("exec.worker-{me}"));
                loop {
                    let job = {
                        match queues[me].pop_front() {
                            Some(j) => j,
                            None => match steal(queues, me) {
                                Some(j) => j,
                                None => break,
                            },
                        }
                    };
                    let out = timed(me32, || run(job));
                    if tx.send((job, out)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut done = 0;
        while let Ok((idx, out)) = rx.recv() {
            on_result(idx, &out);
            results[idx] = Some(out);
            done += 1;
            progress(done, total);
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} produced no output")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_come_back_in_index_order() {
        for jobs in [1, 2, 3, 8, 64] {
            let out = execute_indexed(37, jobs, |i| i * i, |_, _| {});
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>(), "{jobs}");
        }
    }

    #[test]
    fn progress_reaches_total_exactly_once_per_job() {
        let mut last = 0;
        let mut calls = 0;
        let _ = execute_indexed(
            11,
            3,
            |i| i,
            |done, total| {
                assert!(done <= total);
                last = done;
                calls += 1;
            },
        );
        assert_eq!(last, 11);
        assert_eq!(calls, 11);
    }

    #[test]
    fn zero_jobs_and_zero_total() {
        let out: Vec<usize> = execute_indexed(0, 8, |i| i, |_, _| panic!("no progress"));
        assert!(out.is_empty());
        // jobs = 0 clamps to 1.
        let out = execute_indexed(3, 0, |i| i + 1, |_, _| {});
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn on_result_fires_once_per_job_with_matching_output() {
        let mut seen = vec![0u32; 23];
        let out = execute_indexed_with(
            23,
            4,
            |i| i * 10,
            |_, _| {},
            |idx, o| {
                seen[idx] += 1;
                assert_eq!(*o, idx * 10);
            },
        );
        assert_eq!(out.len(), 23);
        assert!(seen.iter().all(|&c| c == 1), "hook fired {seen:?}");
    }

    #[test]
    fn heavy_oversubscription_still_runs_everything() {
        // total barely above jobs forces steal races; total below jobs
        // clamps the pool.
        for (total, jobs) in [(9, 8), (9, 9), (3, 64), (100, 7)] {
            let out = execute_indexed(total, jobs, |i| i, |_, _| {});
            assert_eq!(out, (0..total).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shard_parsing_and_ownership() {
        let s = Shard::parse("2/4").unwrap();
        assert!(s.owns(2) && s.owns(6));
        assert!(!s.owns(0) && !s.owns(3));
        assert!(Shard::parse("4/4").is_err());
        assert!(Shard::parse("0/0").is_err());
        assert!(Shard::parse("1").is_err());
        assert!(Shard::parse("a/b").is_err());
    }

    #[test]
    fn shard_json_roundtrip() {
        use lazyeye_json::{FromJson, ToJson};
        let s = Shard { index: 1, count: 3 };
        let back = Shard::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }
}

//! TCP state-machine behaviours beyond the basic handshake: backlog
//! pressure, listener lifecycle, reset propagation, capture contents.

use lazyeye_net::{ClosedPortPolicy, ConnectOpts, Direction, Family, NetError, Network, Proto};
use lazyeye_sim::{spawn, Sim};
use std::net::SocketAddr;
use std::time::Duration;

fn sa(ip: &str, port: u16) -> SocketAddr {
    SocketAddr::new(ip.parse().unwrap(), port)
}

#[test]
fn backlog_overflow_drops_syns_until_accepted() {
    let mut sim = Sim::new(1);
    let net = Network::new();
    let server = net.host("s").v4("192.0.2.1").build();
    let client = net.host("c").v4("192.0.2.9").build();
    let connected = sim.block_on(async move {
        // Backlog of 2, nobody accepting at first.
        let listener = server.tcp_listen(sa("192.0.2.1", 80), 2).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = client.clone();
            handles.push(spawn(async move {
                c.tcp_connect_with(
                    sa("192.0.2.1", 80),
                    ConnectOpts {
                        syn_rto: Duration::from_millis(200),
                        syn_retries: 4,
                    },
                )
                .await
            }));
        }
        // Start accepting after 300 ms: queued conns drain, retransmitted
        // SYNs of the overflowed ones then get in.
        lazyeye_sim::sleep(Duration::from_millis(300)).await;
        spawn(async move {
            loop {
                let Ok((s, _)) = listener.accept().await else {
                    break;
                };
                std::mem::forget(s);
            }
        });
        let mut ok = 0;
        for h in handles {
            if matches!(h.await, Ok(Ok(_))) {
                ok += 1;
            }
        }
        ok
    });
    assert_eq!(connected, 4, "retransmission recovers overflowed SYNs");
}

#[test]
fn accept_after_listener_close_errors() {
    let mut sim = Sim::new(2);
    let net = Network::new();
    let server = net.host("s").v4("192.0.2.1").build();
    sim.block_on(async move {
        let listener = server.tcp_listen_any(80).unwrap();
        let handle = spawn(async move { listener.accept().await });
        lazyeye_sim::sleep(Duration::from_millis(1)).await;
        // The listener lives inside the task; abort drops it at the
        // task's next poll, so yield once for the executor to process it.
        handle.abort();
        lazyeye_sim::yield_now().await;
        // Port is free again.
        assert!(server.tcp_listen_any(80).is_ok());
    });
}

#[test]
fn rst_policy_vs_drop_policy_timing() {
    // The two failure modes HE distinguishes: refusal is instant, a
    // blackhole costs the full retransmission schedule.
    for (policy, expect_fast) in [
        (ClosedPortPolicy::Rst, true),
        (ClosedPortPolicy::Drop, false),
    ] {
        let mut sim = Sim::new(3);
        let net = Network::new();
        let server = net.host("s").v4("192.0.2.1").build();
        let client = net.host("c").v4("192.0.2.9").build();
        server.set_closed_port_policy(policy);
        let (err, ms) = sim.block_on(async move {
            let t0 = lazyeye_sim::now();
            let err = client
                .tcp_connect_with(
                    sa("192.0.2.1", 81),
                    ConnectOpts {
                        syn_rto: Duration::from_millis(100),
                        syn_retries: 1,
                    },
                )
                .await
                .unwrap_err();
            (err, (lazyeye_sim::now() - t0).as_millis())
        });
        if expect_fast {
            assert_eq!(err, NetError::ConnectionRefused);
            assert!(ms < 5, "RST is immediate, took {ms} ms");
        } else {
            assert_eq!(err, NetError::TimedOut);
            assert_eq!(ms, 300, "100 + 200 ms RTOs");
        }
    }
}

#[test]
fn reset_surfaces_on_reader() {
    let mut sim = Sim::new(4);
    let net = Network::new();
    let server = net.host("s").v4("192.0.2.1").build();
    let client = net.host("c").v4("192.0.2.9").build();
    let err = sim.block_on(async move {
        let listener = server.tcp_listen_any(80).unwrap();
        let server2 = server.clone();
        spawn(async move {
            let (s, peer) = listener.accept().await.unwrap();
            // Tear the connection down with a raw RST via policy: close
            // the stream, then hit the peer with a RST by sending to a
            // now-closed port mapping. Simplest: drop with close + send
            // explicit RST through a fresh connection attempt is not
            // possible from the public API, so emulate a peer reset by
            // closing and letting FIN propagate instead.
            let _ = (peer, server2);
            s.close();
        });
        let s = client.tcp_connect(sa("192.0.2.1", 80)).await.unwrap();
        // FIN: read returns clean EOF (None), not an error.
        s.read(64).await
    });
    assert!(matches!(err, Ok(None)), "clean close = EOF, got {err:?}");
}

#[test]
fn capture_sees_both_directions_with_payload_sizes() {
    let mut sim = Sim::new(5);
    let net = Network::new();
    let server = net.host("s").v4("192.0.2.1").build();
    let client = net.host("c").v4("192.0.2.9").build();
    sim.block_on({
        let server = server.clone();
        let client = client.clone();
        async move {
            let listener = server.tcp_listen_any(80).unwrap();
            spawn(async move {
                let (s, _) = listener.accept().await.unwrap();
                let _ = s.read(1024).await;
                s.write(&[0u8; 3000]).unwrap(); // 3 segments at MSS 1400
                s.close();
            });
            let s = client.tcp_connect(sa("192.0.2.1", 80)).await.unwrap();
            s.write(b"req").unwrap();
            let _ = s.read_exact(3000).await.unwrap();
        }
    });
    let cap = client.capture();
    let tx_syn = cap
        .records()
        .iter()
        .filter(|r| r.dir == Direction::Tx && r.kind == "SYN")
        .count();
    assert_eq!(tx_syn, 1);
    let rx_data: usize = cap
        .records()
        .iter()
        .filter(|r| r.dir == Direction::Rx && r.kind == "DATA")
        .count();
    assert_eq!(rx_data, 3, "3000 bytes = 1400+1400+200 segments");
    assert!(cap.count_family(Direction::Tx, Family::V4) > 0);
    assert!(cap.records().iter().all(|r| r.proto == Proto::Tcp));
}

#[test]
fn ephemeral_ports_do_not_collide_across_many_conns() {
    let mut sim = Sim::new(6);
    let net = Network::new();
    let server = net.host("s").v4("192.0.2.1").build();
    let client = net.host("c").v4("192.0.2.9").build();
    let distinct = sim.block_on(async move {
        let listener = server.tcp_listen_any(80).unwrap();
        spawn(async move {
            loop {
                let Ok((s, _)) = listener.accept().await else {
                    break;
                };
                std::mem::forget(s);
            }
        });
        let mut ports = std::collections::HashSet::new();
        let mut streams = Vec::new();
        for _ in 0..200 {
            let s = client.tcp_connect(sa("192.0.2.1", 80)).await.unwrap();
            ports.insert(s.local_addr().port());
            streams.push(s); // keep alive so ports stay used
        }
        ports.len()
    });
    assert_eq!(distinct, 200);
}

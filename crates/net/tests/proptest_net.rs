//! Property-based tests of the network simulator's delivery guarantees.

use bytes::Bytes;
use lazyeye_net::{IpPrefix, Netem, NetemRule, Network};
use lazyeye_sim::{spawn, Sim};
use proptest::prelude::*;
use std::net::{IpAddr, SocketAddr};
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// UDP under arbitrary (bounded) delay+jitter never reorders a flow
    /// when reordering is disabled, and never loses packets when loss is
    /// zero.
    #[test]
    fn flow_order_is_fifo_under_jitter(
        delay_ms in 0u64..200,
        jitter_ms in 0u64..100,
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let net = Network::new();
        let a = net.host("a").v4("192.0.2.1").build();
        let b = net.host("b").v4("192.0.2.2").build();
        b.add_ingress(NetemRule::all(
            Netem::delay_ms(delay_ms).with_jitter(Duration::from_millis(jitter_ms)),
        ));
        let got = sim.block_on(async move {
            let rx_sock = b.udp_bind_any(9).unwrap();
            let tx_sock = a.udp_bind_any(0).unwrap();
            let dst = SocketAddr::new("192.0.2.2".parse::<IpAddr>().unwrap(), 9);
            for i in 0..n {
                tx_sock.send_to(Bytes::from(vec![i as u8]), dst).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..n {
                let (p, _) = rx_sock.recv_from().await.unwrap();
                got.push(p[0] as usize);
            }
            got
        });
        prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    /// The one-way delay is always >= the configured netem delay minus
    /// jitter, and <= delay + jitter + base.
    #[test]
    fn delay_bounds_hold(
        delay_ms in 1u64..500,
        jitter_ms in 0u64..50,
        seed in any::<u64>(),
    ) {
        prop_assume!(jitter_ms < delay_ms);
        let mut sim = Sim::new(seed);
        let net = Network::new();
        let a = net.host("a").v4("192.0.2.1").build();
        let b = net.host("b").v4("192.0.2.2").build();
        b.add_ingress(NetemRule::all(
            Netem::delay_ms(delay_ms).with_jitter(Duration::from_millis(jitter_ms)),
        ));
        let elapsed_us = sim.block_on(async move {
            let rx = b.udp_bind_any(9).unwrap();
            let tx = a.udp_bind_any(0).unwrap();
            let t0 = lazyeye_sim::now();
            tx.send_to(
                Bytes::from_static(b"x"),
                SocketAddr::new("192.0.2.2".parse::<IpAddr>().unwrap(), 9),
            )
            .unwrap();
            let _ = rx.recv_from().await.unwrap();
            (lazyeye_sim::now() - t0).as_micros()
        });
        let lo = (delay_ms - jitter_ms) * 1000;
        let hi = (delay_ms + jitter_ms) * 1000 + 300; // +base delay
        prop_assert!((lo..=hi).contains(&(elapsed_us as u64)),
            "elapsed {elapsed_us} us outside [{lo}, {hi}]");
    }

    /// Prefix matching is consistent: an address always matches its own
    /// host prefix and the zero prefix of its family.
    #[test]
    fn prefix_reflexivity(v4 in any::<u32>(), len in 0u8..=32) {
        let addr: IpAddr = IpAddr::V4(std::net::Ipv4Addr::from(v4));
        prop_assert!(IpPrefix::host(addr).contains(addr));
        prop_assert!(IpPrefix::new(addr, 0).contains(addr));
        // Any prefix of the address derived from itself matches.
        prop_assert!(IpPrefix::new(addr, len).contains(addr));
    }

    /// TCP handshakes succeed under any loss rate < 1 given enough
    /// retries (reliability through retransmission).
    #[test]
    fn tcp_connect_survives_loss(loss_pct in 0u32..70, seed in any::<u64>()) {
        let mut sim = Sim::new(seed);
        let net = Network::new();
        let server = net.host("s").v4("192.0.2.1").build();
        let client = net.host("c").v4("192.0.2.9").build();
        server.add_ingress(NetemRule::all(Netem::loss(f64::from(loss_pct) / 100.0)));
        server.add_egress(NetemRule::all(Netem::loss(f64::from(loss_pct) / 100.0)));
        let ok = sim.block_on(async move {
            let l = server.tcp_listen_any(80).unwrap();
            spawn(async move {
                loop {
                    let Ok((s, _)) = l.accept().await else { break };
                    std::mem::forget(s);
                }
            });
            client
                .tcp_connect_with(
                    SocketAddr::new("192.0.2.1".parse::<IpAddr>().unwrap(), 80),
                    lazyeye_net::ConnectOpts {
                        syn_rto: Duration::from_millis(100),
                        syn_retries: 40,
                    },
                )
                .await
                .is_ok()
        });
        prop_assert!(ok, "handshake must eventually succeed at {loss_pct}% loss");
    }

    /// Stream data arrives intact and in order regardless of write
    /// chunking (MSS segmentation is invisible to the application).
    #[test]
    fn tcp_stream_integrity(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..4000), 1..6),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(seed);
        let net = Network::new();
        let server = net.host("s").v4("192.0.2.1").build();
        let client = net.host("c").v4("192.0.2.9").build();
        let expected: Vec<u8> = chunks.concat();
        let expected2 = expected.clone();
        let expected_len = expected.len();
        let got = sim.block_on(async move {
            let l = server.tcp_listen_any(80).unwrap();
            spawn(async move {
                let (s, _) = l.accept().await.unwrap();
                let data = s.read_exact(expected2.len()).await.unwrap_or_default();
                s.write(&data).unwrap();
                s.close();
            });
            let s = client
                .tcp_connect(SocketAddr::new("192.0.2.1".parse::<IpAddr>().unwrap(), 80))
                .await
                .unwrap();
            for c in &chunks {
                s.write(c).unwrap();
            }
            s.read_exact(expected_len).await.unwrap().to_vec()
        });
        prop_assert_eq!(got, expected);
    }
}

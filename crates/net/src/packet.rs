//! Packets as the simulator models them, plus capture records.

use std::net::SocketAddr;

use bytes::Bytes;
use lazyeye_sim::SimTime;

use crate::addr::Family;

/// Transport protocol of a packet.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Proto {
    /// TCP segments (handshake + stream data).
    Tcp,
    /// UDP datagrams (DNS, QUIC-like).
    Udp,
}

/// What a packet *is* — the simulator models TCP at the granularity HE
/// measurements need (handshake + ordered data), not full sequence-number
/// semantics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// TCP connection request.
    Syn,
    /// TCP connection accept.
    SynAck,
    /// Final handshake ACK.
    Ack,
    /// TCP reset (connection refused / teardown).
    Rst,
    /// Ordered stream payload.
    Data(Bytes),
    /// End of stream.
    Fin,
    /// UDP datagram payload.
    Datagram(Bytes),
}

impl PacketKind {
    /// Short label for debugging and capture dumps.
    pub fn label(&self) -> &'static str {
        match self {
            PacketKind::Syn => "SYN",
            PacketKind::SynAck => "SYN-ACK",
            PacketKind::Ack => "ACK",
            PacketKind::Rst => "RST",
            PacketKind::Data(_) => "DATA",
            PacketKind::Fin => "FIN",
            PacketKind::Datagram(_) => "UDP",
        }
    }

    /// Payload length contribution (headers are not modelled).
    pub fn payload_len(&self) -> usize {
        match self {
            PacketKind::Data(b) | PacketKind::Datagram(b) => b.len(),
            _ => 0,
        }
    }

    /// Whether this is a TCP handshake packet (the packets that netem loss
    /// applies to — see crate docs for the reliability model).
    pub fn is_handshake(&self) -> bool {
        matches!(
            self,
            PacketKind::Syn | PacketKind::SynAck | PacketKind::Ack | PacketKind::Rst
        )
    }
}

/// A packet in flight.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Source address and port.
    pub src: SocketAddr,
    /// Destination address and port.
    pub dst: SocketAddr,
    /// Transport protocol.
    pub proto: Proto,
    /// Packet role / payload.
    pub kind: PacketKind,
}

impl Packet {
    /// Address family (derived from the destination; src/dst always agree).
    pub fn family(&self) -> Family {
        Family::of(self.dst.ip())
    }
}

/// Direction of a captured packet relative to the capturing host.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Transmitted by the capturing host.
    Tx,
    /// Received by the capturing host.
    Rx,
}

/// One line of a host's packet capture — the raw material every analyzer in
/// the testbed works from (the paper's tcpdump equivalent).
#[derive(Clone, Debug)]
pub struct PacketRecord {
    /// Global monotone sequence number (tie-breaker for same-instant events).
    pub seq: u64,
    /// Capture timestamp (exact, not jittered).
    pub time: SimTime,
    /// Tx or Rx relative to the capturing host.
    pub dir: Direction,
    /// Source address and port.
    pub src: SocketAddr,
    /// Destination address and port.
    pub dst: SocketAddr,
    /// Transport protocol.
    pub proto: Proto,
    /// Kind label ("SYN", "UDP", ...).
    pub kind: &'static str,
    /// Payload bytes for UDP datagrams (lets analyzers parse DNS); empty
    /// for TCP control packets.
    pub payload: Bytes,
}

impl PacketRecord {
    /// Address family of the packet.
    pub fn family(&self) -> Family {
        Family::of(self.dst.ip())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{v4, v6};

    #[test]
    fn kind_labels() {
        assert_eq!(PacketKind::Syn.label(), "SYN");
        assert_eq!(PacketKind::Datagram(Bytes::new()).label(), "UDP");
    }

    #[test]
    fn handshake_classification() {
        assert!(PacketKind::Syn.is_handshake());
        assert!(PacketKind::Rst.is_handshake());
        assert!(!PacketKind::Data(Bytes::from_static(b"x")).is_handshake());
        assert!(!PacketKind::Datagram(Bytes::new()).is_handshake());
    }

    #[test]
    fn packet_family_follows_dst() {
        let p = Packet {
            src: SocketAddr::new(v4("192.0.2.1"), 1000),
            dst: SocketAddr::new(v4("192.0.2.2"), 80),
            proto: Proto::Tcp,
            kind: PacketKind::Syn,
        };
        assert_eq!(p.family(), Family::V4);
        let p6 = Packet {
            src: SocketAddr::new(v6("2001:db8::1"), 1000),
            dst: SocketAddr::new(v6("2001:db8::2"), 80),
            proto: Proto::Udp,
            kind: PacketKind::Datagram(Bytes::new()),
        };
        assert_eq!(p6.family(), Family::V6);
    }

    #[test]
    fn payload_len() {
        assert_eq!(
            PacketKind::Data(Bytes::from_static(b"abcd")).payload_len(),
            4
        );
        assert_eq!(PacketKind::Syn.payload_len(), 0);
    }
}

//! Capture snapshots and the query helpers analyzers build on.
//!
//! The paper determines the CAD "by measuring the time between the first
//! IPv6 packet and the first IPv4 packet observed in the client's packet
//! capture" (§4.3(i)). [`Capture`] provides exactly those primitives.

use std::time::Duration;

use lazyeye_sim::SimTime;

use crate::addr::Family;
use crate::packet::{Direction, PacketRecord, Proto};

/// An immutable snapshot of one host's packet capture.
#[derive(Clone, Debug, Default)]
pub struct Capture {
    records: Vec<PacketRecord>,
}

impl Capture {
    pub(crate) fn new(records: Vec<PacketRecord>) -> Capture {
        Capture { records }
    }

    /// All records in capture order.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records filtered by an arbitrary predicate.
    pub fn filter<'a>(
        &'a self,
        pred: impl Fn(&PacketRecord) -> bool + 'a,
    ) -> impl Iterator<Item = &'a PacketRecord> + 'a {
        self.records.iter().filter(move |r| pred(r))
    }

    /// Timestamp of the first transmitted TCP SYN of the given family —
    /// the raw observable behind the CAD analyzer.
    pub fn first_syn(&self, family: Family) -> Option<SimTime> {
        self.records
            .iter()
            .find(|r| {
                r.dir == Direction::Tx
                    && r.proto == Proto::Tcp
                    && r.kind == "SYN"
                    && r.family() == family
            })
            .map(|r| r.time)
    }

    /// Every transmitted SYN of a family, in order (shows retransmissions
    /// and per-address attempts).
    pub fn syn_times(&self, family: Family) -> Vec<SimTime> {
        self.records
            .iter()
            .filter(|r| {
                r.dir == Direction::Tx
                    && r.proto == Proto::Tcp
                    && r.kind == "SYN"
                    && r.family() == family
            })
            .map(|r| r.time)
            .collect()
    }

    /// Transmitted SYNs to *distinct* destination addresses, in first-seen
    /// order — the paper's per-address connection attempts (Figure 5).
    pub fn distinct_syn_dsts(&self) -> Vec<(std::net::IpAddr, SimTime)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in &self.records {
            if r.dir == Direction::Tx && r.proto == Proto::Tcp && r.kind == "SYN" {
                let ip = r.dst.ip();
                if seen.insert(ip) {
                    out.push((ip, r.time));
                }
            }
        }
        out
    }

    /// The paper's CAD estimator: `first IPv4 SYN − first IPv6 SYN`.
    /// `None` when either family never attempted (no fallback observed).
    pub fn connection_attempt_delay(&self) -> Option<Duration> {
        let v6 = self.first_syn(Family::V6)?;
        let v4 = self.first_syn(Family::V4)?;
        v4.checked_duration_since(v6)
    }

    /// Transmitted UDP payloads with timestamps (for DNS analysis).
    pub fn udp_tx(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records
            .iter()
            .filter(|r| r.dir == Direction::Tx && r.proto == Proto::Udp)
    }

    /// Received UDP payloads with timestamps.
    pub fn udp_rx(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records
            .iter()
            .filter(|r| r.dir == Direction::Rx && r.proto == Proto::Udp)
    }

    /// Counts packets of a family in a direction (Table 3's "# IPv6
    /// packets" uses Rx on the authoritative server).
    pub fn count_family(&self, dir: Direction, family: Family) -> usize {
        self.records
            .iter()
            .filter(|r| r.dir == dir && r.family() == family)
            .count()
    }

    /// A human-readable dump (one line per packet) for debugging testbeds.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for r in &self.records {
            let dir = match r.dir {
                Direction::Tx => "->",
                Direction::Rx => "<-",
            };
            let _ = writeln!(
                out,
                "{:>14}  {} {:7} {} -> {} ({} bytes)",
                r.time.to_string(),
                dir,
                r.kind,
                r.src,
                r.dst,
                r.payload.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{v4, v6};
    use bytes::Bytes;
    use std::net::SocketAddr;

    fn syn(t_ms: u64, src: std::net::IpAddr, dst: std::net::IpAddr) -> PacketRecord {
        PacketRecord {
            seq: t_ms,
            time: SimTime::from_millis(t_ms),
            dir: Direction::Tx,
            src: SocketAddr::new(src, 50000),
            dst: SocketAddr::new(dst, 80),
            proto: Proto::Tcp,
            kind: "SYN",
            payload: Bytes::new(),
        }
    }

    #[test]
    fn cad_is_first_v4_minus_first_v6() {
        let cap = Capture::new(vec![
            syn(0, v6("2001:db8::100"), v6("2001:db8::1")),
            syn(300, v4("192.0.2.100"), v4("192.0.2.1")),
            syn(1300, v6("2001:db8::100"), v6("2001:db8::1")), // retransmission
        ]);
        assert_eq!(
            cap.connection_attempt_delay(),
            Some(Duration::from_millis(300))
        );
    }

    #[test]
    fn cad_none_without_fallback() {
        let cap = Capture::new(vec![syn(0, v6("2001:db8::100"), v6("2001:db8::1"))]);
        assert_eq!(cap.connection_attempt_delay(), None);
    }

    #[test]
    fn distinct_syn_dsts_dedups_retransmissions() {
        let cap = Capture::new(vec![
            syn(0, v6("2001:db8::100"), v6("2001:db8::a")),
            syn(250, v6("2001:db8::100"), v6("2001:db8::b")),
            syn(1000, v6("2001:db8::100"), v6("2001:db8::a")), // retransmit
            syn(1250, v4("192.0.2.100"), v4("192.0.2.1")),
        ]);
        let dsts = cap.distinct_syn_dsts();
        assert_eq!(dsts.len(), 3);
        assert_eq!(dsts[0].0, v6("2001:db8::a"));
        assert_eq!(dsts[1].0, v6("2001:db8::b"));
        assert_eq!(dsts[2].0, v4("192.0.2.1"));
    }

    #[test]
    fn count_family() {
        let cap = Capture::new(vec![
            syn(0, v6("2001:db8::100"), v6("2001:db8::1")),
            syn(10, v6("2001:db8::100"), v6("2001:db8::1")),
            syn(20, v4("192.0.2.100"), v4("192.0.2.1")),
        ]);
        assert_eq!(cap.count_family(Direction::Tx, Family::V6), 2);
        assert_eq!(cap.count_family(Direction::Tx, Family::V4), 1);
        assert_eq!(cap.count_family(Direction::Rx, Family::V6), 0);
    }
}

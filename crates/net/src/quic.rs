//! A QUIC-shaped handshake over UDP — just enough for Happy Eyeballs v3.
//!
//! HEv3 races QUIC against TCP and prefers endpoints advertising TLS
//! Encrypted ClientHello. What the racing logic observes is *handshake
//! completion time* and the server's capability flags; this module models
//! exactly that: a 1-RTT Initial/Accept exchange with client-side
//! retransmission, carrying an ECH-support flag.

use std::net::SocketAddr;
use std::time::Duration;

use bytes::{BufMut, Bytes, BytesMut};
use lazyeye_sim::{now, timeout, with_rng};
use rand::Rng;

use crate::error::NetError;
use crate::host::Host;
use crate::udp::UdpSocket;

const INITIAL_MAGIC: &[u8; 2] = b"QI";
const ACCEPT_MAGIC: &[u8; 2] = b"QA";

/// Server-side behaviour of a QUIC endpoint.
#[derive(Copy, Clone, Debug)]
pub struct QuicServerConfig {
    /// Advertise TLS ECH support in the accept message.
    pub ech: bool,
    /// Whether to answer at all (an unresponsive QUIC endpoint lets tests
    /// exercise the TCP fallback of HEv3).
    pub respond: bool,
}

impl Default for QuicServerConfig {
    fn default() -> Self {
        QuicServerConfig {
            ech: false,
            respond: true,
        }
    }
}

/// Serves QUIC handshakes on the socket forever. Spawn this as a task.
pub async fn quic_serve(sock: UdpSocket, cfg: QuicServerConfig) {
    loop {
        let Ok((payload, src)) = sock.recv_from().await else {
            return;
        };
        if payload.len() == 10 && &payload[..2] == INITIAL_MAGIC {
            if !cfg.respond {
                continue;
            }
            let mut reply = BytesMut::with_capacity(11);
            reply.put_slice(ACCEPT_MAGIC);
            reply.put_slice(&payload[2..10]); // echo nonce
            reply.put_u8(u8::from(cfg.ech));
            let _ = sock.send_to(reply.freeze(), src);
        }
    }
}

/// Options for the client handshake.
#[derive(Copy, Clone, Debug)]
pub struct QuicConnectOpts {
    /// Initial retransmission timeout (doubles per retry).
    pub rto: Duration,
    /// Retransmissions after the first Initial.
    pub retries: u32,
}

impl Default for QuicConnectOpts {
    fn default() -> Self {
        QuicConnectOpts {
            rto: Duration::from_millis(300),
            retries: 5,
        }
    }
}

/// An established QUIC-like session.
#[derive(Debug)]
pub struct QuicConnection {
    /// Remote endpoint.
    pub remote: SocketAddr,
    /// Handshake round-trip time as the client measured it.
    pub rtt: Duration,
    /// Whether the server advertised ECH support.
    pub ech: bool,
}

/// Performs the 1-RTT handshake from `host` to `remote`.
pub async fn quic_connect(
    host: &Host,
    remote: SocketAddr,
    opts: QuicConnectOpts,
) -> Result<QuicConnection, NetError> {
    let sock = host.udp_bind(SocketAddr::new(
        match remote.ip() {
            std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
            std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::UNSPECIFIED),
        },
        0,
    ))?;
    let nonce: [u8; 8] = with_rng(|r| r.gen());
    let mut initial = BytesMut::with_capacity(10);
    initial.put_slice(INITIAL_MAGIC);
    initial.put_slice(&nonce);
    let initial: Bytes = initial.freeze();

    let mut rto = opts.rto;
    let start = now();
    for _ in 0..=opts.retries {
        sock.send_to(initial.clone(), remote)?;
        let wait = async {
            loop {
                let (payload, src) = sock.recv_from().await?;
                if src == remote
                    && payload.len() == 11
                    && &payload[..2] == ACCEPT_MAGIC
                    && payload[2..10] == nonce
                {
                    return Ok::<u8, NetError>(payload[10]);
                }
            }
        };
        match timeout(rto, wait).await {
            Ok(Ok(flags)) => {
                return Ok(QuicConnection {
                    remote,
                    rtt: now() - start,
                    ech: flags != 0,
                })
            }
            Ok(Err(e)) => return Err(e),
            Err(lazyeye_sim::Elapsed) => rto = rto.saturating_mul(2),
        }
    }
    Err(NetError::TimedOut)
}

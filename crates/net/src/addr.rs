//! Address-family helpers and prefix matching.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// IP address family — the axis Happy Eyeballs races along.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Family {
    /// IPv4.
    V4,
    /// IPv6.
    V6,
}

lazyeye_json::impl_json_unit_enum!(Family { V4, V6 });

impl Family {
    /// Family of an address.
    pub fn of(addr: IpAddr) -> Family {
        match addr {
            IpAddr::V4(_) => Family::V4,
            IpAddr::V6(_) => Family::V6,
        }
    }

    /// The other family.
    pub fn other(self) -> Family {
        match self {
            Family::V4 => Family::V6,
            Family::V6 => Family::V4,
        }
    }

    /// Short label used in tables and figures ("IPv4"/"IPv6").
    pub fn label(self) -> &'static str {
        match self {
            Family::V4 => "IPv4",
            Family::V6 => "IPv6",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A CIDR prefix used by netem rules to select traffic.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct IpPrefix {
    addr: IpAddr,
    len: u8,
}

impl IpPrefix {
    /// Creates a prefix; `len` is clamped to the family's maximum.
    pub fn new(addr: IpAddr, len: u8) -> IpPrefix {
        let max = match addr {
            IpAddr::V4(_) => 32,
            IpAddr::V6(_) => 128,
        };
        IpPrefix {
            addr,
            len: len.min(max),
        }
    }

    /// A host prefix (/32 or /128) matching exactly `addr`.
    pub fn host(addr: IpAddr) -> IpPrefix {
        match addr {
            IpAddr::V4(_) => IpPrefix::new(addr, 32),
            IpAddr::V6(_) => IpPrefix::new(addr, 128),
        }
    }

    /// The prefix address.
    pub fn addr(&self) -> IpAddr {
        self.addr
    }

    /// The prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` for a zero-length prefix (matches everything of its family).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix. Addresses of the other
    /// family never match.
    pub fn contains(&self, addr: IpAddr) -> bool {
        match (self.addr, addr) {
            (IpAddr::V4(p), IpAddr::V4(a)) => {
                let p = u32::from(p);
                let a = u32::from(a);
                let mask = if self.len == 0 {
                    0
                } else {
                    u32::MAX << (32 - u32::from(self.len))
                };
                p & mask == a & mask
            }
            (IpAddr::V6(p), IpAddr::V6(a)) => {
                let p = u128::from(p);
                let a = u128::from(a);
                let mask = if self.len == 0 {
                    0
                } else {
                    u128::MAX << (128 - u32::from(self.len))
                };
                p & mask == a & mask
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for IpPrefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// Parses an IPv4 address, panicking on malformed literals (test fixtures).
pub fn v4(s: &str) -> IpAddr {
    IpAddr::V4(s.parse::<Ipv4Addr>().expect("invalid IPv4 literal"))
}

/// Parses an IPv6 address, panicking on malformed literals (test fixtures).
pub fn v6(s: &str) -> IpAddr {
    IpAddr::V6(s.parse::<Ipv6Addr>().expect("invalid IPv6 literal"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_of() {
        assert_eq!(Family::of(v4("192.0.2.1")), Family::V4);
        assert_eq!(Family::of(v6("2001:db8::1")), Family::V6);
        assert_eq!(Family::V4.other(), Family::V6);
        assert_eq!(Family::V6.label(), "IPv6");
    }

    #[test]
    fn v4_prefix_contains() {
        let p = IpPrefix::new(v4("192.0.2.0"), 24);
        assert!(p.contains(v4("192.0.2.17")));
        assert!(!p.contains(v4("192.0.3.1")));
        assert!(!p.contains(v6("2001:db8::1")), "cross-family never matches");
    }

    #[test]
    fn v6_prefix_contains() {
        let p = IpPrefix::new(v6("2001:db8::"), 32);
        assert!(p.contains(v6("2001:db8:1234::9")));
        assert!(!p.contains(v6("2001:db9::1")));
    }

    #[test]
    fn zero_length_matches_family() {
        let p = IpPrefix::new(v4("0.0.0.0"), 0);
        assert!(p.contains(v4("255.255.255.255")));
        assert!(!p.contains(v6("::1")));
    }

    #[test]
    fn host_prefix_is_exact() {
        let p = IpPrefix::host(v6("2001:db8::5"));
        assert_eq!(p.len(), 128);
        assert!(p.contains(v6("2001:db8::5")));
        assert!(!p.contains(v6("2001:db8::6")));
    }

    #[test]
    fn len_is_clamped() {
        let p = IpPrefix::new(v4("10.0.0.0"), 99);
        assert_eq!(p.len(), 32);
    }
}

//! Network error type shared by every socket API in the crate.

/// Errors surfaced by the simulated sockets. The variants map 1:1 onto the
/// `std::io::ErrorKind`s a real client distinguishes during Happy Eyeballs:
/// refused vs. timed out vs. unreachable drive different fallback paths.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum NetError {
    /// The peer answered with RST (closed port, `ClosedPortPolicy::Rst`).
    ConnectionRefused,
    /// SYN retransmissions exhausted without any answer (blackhole).
    TimedOut,
    /// No local address of the destination's family exists (e.g. an
    /// IPv4-only host asked to reach an IPv6 destination).
    NoRoute,
    /// The requested local address/port is already bound.
    AddrInUse,
    /// The requested local address is not assigned to this host.
    AddrNotAvailable,
    /// The peer reset an established connection.
    ConnectionReset,
    /// The socket or stream was closed locally.
    Closed,
}

impl NetError {
    /// Short stable label (used in result tables and event logs).
    pub fn label(&self) -> &'static str {
        match self {
            NetError::ConnectionRefused => "refused",
            NetError::TimedOut => "timeout",
            NetError::NoRoute => "no-route",
            NetError::AddrInUse => "addr-in-use",
            NetError::AddrNotAvailable => "addr-not-available",
            NetError::ConnectionReset => "reset",
            NetError::Closed => "closed",
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            NetError::ConnectionRefused => "connection refused",
            NetError::TimedOut => "connection timed out",
            NetError::NoRoute => "no route to host (no source address of matching family)",
            NetError::AddrInUse => "address already in use",
            NetError::AddrNotAvailable => "address not available on this host",
            NetError::ConnectionReset => "connection reset by peer",
            NetError::Closed => "socket closed",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(NetError::ConnectionRefused.label(), "refused");
        assert_eq!(NetError::TimedOut.label(), "timeout");
        assert_eq!(NetError::NoRoute.label(), "no-route");
    }

    #[test]
    fn display_is_human_readable() {
        assert!(NetError::TimedOut.to_string().contains("timed out"));
    }
}

//! The network fabric and per-host handles — the testbed's "rack".

use std::net::{IpAddr, SocketAddr};
use std::rc::Rc;
use std::time::Duration;

use crate::addr::Family;
use crate::error::NetError;
use crate::netem::NetemRule;
use crate::pcap::Capture;
use crate::tcp::{ConnectOpts, TcpListener, TcpStream};
use crate::udp::UdpSocket;
use crate::world::{ClosedPortPolicy, World, WorldRc};

/// Counters describing fabric activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets delivered to a protocol handler.
    pub delivered: u64,
    /// Packets dropped (loss, blackhole, unroutable).
    pub dropped: u64,
}

/// A simulated network: hosts attached to a common fabric with per-host
/// netem shaping. Clone handles freely; all clones view the same network.
#[derive(Clone)]
pub struct Network {
    world: WorldRc,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates an empty network with a 200 µs base one-way delay (a
    /// directly connected link, like the paper's two-host testbed).
    pub fn new() -> Network {
        Network {
            world: Rc::new(std::cell::RefCell::new(World::new())),
        }
    }

    /// Sets the base one-way propagation delay applied to every packet.
    pub fn set_base_delay(&self, d: Duration) {
        self.world.borrow_mut().base_delay = d;
    }

    /// Starts building a host.
    pub fn host(&self, name: &str) -> HostBuilder {
        HostBuilder {
            net: self.clone(),
            name: name.to_string(),
            addrs: Vec::new(),
        }
    }

    /// Fabric counters.
    pub fn stats(&self) -> NetStats {
        let w = self.world.borrow();
        NetStats {
            delivered: w.delivered,
            dropped: w.dropped,
        }
    }
}

/// Builder for a [`Host`].
pub struct HostBuilder {
    net: Network,
    name: String,
    addrs: Vec<IpAddr>,
}

impl HostBuilder {
    /// Adds an address (order expresses source-selection preference).
    pub fn addr(mut self, a: IpAddr) -> Self {
        self.addrs.push(a);
        self
    }

    /// Adds an IPv4 address from a literal. Panics on malformed input —
    /// addresses in a testbed config are fixtures.
    pub fn v4(self, s: &str) -> Self {
        self.addr(crate::addr::v4(s))
    }

    /// Adds an IPv6 address from a literal (panics on malformed input).
    pub fn v6(self, s: &str) -> Self {
        self.addr(crate::addr::v6(s))
    }

    /// Registers the host on the fabric and returns its handle.
    pub fn build(self) -> Host {
        let idx = {
            let mut w = self.net.world.borrow_mut();
            let idx = w.add_host(&self.name);
            for a in &self.addrs {
                w.assign_addr(idx, *a);
            }
            idx
        };
        Host {
            world: Rc::clone(&self.net.world),
            idx,
        }
    }
}

/// Handle to one simulated host. Cheap to clone; all clones are the same
/// host.
#[derive(Clone)]
pub struct Host {
    pub(crate) world: WorldRc,
    pub(crate) idx: usize,
}

impl Host {
    /// Host name (for diagnostics).
    pub fn name(&self) -> String {
        self.world.borrow().hosts[self.idx].name.clone()
    }

    /// All assigned addresses in preference order.
    pub fn addrs(&self) -> Vec<IpAddr> {
        self.world.borrow().hosts[self.idx].addrs.clone()
    }

    /// First address of the given family, if any.
    pub fn addr(&self, family: Family) -> Option<IpAddr> {
        self.addrs().into_iter().find(|a| Family::of(*a) == family)
    }

    /// All addresses of the given family.
    pub fn addrs_of(&self, family: Family) -> Vec<IpAddr> {
        self.addrs()
            .into_iter()
            .filter(|a| Family::of(*a) == family)
            .collect()
    }

    /// Assigns an additional address at runtime.
    pub fn add_addr(&self, a: IpAddr) {
        self.world.borrow_mut().assign_addr(self.idx, a);
    }

    /// Appends an egress shaping rule (`tc qdisc add ... netem` on this
    /// host's uplink). First matching rule wins.
    pub fn add_egress(&self, rule: NetemRule) {
        self.world.borrow_mut().hosts[self.idx].egress.push(rule);
    }

    /// Appends an ingress shaping rule.
    pub fn add_ingress(&self, rule: NetemRule) {
        self.world.borrow_mut().hosts[self.idx].ingress.push(rule);
    }

    /// Removes all shaping rules (the per-run reset of the testbed).
    pub fn clear_netem(&self) {
        let mut w = self.world.borrow_mut();
        w.hosts[self.idx].egress.clear();
        w.hosts[self.idx].ingress.clear();
    }

    /// Chooses what happens to SYNs hitting closed ports.
    pub fn set_closed_port_policy(&self, p: ClosedPortPolicy) {
        self.world.borrow_mut().hosts[self.idx].closed_port_policy = p;
    }

    /// Marks one of this host's addresses as unresponsive: packets to it
    /// are captured, then silently dropped (the paper's dead addresses in
    /// the address-selection experiment).
    pub fn blackhole(&self, a: IpAddr) {
        self.world.borrow_mut().hosts[self.idx].blackholes.insert(a);
    }

    /// Removes a blackhole marking.
    pub fn unblackhole(&self, a: IpAddr) {
        self.world.borrow_mut().hosts[self.idx]
            .blackholes
            .remove(&a);
    }

    /// Enables/disables packet capture on this host (on by default).
    pub fn set_capture(&self, on: bool) {
        self.world.borrow_mut().hosts[self.idx].capture_on = on;
    }

    /// Snapshot of this host's packet capture.
    pub fn capture(&self) -> Capture {
        Capture::new(self.world.borrow().captures[self.idx].clone())
    }

    /// Clears the capture buffer (between test runs).
    pub fn clear_capture(&self) {
        self.world.borrow_mut().captures[self.idx].clear();
    }

    /// Binds a UDP socket. Port 0 allocates an ephemeral port; an
    /// unspecified IP binds to all host addresses.
    pub fn udp_bind(&self, addr: SocketAddr) -> Result<UdpSocket, NetError> {
        crate::udp::bind(&self.world, self.idx, addr)
    }

    /// Binds a UDP socket on every address, given port.
    pub fn udp_bind_any(&self, port: u16) -> Result<UdpSocket, NetError> {
        self.udp_bind(SocketAddr::new(
            IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED),
            port,
        ))
    }

    /// Listens for TCP on a specific address.
    pub fn tcp_listen(&self, addr: SocketAddr, backlog: usize) -> Result<TcpListener, NetError> {
        crate::tcp::listen(&self.world, self.idx, addr, backlog)
    }

    /// Listens for TCP on every host address, given port.
    pub fn tcp_listen_any(&self, port: u16) -> Result<TcpListener, NetError> {
        crate::tcp::listen(
            &self.world,
            self.idx,
            SocketAddr::new(IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED), port),
            64,
        )
    }

    /// TCP connect with default (Linux-like) SYN retransmission.
    pub async fn tcp_connect(&self, remote: SocketAddr) -> Result<TcpStream, NetError> {
        self.tcp_connect_with(remote, ConnectOpts::default()).await
    }

    /// TCP connect with explicit handshake options.
    pub async fn tcp_connect_with(
        &self,
        remote: SocketAddr,
        opts: ConnectOpts,
    ) -> Result<TcpStream, NetError> {
        crate::tcp::connect(Rc::clone(&self.world), self.idx, remote, opts).await
    }
}

//! A fast, deterministic hasher for the simulator's per-packet maps.
//!
//! `std`'s default SipHash showed up as one of the top costs in the
//! packet path profile: every routed packet hashes an `IpAddr` (routes),
//! a `(SocketAddr, SocketAddr, Proto)` flow key and a socket key. These
//! maps are in-process, keyed by trusted simulation state, and never face
//! attacker-chosen keys, so HashDoS resistance buys nothing here. This is
//! the FxHash multiply-rotate scheme (rustc's internal hasher): one
//! wrapping multiply per 8-byte chunk.
//!
//! Determinism note: unlike `RandomState`, the hash is identical across
//! processes — map *iteration* order (which no report-visible code path
//! relies on, as the byte-identical golden reports prove) becomes
//! reproducible too, which can only help the determinism story.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-at-a-time multiplicative hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, SocketAddr};

    #[test]
    fn deterministic_across_hashers() {
        let key: SocketAddr = "192.0.2.1:53".parse().unwrap();
        let h = |k: &SocketAddr| {
            use std::hash::BuildHasher;
            FxBuildHasher::default().hash_one(k)
        };
        assert_eq!(h(&key), h(&key));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<IpAddr, usize> = FxHashMap::default();
        m.insert("2001:db8::1".parse().unwrap(), 7);
        m.insert("192.0.2.1".parse().unwrap(), 9);
        assert_eq!(m[&"2001:db8::1".parse::<IpAddr>().unwrap()], 7);
        assert_eq!(m.len(), 2);
    }
}

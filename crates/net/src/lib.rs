//! # lazyeye-net — the simulated dual-stack network
//!
//! This crate replaces the paper's physical apparatus (two directly
//! connected hosts plus `tc-netem`) with a deterministic simulation on
//! virtual time:
//!
//! * [`Network`] / [`Host`] — the fabric and its dual-stack hosts;
//! * [`NetemRule`] / [`Netem`] — per-host, per-family traffic shaping, the
//!   `tc-netem` equivalent used to delay IPv6 in the CAD experiments;
//! * [`UdpSocket`] — datagrams (DNS, QUIC-like);
//! * [`TcpListener`] / [`TcpStream`] — the three-way handshake with SYN
//!   retransmission, refused-vs-blackhole failure modes and ordered
//!   reliable streams;
//! * [`quic`] — a 1-RTT QUIC-shaped handshake for Happy Eyeballs v3;
//! * [`Capture`] — per-host packet capture with the CAD/RD analysis
//!   primitives (§4.3 of the paper).
//!
//! ## Fidelity model
//!
//! What a Happy Eyeballs measurement observes is packet *timing*, so the
//! simulator is exact about: SYN emission times, handshake completion,
//! netem delay/jitter/loss/duplication/reordering, per-flow FIFO order and
//! per-address blackholes. It deliberately does not model TCP sequence
//! numbers, windows or congestion control: stream data is delivered
//! reliably in order after shaping delay. Loss applies where recovery
//! exists (TCP handshake packets, UDP datagrams).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
mod error;
pub mod fasthash;
mod host;
mod netem;
mod packet;
mod pcap;
pub mod quic;
mod tcp;
mod udp;
mod world;

pub use addr::{Family, IpPrefix};
pub use error::NetError;
pub use host::{Host, HostBuilder, NetStats, Network};
pub use netem::{first_match, Netem, NetemRule};
pub use packet::{Direction, Packet, PacketKind, PacketRecord, Proto};
pub use pcap::Capture;
pub use quic::{quic_connect, quic_serve, QuicConnectOpts, QuicConnection, QuicServerConfig};
pub use tcp::{ConnectOpts, TcpListener, TcpStream};
pub use udp::UdpSocket;
pub use world::ClosedPortPolicy;

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lazyeye_sim::{spawn, Sim};
    use std::net::SocketAddr;
    use std::time::Duration;

    fn duplex() -> (Network, Host, Host) {
        let net = Network::new();
        let server = net.host("server").v4("192.0.2.1").v6("2001:db8::1").build();
        let client = net
            .host("client")
            .v4("192.0.2.100")
            .v6("2001:db8::100")
            .build();
        (net, server, client)
    }

    fn sa(ip: &str, port: u16) -> SocketAddr {
        SocketAddr::new(ip.parse().unwrap(), port)
    }

    #[test]
    fn tcp_connect_and_exchange() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        let echoed = sim.block_on(async move {
            let listener = server.tcp_listen_any(80).unwrap();
            spawn(async move {
                let (stream, _peer) = listener.accept().await.unwrap();
                let req = stream.read(1024).await.unwrap().unwrap();
                stream.write(&req).unwrap();
                stream.close();
            });
            let stream = client.tcp_connect(sa("192.0.2.1", 80)).await.unwrap();
            stream.write(b"hello eyeballs").unwrap();
            let reply = stream.read_exact(14).await.unwrap();
            String::from_utf8(reply.to_vec()).unwrap()
        });
        assert_eq!(echoed, "hello eyeballs");
    }

    #[test]
    fn connect_over_both_families() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        sim.block_on(async move {
            let _l = server.tcp_listen_any(443).unwrap();
            let v4 = client.tcp_connect(sa("192.0.2.1", 443)).await.unwrap();
            assert_eq!(v4.family(), Family::V4);
            let v6 = client.tcp_connect(sa("2001:db8::1", 443)).await.unwrap();
            assert_eq!(v6.family(), Family::V6);
        });
    }

    #[test]
    fn netem_delay_slows_handshake() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        server.add_egress(NetemRule::family(Family::V6, Netem::delay_ms(250)));
        let (v6_ms, v4_ms) = sim.block_on(async move {
            let _l = server.tcp_listen_any(80).unwrap();
            let t0 = lazyeye_sim::now();
            client.tcp_connect(sa("2001:db8::1", 80)).await.unwrap();
            let v6 = (lazyeye_sim::now() - t0).as_millis();
            let t1 = lazyeye_sim::now();
            client.tcp_connect(sa("192.0.2.1", 80)).await.unwrap();
            let v4 = (lazyeye_sim::now() - t1).as_millis();
            (v6, v4)
        });
        // v6 handshake pays the 250 ms SYN-ACK delay; v4 is sub-millisecond.
        assert!((250..300).contains(&v6_ms), "v6 took {v6_ms} ms");
        assert!(v4_ms < 5, "v4 took {v4_ms} ms");
    }

    #[test]
    fn closed_port_refuses_immediately() {
        let mut sim = Sim::new(1);
        let (_net, _server, client) = duplex();
        let (err, elapsed_ms) = sim.block_on(async move {
            let t0 = lazyeye_sim::now();
            let err = client.tcp_connect(sa("192.0.2.1", 81)).await.unwrap_err();
            (err, (lazyeye_sim::now() - t0).as_millis())
        });
        assert_eq!(err, NetError::ConnectionRefused);
        assert!(elapsed_ms < 5);
    }

    #[test]
    fn blackholed_address_times_out_with_retries() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        server.blackhole(addr::v6("2001:db8::1"));
        let client2 = client.clone();
        let err = sim.block_on(async move {
            client2
                .tcp_connect_with(
                    sa("2001:db8::1", 80),
                    ConnectOpts {
                        syn_rto: Duration::from_millis(100),
                        syn_retries: 2,
                    },
                )
                .await
                .unwrap_err()
        });
        assert_eq!(err, NetError::TimedOut);
        // 100 + 200 + 400 ms of RTOs.
        assert_eq!(sim.now().as_millis(), 700);
        // Capture shows 3 SYNs (initial + 2 retries).
        assert_eq!(client.capture().syn_times(Family::V6).len(), 3);
    }

    #[test]
    fn unassigned_address_is_a_blackhole() {
        let mut sim = Sim::new(1);
        let (_net, _server, client) = duplex();
        let err = sim.block_on(async move {
            client
                .tcp_connect_with(
                    sa("203.0.113.99", 80),
                    ConnectOpts {
                        syn_rto: Duration::from_millis(50),
                        syn_retries: 0,
                    },
                )
                .await
                .unwrap_err()
        });
        assert_eq!(err, NetError::TimedOut);
    }

    #[test]
    fn no_source_address_of_family_fails_fast() {
        let mut sim = Sim::new(1);
        let net = Network::new();
        let _server = net.host("server").v6("2001:db8::1").build();
        let v4_only = net.host("client").v4("192.0.2.100").build();
        let err = sim.block_on(async move {
            v4_only
                .tcp_connect(sa("2001:db8::1", 80))
                .await
                .unwrap_err()
        });
        assert_eq!(err, NetError::NoRoute);
    }

    #[test]
    fn drop_policy_forces_timeout_instead_of_rst() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        server.set_closed_port_policy(ClosedPortPolicy::Drop);
        let err = sim.block_on(async move {
            client
                .tcp_connect_with(
                    sa("192.0.2.1", 9999),
                    ConnectOpts {
                        syn_rto: Duration::from_millis(50),
                        syn_retries: 1,
                    },
                )
                .await
                .unwrap_err()
        });
        assert_eq!(err, NetError::TimedOut);
    }

    #[test]
    fn udp_roundtrip() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        let got = sim.block_on(async move {
            let ssock = server.udp_bind_any(53).unwrap();
            spawn(async move {
                let (payload, src) = ssock.recv_from().await.unwrap();
                let mut reply = payload.to_vec();
                reply.reverse();
                ssock.send_to(Bytes::from(reply), src).unwrap();
            });
            let csock = client.udp_bind_any(0).unwrap();
            csock
                .send_to(Bytes::from_static(b"abc"), sa("192.0.2.1", 53))
                .unwrap();
            let (reply, _) = csock.recv_from().await.unwrap();
            reply
        });
        assert_eq!(&got[..], b"cba");
    }

    #[test]
    fn udp_wildcard_answers_both_families() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        let (src4, src6) = sim.block_on(async move {
            let ssock = server.udp_bind_any(53).unwrap();
            spawn(async move {
                loop {
                    let Ok((p, src)) = ssock.recv_from().await else {
                        break;
                    };
                    ssock.send_to(p, src).unwrap();
                }
            });
            let c4 = client.udp_bind_any(0).unwrap();
            c4.send_to(Bytes::from_static(b"x"), sa("192.0.2.1", 53))
                .unwrap();
            let (_, s4) = c4.recv_from().await.unwrap();
            let c6 = client.udp_bind_any(0).unwrap();
            c6.send_to(Bytes::from_static(b"y"), sa("2001:db8::1", 53))
                .unwrap();
            let (_, s6) = c6.recv_from().await.unwrap();
            (s4, s6)
        });
        assert_eq!(src4, sa("192.0.2.1", 53));
        assert_eq!(src6, sa("2001:db8::1", 53));
    }

    #[test]
    fn capture_measures_cad_exactly() {
        // A hand-rolled Happy Eyeballs v1: try v6, fall back to v4 after
        // 250 ms. The capture must report exactly 250 ms.
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        server.add_egress(NetemRule::family(Family::V6, Netem::delay_ms(400)));
        let client2 = client.clone();
        sim.block_on(async move {
            let _l = server.tcp_listen_any(80).unwrap();
            let v6 = spawn({
                let c = client2.clone();
                async move { c.tcp_connect(sa("2001:db8::1", 80)).await }
            });
            lazyeye_sim::sleep(Duration::from_millis(250)).await;
            if !v6.is_finished() {
                let _v4 = client2.tcp_connect(sa("192.0.2.1", 80)).await.unwrap();
                v6.abort();
            }
        });
        let cad = client.capture().connection_attempt_delay().unwrap();
        assert_eq!(cad, Duration::from_millis(250));
    }

    #[test]
    fn quic_handshake_and_ech_flag() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        let conn = sim.block_on(async move {
            let sock = server.udp_bind_any(443).unwrap();
            spawn(quic_serve(
                sock,
                QuicServerConfig {
                    ech: true,
                    respond: true,
                },
            ));
            quic_connect(&client, sa("2001:db8::1", 443), QuicConnectOpts::default())
                .await
                .unwrap()
        });
        assert!(conn.ech);
        assert!(conn.rtt >= Duration::from_micros(400), "rtt {:?}", conn.rtt);
    }

    #[test]
    fn quic_unresponsive_times_out() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        let err = sim.block_on(async move {
            let sock = server.udp_bind_any(443).unwrap();
            spawn(quic_serve(
                sock,
                QuicServerConfig {
                    ech: false,
                    respond: false,
                },
            ));
            quic_connect(
                &client,
                sa("192.0.2.1", 443),
                QuicConnectOpts {
                    rto: Duration::from_millis(50),
                    retries: 1,
                },
            )
            .await
            .unwrap_err()
        });
        assert_eq!(err, NetError::TimedOut);
    }

    #[test]
    fn loss_drops_syns_but_retransmission_recovers() {
        let mut sim = Sim::new(42);
        let (_net, server, client) = duplex();
        server.add_ingress(NetemRule::family(Family::V4, Netem::loss(0.5)));
        let ok = sim.block_on(async move {
            let _l = server.tcp_listen_any(80).unwrap();
            client
                .tcp_connect_with(
                    sa("192.0.2.1", 80),
                    ConnectOpts {
                        syn_rto: Duration::from_millis(100),
                        syn_retries: 20,
                    },
                )
                .await
                .is_ok()
        });
        assert!(ok, "retransmissions should eventually get through");
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut sim = Sim::new(7);
        let (_net, server, client) = duplex();
        server.add_ingress(NetemRule::all(
            Netem::delay_ms(100).with_jitter(Duration::from_millis(20)),
        ));
        let rtts = sim.block_on(async move {
            let ssock = server.udp_bind_any(7).unwrap();
            spawn(async move {
                loop {
                    let Ok((p, src)) = ssock.recv_from().await else {
                        break;
                    };
                    ssock.send_to(p, src).unwrap();
                }
            });
            let c = client.udp_bind_any(0).unwrap();
            let mut rtts = Vec::new();
            for _ in 0..20 {
                let t0 = lazyeye_sim::now();
                c.send_to(Bytes::from_static(b"p"), sa("192.0.2.1", 7))
                    .unwrap();
                let _ = c.recv_from().await.unwrap();
                rtts.push((lazyeye_sim::now() - t0).as_millis());
            }
            rtts
        });
        for rtt in &rtts {
            // one-way: 100±20 shaped + base; reply unshaped.
            assert!((80..=125).contains(rtt), "rtt {rtt} out of bounds");
        }
        let min = rtts.iter().min().unwrap();
        let max = rtts.iter().max().unwrap();
        assert!(max > min, "jitter must actually vary delays");
    }

    #[test]
    fn per_flow_order_is_preserved() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        // Jitter without reorder permission must not reorder a flow.
        server.add_ingress(NetemRule::all(
            Netem::delay_ms(50).with_jitter(Duration::from_millis(49)),
        ));
        let got = sim.block_on(async move {
            let ssock = server.udp_bind_any(9).unwrap();
            let c = client.udp_bind_any(0).unwrap();
            for i in 0..20u8 {
                c.send_to(Bytes::from(vec![i]), sa("192.0.2.1", 9)).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..20 {
                let (p, _) = ssock.recv_from().await.unwrap();
                got.push(p[0]);
            }
            got
        });
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn duplicate_delivers_twice() {
        let mut sim = Sim::new(3);
        let (_net, server, client) = duplex();
        server.add_ingress(NetemRule::all(Netem {
            duplicate: 1.0,
            ..Netem::default()
        }));
        let n = sim.block_on(async move {
            let ssock = server.udp_bind_any(9).unwrap();
            let c = client.udp_bind_any(0).unwrap();
            c.send_to(Bytes::from_static(b"dup"), sa("192.0.2.1", 9))
                .unwrap();
            let mut n = 0;
            while lazyeye_sim::timeout(Duration::from_millis(10), ssock.recv_from())
                .await
                .is_ok()
            {
                n += 1;
            }
            n
        });
        assert_eq!(n, 2);
    }

    #[test]
    fn fin_ends_stream() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        let got = sim.block_on(async move {
            let listener = server.tcp_listen_any(80).unwrap();
            spawn(async move {
                let (s, _) = listener.accept().await.unwrap();
                s.write(b"bye").unwrap();
                s.close();
            });
            let s = client.tcp_connect(sa("192.0.2.1", 80)).await.unwrap();
            s.read_to_end().await.unwrap()
        });
        assert_eq!(&got[..], b"bye");
    }

    #[test]
    fn read_until_delimiter() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        let got = sim.block_on(async move {
            let listener = server.tcp_listen_any(80).unwrap();
            spawn(async move {
                let (s, _) = listener.accept().await.unwrap();
                s.write(b"HTTP/1.1 200 OK\r\n\r\nbody").unwrap();
                // keep the stream open; read_until stops at the delimiter
                lazyeye_sim::sleep(Duration::from_secs(1)).await;
            });
            let s = client.tcp_connect(sa("192.0.2.1", 80)).await.unwrap();
            s.read_until(b"\r\n\r\n").await.unwrap()
        });
        assert!(got.windows(4).any(|w| w == b"\r\n\r\n"));
    }

    #[test]
    fn double_bind_fails() {
        let sim = Sim::new(1);
        let (_net, server, _client) = duplex();
        sim.enter(|| {
            let _a = server.tcp_listen_any(80).unwrap();
            assert_eq!(server.tcp_listen_any(80).unwrap_err(), NetError::AddrInUse);
            let _u = server.udp_bind_any(53).unwrap();
            assert_eq!(server.udp_bind_any(53).unwrap_err(), NetError::AddrInUse);
        });
    }

    #[test]
    fn listener_drop_frees_port() {
        let sim = Sim::new(1);
        let (_net, server, _client) = duplex();
        sim.enter(|| {
            let l = server.tcp_listen_any(80).unwrap();
            drop(l);
            assert!(server.tcp_listen_any(80).is_ok());
        });
    }

    #[test]
    fn capture_can_be_disabled_and_cleared() {
        let mut sim = Sim::new(1);
        let (_net, server, client) = duplex();
        client.set_capture(false);
        sim.block_on({
            let client = client.clone();
            async move {
                let _l = server.tcp_listen_any(80).unwrap();
                let _ = client.tcp_connect(sa("192.0.2.1", 80)).await.unwrap();
            }
        });
        assert!(client.capture().is_empty());
        client.set_capture(true);
        client.clear_capture();
        assert!(client.capture().is_empty());
    }
}

//! UDP datagram sockets — the substrate for DNS and the QUIC-like
//! handshake.

use std::collections::VecDeque;
use std::net::{IpAddr, SocketAddr};
use std::rc::Rc;
use std::task::{Poll, Waker};

use bytes::Bytes;

use crate::error::NetError;
use crate::packet::{Packet, PacketKind, Proto};
use crate::world::WorldRc;

pub(crate) struct UdpSockState {
    pub queue: VecDeque<(SocketAddr, Bytes)>,
    pub waker: Option<Waker>,
    pub closed: bool,
}

/// A bound UDP socket.
///
/// Binding to an unspecified address (`0.0.0.0` / `::`) receives on every
/// host address; the source address of replies is then chosen per
/// destination family.
pub struct UdpSocket {
    world: WorldRc,
    host: usize,
    local: SocketAddr,
    state: Rc<std::cell::RefCell<UdpSockState>>,
}

impl std::fmt::Debug for UdpSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpSocket")
            .field("local", &self.local)
            .finish()
    }
}

pub(crate) fn bind(world: &WorldRc, host: usize, addr: SocketAddr) -> Result<UdpSocket, NetError> {
    let state = Rc::new(std::cell::RefCell::new(UdpSockState {
        queue: VecDeque::new(),
        waker: None,
        closed: false,
    }));
    let mut w = world.borrow_mut();
    let mut local = addr;
    if local.port() == 0 {
        let p = w.hosts[host].alloc_ephemeral();
        local.set_port(p);
    }
    if local.ip().is_unspecified() {
        if w.hosts[host].udp_any.contains_key(&local.port()) {
            return Err(NetError::AddrInUse);
        }
        w.hosts[host]
            .udp_any
            .insert(local.port(), Rc::clone(&state));
    } else {
        if !w.hosts[host].addrs.contains(&local.ip()) {
            return Err(NetError::AddrNotAvailable);
        }
        let k = (local.ip(), local.port());
        if w.hosts[host].udp_bound.contains_key(&k) {
            return Err(NetError::AddrInUse);
        }
        w.hosts[host].udp_bound.insert(k, Rc::clone(&state));
    }
    Ok(UdpSocket {
        world: Rc::clone(world),
        host,
        local,
        state,
    })
}

pub(crate) fn deliver(world: &WorldRc, host: usize, pkt: Packet) {
    let PacketKind::Datagram(payload) = pkt.kind else {
        return;
    };
    let sock = {
        let w = world.borrow();
        let hs = &w.hosts[host];
        hs.udp_bound
            .get(&(pkt.dst.ip(), pkt.dst.port()))
            .or_else(|| hs.udp_any.get(&pkt.dst.port()))
            .cloned()
    };
    // No socket: a real host would send ICMP port-unreachable; clients in
    // this testbed all use application-level timeouts instead, so the
    // datagram just vanishes.
    let Some(sock) = sock else { return };
    let mut s = sock.borrow_mut();
    if s.closed {
        return;
    }
    s.queue.push_back((pkt.src, payload));
    if let Some(w) = s.waker.take() {
        w.wake();
    }
}

impl UdpSocket {
    /// The bound local address (possibly wildcard, with a concrete port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Sends a datagram. For wildcard-bound sockets the source address is
    /// the host's first address matching the destination's family.
    pub fn send_to(&self, payload: Bytes, dst: SocketAddr) -> Result<(), NetError> {
        let src_ip: IpAddr = if self.local.ip().is_unspecified() {
            let w = self.world.borrow();
            w.hosts[self.host]
                .pick_source(dst.ip())
                .ok_or(NetError::NoRoute)?
        } else {
            if crate::addr::Family::of(self.local.ip()) != crate::addr::Family::of(dst.ip()) {
                return Err(NetError::NoRoute);
            }
            self.local.ip()
        };
        crate::world::send_packet(
            &self.world,
            self.host,
            Packet {
                src: SocketAddr::new(src_ip, self.local.port()),
                dst,
                proto: Proto::Udp,
                kind: PacketKind::Datagram(payload),
            },
        );
        Ok(())
    }

    /// Waits for the next datagram: `(payload, source)`.
    pub async fn recv_from(&self) -> Result<(Bytes, SocketAddr), NetError> {
        RecvFut { sock: self }.await
    }

    /// Non-blocking receive.
    pub fn try_recv_from(&self) -> Option<(Bytes, SocketAddr)> {
        let mut s = self.state.borrow_mut();
        s.queue.pop_front().map(|(a, b)| (b, a))
    }
}

impl Drop for UdpSocket {
    fn drop(&mut self) {
        self.state.borrow_mut().closed = true;
        let mut w = self.world.borrow_mut();
        if self.local.ip().is_unspecified() {
            w.hosts[self.host].udp_any.remove(&self.local.port());
        } else {
            w.hosts[self.host]
                .udp_bound
                .remove(&(self.local.ip(), self.local.port()));
        }
    }
}

struct RecvFut<'a> {
    sock: &'a UdpSocket,
}

impl std::future::Future for RecvFut<'_> {
    type Output = Result<(Bytes, SocketAddr), NetError>;
    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut std::task::Context<'_>) -> Poll<Self::Output> {
        let mut s = self.sock.state.borrow_mut();
        if let Some((src, payload)) = s.queue.pop_front() {
            return Poll::Ready(Ok((payload, src)));
        }
        if s.closed {
            return Poll::Ready(Err(NetError::Closed));
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

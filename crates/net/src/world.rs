//! Shared simulation state: hosts, routing, packet transmission.
//!
//! Packet flow: `send_packet` applies capture + netem on the sender side,
//! schedules one delivery task per surviving copy, and `deliver` dispatches
//! to the UDP/TCP state machines on the destination host. Delivery order
//! within a flow is preserved by a per-flow clamp (netem `reorder` lets a
//! packet escape it), so the simulated network behaves like a FIFO link with
//! configurable per-class delay — the same model `tc-netem` imposes.

use std::cell::RefCell;
use std::net::{IpAddr, SocketAddr};
use std::rc::Rc;
use std::time::Duration;

use lazyeye_sim::{sleep_until, spawn_detached, with_rng, SimTime};
use rand::Rng;

use crate::addr::Family;
use crate::fasthash::{FxHashMap, FxHashSet};
use crate::netem::{first_match, Netem, NetemRule};
use crate::packet::{Direction, Packet, PacketRecord, Proto};
use crate::tcp;
use crate::udp;

/// What a host does with TCP SYNs to ports nobody listens on.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ClosedPortPolicy {
    /// Send a RST — the client sees "connection refused" immediately.
    #[default]
    Rst,
    /// Drop silently — the client retries until its timeout (the
    /// "unresponsive address" behaviour the paper's address-selection test
    /// relies on).
    Drop,
}

/// Identifier of a connection: (local, remote) socket addresses.
pub(crate) type ConnKey = (SocketAddr, SocketAddr);

pub(crate) struct HostState {
    pub name: String,
    pub addrs: Vec<IpAddr>,
    pub egress: Vec<NetemRule>,
    pub ingress: Vec<NetemRule>,
    pub udp_bound: FxHashMap<(IpAddr, u16), Rc<RefCell<udp::UdpSockState>>>,
    pub udp_any: FxHashMap<u16, Rc<RefCell<udp::UdpSockState>>>,
    pub tcp_listeners: FxHashMap<(IpAddr, u16), Rc<RefCell<tcp::ListenerState>>>,
    pub tcp_listeners_any: FxHashMap<u16, Rc<RefCell<tcp::ListenerState>>>,
    pub tcp_conns: FxHashMap<ConnKey, Rc<RefCell<tcp::ConnState>>>,
    pub next_ephemeral: u16,
    pub closed_port_policy: ClosedPortPolicy,
    pub blackholes: FxHashSet<IpAddr>,
    pub capture_on: bool,
}

impl HostState {
    fn new(name: String) -> HostState {
        HostState {
            name,
            addrs: Vec::new(),
            egress: Vec::new(),
            ingress: Vec::new(),
            udp_bound: FxHashMap::default(),
            udp_any: FxHashMap::default(),
            tcp_listeners: FxHashMap::default(),
            tcp_listeners_any: FxHashMap::default(),
            tcp_conns: FxHashMap::default(),
            next_ephemeral: 49152,
            closed_port_policy: ClosedPortPolicy::default(),
            blackholes: FxHashSet::default(),
            capture_on: true,
        }
    }

    /// Source-address selection: the first configured address matching the
    /// destination's family (a deliberate simplification of RFC 6724 —
    /// builder order expresses the host's policy table).
    pub fn pick_source(&self, remote: IpAddr) -> Option<IpAddr> {
        let fam = Family::of(remote);
        self.addrs.iter().copied().find(|a| Family::of(*a) == fam)
    }

    pub fn alloc_ephemeral(&mut self) -> u16 {
        let p = self.next_ephemeral;
        self.next_ephemeral = if p == 65535 { 49152 } else { p + 1 };
        p
    }
}

type FlowKey = (SocketAddr, SocketAddr, Proto);

pub(crate) struct World {
    pub hosts: Vec<HostState>,
    pub routes: FxHashMap<IpAddr, usize>,
    pub flows: FxHashMap<FlowKey, SimTime>,
    pub captures: Vec<Vec<PacketRecord>>,
    pub seq: u64,
    /// Base one-way propagation delay of the fabric (default 200 µs — a
    /// directly connected link, as in the paper's testbed).
    pub base_delay: Duration,
    /// Packets delivered so far (diagnostics/benchmarks).
    pub delivered: u64,
    /// Packets dropped by loss, blackholes or missing routes.
    pub dropped: u64,
}

impl World {
    pub fn new() -> World {
        World {
            hosts: Vec::new(),
            routes: FxHashMap::default(),
            flows: FxHashMap::default(),
            captures: Vec::new(),
            seq: 0,
            base_delay: Duration::from_micros(200),
            delivered: 0,
            dropped: 0,
        }
    }

    pub fn add_host(&mut self, name: &str) -> usize {
        self.hosts.push(HostState::new(name.to_string()));
        // A measurement run captures a few dozen records per host;
        // pre-sizing skips the doubling reallocations on the packet path.
        self.captures.push(Vec::with_capacity(64));
        self.hosts.len() - 1
    }

    /// Assigns an address to a host and routes it there.
    ///
    /// # Panics
    /// Panics if the address is already assigned to another host: the
    /// testbed is a closed system and double assignment is a config bug.
    pub fn assign_addr(&mut self, host: usize, addr: IpAddr) {
        if let Some(prev) = self.routes.insert(addr, host) {
            assert_eq!(
                prev, host,
                "address {addr} already assigned to host '{}'",
                self.hosts[prev].name
            );
        }
        if !self.hosts[host].addrs.contains(&addr) {
            self.hosts[host].addrs.push(addr);
        }
    }

    fn record(&mut self, host: usize, dir: Direction, pkt: &Packet) {
        if !self.hosts[host].capture_on {
            return;
        }
        let payload = match &pkt.kind {
            crate::packet::PacketKind::Datagram(b) => b.clone(),
            _ => bytes::Bytes::new(),
        };
        let rec = PacketRecord {
            seq: self.seq,
            time: lazyeye_sim::now(),
            dir,
            src: pkt.src,
            dst: pkt.dst,
            proto: pkt.proto,
            kind: pkt.kind.label(),
            payload,
        };
        self.seq += 1;
        self.captures[host].push(rec);
    }
}

pub(crate) type WorldRc = Rc<RefCell<World>>;

/// Transmits `pkt` from `from` through the fabric: captures, shapes,
/// schedules delivery. Must be called from inside the simulation.
pub(crate) fn send_packet(world: &WorldRc, from: usize, pkt: Packet) {
    let mut deliveries: Vec<SimTime> = Vec::with_capacity(1);
    {
        let mut w = world.borrow_mut();
        w.record(from, Direction::Tx, &pkt);

        let Some(&dst_host) = w.routes.get(&pkt.dst.ip()) else {
            // Unassigned destination: a natural blackhole. The sender's
            // capture shows the attempt; nothing ever comes back.
            w.dropped += 1;
            return;
        };

        // Combine sender egress + receiver ingress effects.
        let egress = first_match(&w.hosts[from].egress, &pkt);
        let ingress = first_match(&w.hosts[dst_host].ingress, &pkt);
        let mut delay = w.base_delay;
        let mut loss = 0.0f64;
        let mut dup = 0.0f64;
        let mut reorder = 0.0f64;
        for eff in [egress, ingress].into_iter().flatten() {
            delay += sample_delay(&eff);
            loss = 1.0 - (1.0 - loss) * (1.0 - eff.loss);
            dup = dup.max(eff.duplicate);
            reorder = reorder.max(eff.reorder);
        }

        let now = lazyeye_sim::now();
        let mut at = now + delay;

        // In-order delivery within a flow unless reordering is allowed.
        // The clamp is updated even for lost packets: a dropped packet
        // occupied its place in the queue.
        let flow: FlowKey = (pkt.src, pkt.dst, pkt.proto);
        let escaped = reorder > 0.0 && with_rng(|r| r.gen::<f64>()) < reorder;
        if !escaped {
            if let Some(&last) = w.flows.get(&flow) {
                at = at.max(last);
            }
            w.flows.insert(flow, at);
        }

        // Loss applies to packets whose protocols carry their own recovery:
        // TCP handshake packets (the client retransmits SYNs) and UDP
        // datagrams (applications retry). Stream data is delivered reliably
        // — the measured phenomena live in handshakes and DNS, not in bulk
        // transfer (see crate docs).
        let lossable = pkt.kind.is_handshake() || pkt.proto == Proto::Udp;
        let dropped = lossable && loss > 0.0 && with_rng(|r| r.gen::<f64>()) < loss;
        if dropped {
            w.dropped += 1;
        } else {
            deliveries.push(at);
            if dup > 0.0 && with_rng(|r| r.gen::<f64>()) < dup {
                deliveries.push(at + Duration::from_micros(1));
            }
        }
    }

    // Fire-and-forget delivery tasks: one per surviving copy, spawned on
    // the no-JoinHandle fast path (these are the most frequent spawns in
    // the whole simulator — several per measured packet).
    for at in deliveries {
        let world = Rc::clone(world);
        let pkt = pkt.clone();
        spawn_detached(async move {
            sleep_until(at).await;
            deliver(&world, pkt);
        });
    }
}

fn sample_delay(eff: &Netem) -> Duration {
    if eff.jitter.is_zero() {
        return eff.delay;
    }
    let j = eff.jitter.as_nanos() as i128;
    let offset = with_rng(|r| r.gen_range(-j..=j));
    let base = eff.delay.as_nanos() as i128;
    let total = (base + offset).max(0) as u64;
    Duration::from_nanos(total)
}

/// Delivers a packet at the destination host, dispatching to the protocol
/// state machines.
pub(crate) fn deliver(world: &WorldRc, pkt: Packet) {
    let dst_host = {
        let mut w = world.borrow_mut();
        let Some(&dst_host) = w.routes.get(&pkt.dst.ip()) else {
            w.dropped += 1;
            return;
        };
        w.record(dst_host, Direction::Rx, &pkt);
        if w.hosts[dst_host].blackholes.contains(&pkt.dst.ip()) {
            // The address exists but never answers — the paper's
            // "unresponsive address" for selection tests.
            w.dropped += 1;
            return;
        }
        w.delivered += 1;
        dst_host
    };
    match pkt.proto {
        Proto::Udp => udp::deliver(world, dst_host, pkt),
        Proto::Tcp => tcp::handle_segment(world, dst_host, pkt),
    }
}

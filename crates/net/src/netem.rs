//! Traffic shaping: the simulator's `tc-netem`.
//!
//! The paper shapes traffic with `tc-netem` on the server host (delaying
//! IPv6 packets to provoke the client's Happy Eyeballs fallback, §4.1).
//! [`NetemRule`]s reproduce that: each host carries ordered lists of egress
//! and ingress rules; the first matching rule per list applies. Effects from
//! the sender's egress rule and the receiver's ingress rule combine
//! (delays add, losses compound).

use std::time::Duration;

use crate::addr::{Family, IpPrefix};
use crate::packet::{Packet, Proto};

/// The shaping effect applied to matching packets, mirroring the `tc-netem`
/// knobs the paper uses.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Netem {
    /// Added one-way delay.
    pub delay: Duration,
    /// Uniform jitter: the actual added delay is `delay ± jitter` sampled
    /// from the simulation RNG.
    pub jitter: Duration,
    /// Probability in `[0,1]` of dropping a *handshake* packet (see crate
    /// docs: stream data is delivered reliably).
    pub loss: f64,
    /// Probability in `[0,1]` of duplicating the packet.
    pub duplicate: f64,
    /// Probability in `[0,1]` that a packet may overtake earlier packets of
    /// its flow (escapes the in-order delivery clamp).
    pub reorder: f64,
}

impl Netem {
    /// Pure added delay.
    pub fn delay(d: Duration) -> Netem {
        Netem {
            delay: d,
            ..Netem::default()
        }
    }

    /// Pure added delay in milliseconds (the unit the paper sweeps).
    pub fn delay_ms(ms: u64) -> Netem {
        Netem::delay(Duration::from_millis(ms))
    }

    /// Pure loss probability.
    pub fn loss(p: f64) -> Netem {
        Netem {
            loss: p,
            ..Netem::default()
        }
    }

    /// Adds jitter to this effect.
    pub fn with_jitter(mut self, j: Duration) -> Netem {
        self.jitter = j;
        self
    }

    /// Adds loss to this effect.
    pub fn with_loss(mut self, p: f64) -> Netem {
        self.loss = p;
        self
    }

    /// Adds duplication to this effect.
    pub fn with_duplicate(mut self, p: f64) -> Netem {
        self.duplicate = p;
        self
    }

    /// Adds reordering to this effect.
    pub fn with_reorder(mut self, p: f64) -> Netem {
        self.reorder = p;
        self
    }
}

/// A match-and-shape rule, `tc filter` style: all present selectors must
/// match for the effect to apply.
#[derive(Clone, Debug)]
pub struct NetemRule {
    /// Restrict to one address family (the paper's headline selector).
    pub family: Option<Family>,
    /// Restrict to packets whose destination falls in this prefix.
    pub dst: Option<IpPrefix>,
    /// Restrict to packets whose source falls in this prefix.
    pub src: Option<IpPrefix>,
    /// Restrict to one transport protocol.
    pub proto: Option<Proto>,
    /// Restrict to one destination port (e.g. shape only DNS).
    pub dst_port: Option<u16>,
    /// The effect applied on match.
    pub effect: Netem,
}

impl NetemRule {
    /// A rule with no selectors (matches everything) and the given effect.
    pub fn all(effect: Netem) -> NetemRule {
        NetemRule {
            family: None,
            dst: None,
            src: None,
            proto: None,
            dst_port: None,
            effect,
        }
    }

    /// Rule matching one address family — `tc-netem` delaying IPv6, as in
    /// the paper's CAD experiments.
    pub fn family(family: Family, effect: Netem) -> NetemRule {
        NetemRule {
            family: Some(family),
            ..NetemRule::all(effect)
        }
    }

    /// Restricts the rule to a destination prefix.
    pub fn with_dst(mut self, p: IpPrefix) -> NetemRule {
        self.dst = Some(p);
        self
    }

    /// Restricts the rule to a source prefix.
    pub fn with_src(mut self, p: IpPrefix) -> NetemRule {
        self.src = Some(p);
        self
    }

    /// Restricts the rule to one protocol.
    pub fn with_proto(mut self, proto: Proto) -> NetemRule {
        self.proto = Some(proto);
        self
    }

    /// Restricts the rule to one destination port.
    pub fn with_dst_port(mut self, port: u16) -> NetemRule {
        self.dst_port = Some(port);
        self
    }

    /// Whether this rule matches the packet.
    pub fn matches(&self, pkt: &Packet) -> bool {
        if let Some(fam) = self.family {
            if pkt.family() != fam {
                return false;
            }
        }
        if let Some(p) = &self.dst {
            if !p.contains(pkt.dst.ip()) {
                return false;
            }
        }
        if let Some(p) = &self.src {
            if !p.contains(pkt.src.ip()) {
                return false;
            }
        }
        if let Some(proto) = self.proto {
            if pkt.proto != proto {
                return false;
            }
        }
        if let Some(port) = self.dst_port {
            if pkt.dst.port() != port {
                return false;
            }
        }
        true
    }
}

/// Finds the first matching rule's effect, `tc` style.
pub fn first_match(rules: &[NetemRule], pkt: &Packet) -> Option<Netem> {
    rules.iter().find(|r| r.matches(pkt)).map(|r| r.effect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{v4, v6};
    use crate::packet::PacketKind;
    use std::net::SocketAddr;

    fn pkt(src: &str, dst: &str, proto: Proto) -> Packet {
        let s: std::net::IpAddr = src.parse().unwrap();
        let d: std::net::IpAddr = dst.parse().unwrap();
        Packet {
            src: SocketAddr::new(s, 40000),
            dst: SocketAddr::new(d, 80),
            proto,
            kind: PacketKind::Syn,
        }
    }

    #[test]
    fn family_rule_selects_only_that_family() {
        let rule = NetemRule::family(Family::V6, Netem::delay_ms(250));
        assert!(rule.matches(&pkt("2001:db8::1", "2001:db8::2", Proto::Tcp)));
        assert!(!rule.matches(&pkt("192.0.2.1", "192.0.2.2", Proto::Tcp)));
    }

    #[test]
    fn first_match_wins() {
        let rules = vec![
            NetemRule::family(Family::V6, Netem::delay_ms(100)),
            NetemRule::all(Netem::delay_ms(5)),
        ];
        let v6pkt = pkt("2001:db8::1", "2001:db8::2", Proto::Tcp);
        let v4pkt = pkt("192.0.2.1", "192.0.2.2", Proto::Tcp);
        assert_eq!(first_match(&rules, &v6pkt), Some(Netem::delay_ms(100)));
        assert_eq!(first_match(&rules, &v4pkt), Some(Netem::delay_ms(5)));
    }

    #[test]
    fn no_match_returns_none() {
        let rules = vec![NetemRule::family(Family::V6, Netem::delay_ms(100))];
        assert_eq!(
            first_match(&rules, &pkt("10.0.0.1", "10.0.0.2", Proto::Udp)),
            None
        );
    }

    #[test]
    fn prefix_and_port_selectors() {
        let rule = NetemRule::all(Netem::delay_ms(50))
            .with_dst(IpPrefix::new(v4("192.0.2.0"), 24))
            .with_dst_port(53)
            .with_proto(Proto::Udp);
        let mut p = pkt("10.0.0.1", "192.0.2.9", Proto::Udp);
        p.dst.set_port(53);
        assert!(rule.matches(&p));
        p.dst.set_port(80);
        assert!(!rule.matches(&p));
    }

    #[test]
    fn src_selector() {
        let rule =
            NetemRule::all(Netem::delay_ms(10)).with_src(IpPrefix::new(v6("2001:db8::"), 64));
        assert!(rule.matches(&pkt("2001:db8::42", "2001:db8:1::1", Proto::Tcp)));
        assert!(!rule.matches(&pkt("2001:db9::42", "2001:db8:1::1", Proto::Tcp)));
    }

    #[test]
    fn builders_compose() {
        let n = Netem::delay_ms(100)
            .with_jitter(Duration::from_millis(5))
            .with_loss(0.1)
            .with_duplicate(0.01)
            .with_reorder(0.02);
        assert_eq!(n.delay, Duration::from_millis(100));
        assert_eq!(n.jitter, Duration::from_millis(5));
        assert!((n.loss - 0.1).abs() < 1e-12);
    }
}

//! TCP as Happy Eyeballs observes it: the three-way handshake with SYN
//! retransmission, RST-vs-blackhole failure modes, accept queues and
//! ordered reliable streams.
//!
//! Sequence numbers, windows and congestion control are deliberately not
//! modelled — no HE-measurable behaviour depends on them. What *is*
//! modelled faithfully is everything a packet capture of a connection
//! attempt shows: SYN timing (the CAD observable), SYN retransmission with
//! exponential backoff, refused vs. silently-dropped connections, and
//! ordered data delivery for the HTTP layer on top.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::rc::Rc;
use std::task::{Poll, Waker};
use std::time::Duration;

use bytes::Bytes;
use lazyeye_sim::sync::mpsc;
use lazyeye_sim::{timeout, Elapsed};

use crate::error::NetError;
use crate::packet::{Packet, PacketKind, Proto};
use crate::world::{ClosedPortPolicy, ConnKey, WorldRc};

/// Handshake/stream phase of one connection endpoint.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum Phase {
    SynSent,
    SynReceived,
    Established,
    Closed,
}

/// Handshake notification to a pending `connect` future.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum ConnEvent {
    Established,
    Refused,
}

pub(crate) struct ConnState {
    pub phase: Phase,
    /// Notifies the client-side connect future.
    pub events: Option<mpsc::Sender<ConnEvent>>,
    pub recv: VecDeque<u8>,
    pub fin_received: bool,
    pub reset: bool,
    pub read_waker: Option<Waker>,
}

impl ConnState {
    fn new(phase: Phase) -> ConnState {
        ConnState {
            phase,
            events: None,
            recv: VecDeque::new(),
            fin_received: false,
            reset: false,
            read_waker: None,
        }
    }
}

pub(crate) struct ListenerState {
    pub queue: VecDeque<ConnKey>,
    pub waker: Option<Waker>,
    pub backlog: usize,
    pub closed: bool,
}

/// Options controlling connection establishment, mirroring the OS knobs the
/// measured clients inherit (Linux `tcp_syn_retries` style).
#[derive(Copy, Clone, Debug)]
pub struct ConnectOpts {
    /// Initial SYN retransmission timeout; doubles per retry.
    pub syn_rto: Duration,
    /// Number of *re*transmissions after the first SYN.
    pub syn_retries: u32,
}

impl Default for ConnectOpts {
    fn default() -> Self {
        // Linux defaults: 1s initial RTO, 6 retries (~63 s give-up) — the
        // long timeout wget users experience when nothing answers.
        ConnectOpts {
            syn_rto: Duration::from_secs(1),
            syn_retries: 6,
        }
    }
}

/// Client-side connect: allocates a source endpoint, races SYNs against the
/// retransmission schedule, resolves to a stream or a definite error.
pub(crate) async fn connect(
    world: WorldRc,
    host: usize,
    remote: SocketAddr,
    opts: ConnectOpts,
) -> Result<TcpStream, NetError> {
    let (tx, mut rx) = mpsc::unbounded();
    let key: ConnKey = {
        let mut w = world.borrow_mut();
        let Some(src_ip) = w.hosts[host].pick_source(remote.ip()) else {
            return Err(NetError::NoRoute);
        };
        let port = w.hosts[host].alloc_ephemeral();
        let local = SocketAddr::new(src_ip, port);
        let key = (local, remote);
        let mut conn = ConnState::new(Phase::SynSent);
        conn.events = Some(tx);
        w.hosts[host]
            .tcp_conns
            .insert(key, Rc::new(std::cell::RefCell::new(conn)));
        key
    };

    let mut rto = opts.syn_rto;
    for _attempt in 0..=opts.syn_retries {
        crate::world::send_packet(
            &world,
            host,
            Packet {
                src: key.0,
                dst: key.1,
                proto: Proto::Tcp,
                kind: PacketKind::Syn,
            },
        );
        match timeout(rto, rx.recv()).await {
            Ok(Some(ConnEvent::Established)) => {
                crate::world::send_packet(
                    &world,
                    host,
                    Packet {
                        src: key.0,
                        dst: key.1,
                        proto: Proto::Tcp,
                        kind: PacketKind::Ack,
                    },
                );
                return Ok(TcpStream { world, host, key });
            }
            Ok(Some(ConnEvent::Refused)) => {
                world.borrow_mut().hosts[host].tcp_conns.remove(&key);
                return Err(NetError::ConnectionRefused);
            }
            Ok(None) => unreachable!("conn event channel closed while conn exists"),
            Err(Elapsed) => {
                rto = rto.saturating_mul(2);
            }
        }
    }
    world.borrow_mut().hosts[host].tcp_conns.remove(&key);
    Err(NetError::TimedOut)
}

/// Registers a listener. `addr.ip()` may be an unspecified address to
/// accept on every host address of either family.
pub(crate) fn listen(
    world: &WorldRc,
    host: usize,
    addr: SocketAddr,
    backlog: usize,
) -> Result<TcpListener, NetError> {
    let state = Rc::new(std::cell::RefCell::new(ListenerState {
        queue: VecDeque::new(),
        waker: None,
        backlog,
        closed: false,
    }));
    let mut w = world.borrow_mut();
    if addr.ip().is_unspecified() {
        if w.hosts[host].tcp_listeners_any.contains_key(&addr.port()) {
            return Err(NetError::AddrInUse);
        }
        w.hosts[host]
            .tcp_listeners_any
            .insert(addr.port(), Rc::clone(&state));
    } else {
        if !w.hosts[host].addrs.contains(&addr.ip()) {
            return Err(NetError::AddrNotAvailable);
        }
        let k = (addr.ip(), addr.port());
        if w.hosts[host].tcp_listeners.contains_key(&k) {
            return Err(NetError::AddrInUse);
        }
        w.hosts[host].tcp_listeners.insert(k, Rc::clone(&state));
    }
    Ok(TcpListener {
        world: Rc::clone(world),
        host,
        addr,
        state,
    })
}

/// Per-segment handler on the destination host.
pub(crate) fn handle_segment(world: &WorldRc, host: usize, pkt: Packet) {
    // The packet's dst is the local side on this host.
    let key: ConnKey = (pkt.dst, pkt.src);
    match pkt.kind {
        PacketKind::Syn => handle_syn(world, host, &pkt),
        PacketKind::SynAck => {
            let conn = lookup(world, host, key);
            let Some(conn) = conn else { return };
            let mut c = conn.borrow_mut();
            if c.phase == Phase::SynSent {
                c.phase = Phase::Established;
                if let Some(ev) = &c.events {
                    let _ = ev.send(ConnEvent::Established);
                }
            }
            // Duplicate SYN-ACKs (from retransmitted SYNs) are ignored; the
            // final ACK below is idempotent on the server.
        }
        PacketKind::Ack => {
            let conn = lookup(world, host, key);
            let Some(conn) = conn else { return };
            let established = {
                let mut c = conn.borrow_mut();
                if c.phase == Phase::SynReceived {
                    c.phase = Phase::Established;
                    true
                } else {
                    false
                }
            };
            if established {
                enqueue_accept(world, host, key);
            }
        }
        PacketKind::Rst => {
            let conn = lookup(world, host, key);
            let Some(conn) = conn else { return };
            let mut c = conn.borrow_mut();
            match c.phase {
                Phase::SynSent => {
                    if let Some(ev) = &c.events {
                        let _ = ev.send(ConnEvent::Refused);
                    }
                    c.phase = Phase::Closed;
                }
                _ => {
                    c.reset = true;
                    c.phase = Phase::Closed;
                    if let Some(w) = c.read_waker.take() {
                        w.wake();
                    }
                }
            }
        }
        PacketKind::Data(payload) => {
            let conn = lookup(world, host, key);
            let Some(conn) = conn else { return };
            let promote = {
                let mut c = conn.borrow_mut();
                let promote = c.phase == Phase::SynReceived;
                if promote {
                    // Data implies the peer's ACK was lost; promote like
                    // real TCP would on an ACK-bearing segment.
                    c.phase = Phase::Established;
                }
                c.recv.extend(payload.iter());
                if let Some(w) = c.read_waker.take() {
                    w.wake();
                }
                promote
            };
            if promote {
                enqueue_accept(world, host, key);
            }
        }
        PacketKind::Fin => {
            let conn = lookup(world, host, key);
            let Some(conn) = conn else { return };
            let mut c = conn.borrow_mut();
            c.fin_received = true;
            if let Some(w) = c.read_waker.take() {
                w.wake();
            }
        }
        PacketKind::Datagram(_) => unreachable!("datagram dispatched as TCP"),
    }
}

fn lookup(world: &WorldRc, host: usize, key: ConnKey) -> Option<Rc<std::cell::RefCell<ConnState>>> {
    world.borrow().hosts[host].tcp_conns.get(&key).cloned()
}

fn handle_syn(world: &WorldRc, host: usize, pkt: &Packet) {
    let key: ConnKey = (pkt.dst, pkt.src);
    enum Action {
        ReplySynAck,
        ReplyRst,
        Ignore,
    }
    let action = {
        let mut w = world.borrow_mut();
        let hs = &mut w.hosts[host];
        if let Some(conn) = hs.tcp_conns.get(&key) {
            // Retransmitted SYN for a known connection: re-answer.
            match conn.borrow().phase {
                Phase::SynReceived | Phase::Established => Action::ReplySynAck,
                _ => Action::Ignore,
            }
        } else {
            let listener = hs
                .tcp_listeners
                .get(&(pkt.dst.ip(), pkt.dst.port()))
                .or_else(|| hs.tcp_listeners_any.get(&pkt.dst.port()))
                .cloned();
            match listener {
                Some(l) => {
                    let full = {
                        let l = l.borrow();
                        l.closed || l.queue.len() >= l.backlog
                    };
                    if full {
                        Action::Ignore
                    } else {
                        let conn = ConnState::new(Phase::SynReceived);
                        hs.tcp_conns
                            .insert(key, Rc::new(std::cell::RefCell::new(conn)));
                        Action::ReplySynAck
                    }
                }
                None => match hs.closed_port_policy {
                    ClosedPortPolicy::Rst => Action::ReplyRst,
                    ClosedPortPolicy::Drop => Action::Ignore,
                },
            }
        }
    };
    match action {
        Action::ReplySynAck => crate::world::send_packet(
            world,
            host,
            Packet {
                src: pkt.dst,
                dst: pkt.src,
                proto: Proto::Tcp,
                kind: PacketKind::SynAck,
            },
        ),
        Action::ReplyRst => crate::world::send_packet(
            world,
            host,
            Packet {
                src: pkt.dst,
                dst: pkt.src,
                proto: Proto::Tcp,
                kind: PacketKind::Rst,
            },
        ),
        Action::Ignore => {}
    }
}

fn enqueue_accept(world: &WorldRc, host: usize, key: ConnKey) {
    let listener = {
        let w = world.borrow();
        let hs = &w.hosts[host];
        hs.tcp_listeners
            .get(&(key.0.ip(), key.0.port()))
            .or_else(|| hs.tcp_listeners_any.get(&key.0.port()))
            .cloned()
    };
    let Some(listener) = listener else { return };
    let mut l = listener.borrow_mut();
    if l.closed {
        return;
    }
    l.queue.push_back(key);
    if let Some(w) = l.waker.take() {
        w.wake();
    }
}

/// A listening socket; accept connections with [`TcpListener::accept`].
pub struct TcpListener {
    world: WorldRc,
    host: usize,
    addr: SocketAddr,
    state: Rc<std::cell::RefCell<ListenerState>>,
}

impl std::fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpListener")
            .field("addr", &self.addr)
            .finish()
    }
}

impl TcpListener {
    /// The bound address (possibly wildcard).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the next fully established connection.
    pub async fn accept(&self) -> Result<(TcpStream, SocketAddr), NetError> {
        let key = AcceptFut {
            state: Rc::clone(&self.state),
        }
        .await?;
        Ok((
            TcpStream {
                world: Rc::clone(&self.world),
                host: self.host,
                key,
            },
            key.1,
        ))
    }
}

impl Drop for TcpListener {
    fn drop(&mut self) {
        self.state.borrow_mut().closed = true;
        let mut w = self.world.borrow_mut();
        if self.addr.ip().is_unspecified() {
            w.hosts[self.host]
                .tcp_listeners_any
                .remove(&self.addr.port());
        } else {
            w.hosts[self.host]
                .tcp_listeners
                .remove(&(self.addr.ip(), self.addr.port()));
        }
    }
}

struct AcceptFut {
    state: Rc<std::cell::RefCell<ListenerState>>,
}

impl std::future::Future for AcceptFut {
    type Output = Result<ConnKey, NetError>;
    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut std::task::Context<'_>) -> Poll<Self::Output> {
        let mut l = self.state.borrow_mut();
        if let Some(key) = l.queue.pop_front() {
            return Poll::Ready(Ok(key));
        }
        if l.closed {
            return Poll::Ready(Err(NetError::Closed));
        }
        l.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// One end of an established connection: ordered reliable byte stream.
pub struct TcpStream {
    world: WorldRc,
    host: usize,
    key: ConnKey,
}

impl std::fmt::Debug for TcpStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpStream")
            .field("local", &self.key.0)
            .field("remote", &self.key.1)
            .finish()
    }
}

/// Maximum payload carried per simulated segment.
const MSS: usize = 1400;

impl TcpStream {
    /// Local endpoint (source address HE selected).
    pub fn local_addr(&self) -> SocketAddr {
        self.key.0
    }

    /// Remote endpoint.
    pub fn peer_addr(&self) -> SocketAddr {
        self.key.1
    }

    /// Address family of this connection — the Happy Eyeballs outcome.
    pub fn family(&self) -> crate::addr::Family {
        crate::addr::Family::of(self.key.1.ip())
    }

    fn conn(&self) -> Option<Rc<std::cell::RefCell<ConnState>>> {
        self.world.borrow().hosts[self.host]
            .tcp_conns
            .get(&self.key)
            .cloned()
    }

    /// Sends bytes (segmented at MSS); delivery is ordered and reliable.
    pub fn write(&self, data: &[u8]) -> Result<(), NetError> {
        let conn = self.conn().ok_or(NetError::Closed)?;
        {
            let c = conn.borrow();
            if c.reset {
                return Err(NetError::ConnectionReset);
            }
            if c.phase == Phase::Closed {
                return Err(NetError::Closed);
            }
        }
        for chunk in data.chunks(MSS) {
            crate::world::send_packet(
                &self.world,
                self.host,
                Packet {
                    src: self.key.0,
                    dst: self.key.1,
                    proto: Proto::Tcp,
                    kind: PacketKind::Data(Bytes::copy_from_slice(chunk)),
                },
            );
        }
        Ok(())
    }

    /// Reads whatever is available (up to `max` bytes), waiting if the
    /// buffer is empty. `Ok(None)` signals a clean end of stream.
    pub async fn read(&self, max: usize) -> Result<Option<Bytes>, NetError> {
        ReadFut { stream: self, max }.await
    }

    /// Reads until the peer closes, returning the whole stream tail.
    pub async fn read_to_end(&self) -> Result<Bytes, NetError> {
        let mut out = Vec::new();
        while let Some(chunk) = self.read(usize::MAX).await? {
            out.extend_from_slice(&chunk);
        }
        Ok(Bytes::from(out))
    }

    /// Reads exactly `n` bytes; errors with [`NetError::Closed`] if the
    /// stream ends first.
    pub async fn read_exact(&self, n: usize) -> Result<Bytes, NetError> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.read(n - out.len()).await? {
                Some(chunk) => out.extend_from_slice(&chunk),
                None => return Err(NetError::Closed),
            }
        }
        Ok(Bytes::from(out))
    }

    /// Reads until (and including) the delimiter byte sequence appears.
    pub async fn read_until(&self, delim: &[u8]) -> Result<Bytes, NetError> {
        let mut out: Vec<u8> = Vec::new();
        loop {
            if out.windows(delim.len()).any(|w| w == delim) {
                return Ok(Bytes::from(out));
            }
            match self.read(usize::MAX).await? {
                Some(chunk) => out.extend_from_slice(&chunk),
                None => return Err(NetError::Closed),
            }
        }
    }

    /// Half-closes the stream (sends FIN). Reads on the peer will drain the
    /// buffer and then observe end-of-stream.
    pub fn close(&self) {
        let Some(conn) = self.conn() else { return };
        let already_closed = {
            let mut c = conn.borrow_mut();
            let was = c.phase == Phase::Closed;
            c.phase = Phase::Closed;
            was
        };
        if !already_closed && lazyeye_sim::has_current() {
            crate::world::send_packet(
                &self.world,
                self.host,
                Packet {
                    src: self.key.0,
                    dst: self.key.1,
                    proto: Proto::Tcp,
                    kind: PacketKind::Fin,
                },
            );
        }
    }
}

impl Drop for TcpStream {
    fn drop(&mut self) {
        self.close();
        self.world.borrow_mut().hosts[self.host]
            .tcp_conns
            .remove(&self.key);
    }
}

struct ReadFut<'a> {
    stream: &'a TcpStream,
    max: usize,
}

impl std::future::Future for ReadFut<'_> {
    type Output = Result<Option<Bytes>, NetError>;
    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut std::task::Context<'_>) -> Poll<Self::Output> {
        let Some(conn) = self.stream.conn() else {
            return Poll::Ready(Ok(None));
        };
        let mut c = conn.borrow_mut();
        if !c.recv.is_empty() {
            let n = self.max.min(c.recv.len());
            let chunk: Vec<u8> = c.recv.drain(..n).collect();
            return Poll::Ready(Ok(Some(Bytes::from(chunk))));
        }
        if c.reset {
            return Poll::Ready(Err(NetError::ConnectionReset));
        }
        if c.fin_received || c.phase == Phase::Closed {
            return Poll::Ready(Ok(None));
        }
        c.read_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

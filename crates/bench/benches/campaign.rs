//! Criterion: campaign orchestrator throughput — end-to-end runs/second
//! at 1, 4 and 8 workers, tracking scheduler + aggregation overhead
//! against the single-run baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use lazyeye_campaign::{run_campaign, CampaignSpec, NetemSpec, SelectionPlan};
use lazyeye_testbed::{CadCaseConfig, ResolverCaseConfig, SweepSpec};

/// A ~100-run matrix across all four case families: large enough for the
/// stealing to matter, small enough to iterate in a bench window.
fn bench_spec() -> CampaignSpec {
    CampaignSpec {
        name: "bench".into(),
        seed: 7,
        clients: vec![
            "chrome-130.0".into(),
            "firefox-132.0".into(),
            "curl-7.88.1".into(),
        ],
        resolvers: vec!["BIND".into(), "Unbound".into()],
        netem: vec![NetemSpec::baseline()],
        cad: Some(CadCaseConfig {
            sweep: SweepSpec::new(0, 400, 50),
            repetitions: 2,
        }),
        rd: None,
        selection: Some(SelectionPlan {
            repetitions: 2,
            ..SelectionPlan::default()
        }),
        resolver: Some(ResolverCaseConfig {
            sweep: SweepSpec::new(0, 600, 200),
            repetitions: 2,
        }),
        refine_step_ms: Some(5),
    }
}

fn bench(c: &mut Criterion) {
    for jobs in [1usize, 4, 8] {
        c.bench_function(&format!("campaign_100runs_jobs{jobs}"), |b| {
            let spec = bench_spec();
            b.iter(|| {
                let report = run_campaign(&spec, jobs, |_, _| {}).unwrap();
                std::hint::black_box(report.total_runs)
            })
        });
    }

    // Orchestration-only overhead: expansion + aggregation of an already
    // tiny workload, isolating the non-simulation cost.
    c.bench_function("campaign_expand_625runs", |b| {
        let spec = CampaignSpec::default();
        b.iter(|| std::hint::black_box(lazyeye_campaign::expand(&spec).unwrap().len()))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);

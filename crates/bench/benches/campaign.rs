//! Criterion: campaign orchestrator throughput — end-to-end runs/second
//! at 1, 4 and 8 workers, tracking scheduler + aggregation overhead
//! against the single-run baseline.
//!
//! Also emits the `campaign` section of `BENCH.json`: end-to-end
//! runs/sec of the fixed bench campaign plus the deterministic scheduler
//! counters of one fixed-seed `--jobs 1` execution (CI-gated against the
//! checked-in baseline).

use criterion::{criterion_group, criterion_main, Criterion};
use lazyeye_bench::bench_json;
use lazyeye_campaign::{run_campaign, CampaignSpec, NetemSpec, SelectionPlan};
use lazyeye_json::Json;
use lazyeye_testbed::{CadCaseConfig, ResolverCaseConfig, SweepSpec};

/// Emits the `campaign` section of `BENCH.json`.
fn emit_json(_c: &mut Criterion) {
    let spec = bench_spec();
    // Throughput: sequential (jobs=1) end-to-end runs/sec — the per-run
    // cost every campaign cell pays, with worker-pool arena reuse.
    for _ in 0..20 {
        std::hint::black_box(run_campaign(&spec, 1, |_, _| {}).unwrap().total_runs);
    }
    let t0 = std::time::Instant::now();
    let mut total_runs = 0u64;
    let iters = 200;
    for _ in 0..iters {
        total_runs += run_campaign(&spec, 1, |_, _| {}).unwrap().total_runs;
    }
    let runs_per_sec = total_runs as f64 / t0.elapsed().as_secs_f64();
    println!("campaign throughput jobs=1: {runs_per_sec:.0} runs/sec");

    // Counters: one fixed-seed campaign at --jobs 1 (deterministic).
    // Per-sim tallies flush into the obs registry on each run's Sim drop
    // (back into the worker pool), so the registry is complete at read
    // time.
    bench_json::reset_counters();
    let report = run_campaign(&spec, 1, |_, _| {}).unwrap();

    bench_json::merge_section(
        "campaign",
        Json::obj(vec![
            ("runs_per_sec_jobs1", Json::Int(runs_per_sec as i64)),
            ("smoke_total_runs", Json::UInt(report.total_runs)),
            ("counters", bench_json::counters()),
        ]),
    );
}

/// A ~100-run matrix across all four case families: large enough for the
/// stealing to matter, small enough to iterate in a bench window.
fn bench_spec() -> CampaignSpec {
    CampaignSpec {
        name: "bench".into(),
        seed: 7,
        clients: vec![
            "chrome-130.0".into(),
            "firefox-132.0".into(),
            "curl-7.88.1".into(),
        ],
        resolvers: vec!["BIND".into(), "Unbound".into()],
        netem: vec![NetemSpec::baseline()],
        cad: Some(CadCaseConfig {
            sweep: SweepSpec::new(0, 400, 50),
            repetitions: 2,
        }),
        rd: None,
        selection: Some(SelectionPlan {
            repetitions: 2,
            ..SelectionPlan::default()
        }),
        resolver: Some(ResolverCaseConfig {
            sweep: SweepSpec::new(0, 600, 200),
            repetitions: 2,
        }),
        refine_step_ms: Some(5),
    }
}

fn bench(c: &mut Criterion) {
    for jobs in [1usize, 4, 8] {
        c.bench_function(&format!("campaign_100runs_jobs{jobs}"), |b| {
            let spec = bench_spec();
            b.iter(|| {
                let report = run_campaign(&spec, jobs, |_, _| {}).unwrap();
                std::hint::black_box(report.total_runs)
            })
        });
    }

    // Orchestration-only overhead: expansion + aggregation of an already
    // tiny workload, isolating the non-simulation cost.
    c.bench_function("campaign_expand_625runs", |b| {
        let spec = CampaignSpec::default();
        b.iter(|| std::hint::black_box(lazyeye_campaign::expand(&spec).unwrap().len()))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = emit_json, bench
}
criterion_main!(benches);

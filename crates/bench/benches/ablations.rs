//! Criterion ablations for the design choices DESIGN.md calls out:
//!
//! 1. fixed vs dynamic CAD — time-to-connect under broken IPv6;
//! 2. Resolution Delay present vs absent under a slow A lookup (the §5.2
//!    stall pathology, measured as virtual time-to-connect);
//! 3. interlacing strategies when the first k preferred addresses are
//!    dead;
//! 4. resolver same-address backoff vs plain failover.
//!
//! Criterion measures *wall-clock* cost of running each scenario; each
//! bench also asserts the virtual-time outcome it is about, so the
//! ablation conclusions are checked on every run.

use criterion::{criterion_group, criterion_main, Criterion};
use lazyeye_clients::Client;
use lazyeye_core::{CadMode, InterlaceStrategy};
use lazyeye_net::Family;
use lazyeye_testbed::topology::{default_local_topology, resolver_addr, test_domain_topology, www};
use std::time::Duration;

fn chrome() -> lazyeye_clients::ClientProfile {
    lazyeye_clients::figure2_clients()
        .into_iter()
        .find(|c| c.name == "Chrome" && c.version == "130.0")
        .unwrap()
}

fn safari() -> lazyeye_clients::ClientProfile {
    lazyeye_clients::safari_clients()
        .into_iter()
        .find(|c| !c.mobile)
        .unwrap()
}

/// Virtual time to connect under a dead IPv6 path for a given CAD mode.
fn ttc_with_cad(cad: CadMode, warm_rtt: Option<Duration>) -> Duration {
    let mut topo = default_local_topology(5);
    topo.server.blackhole("2001:db8::1".parse().unwrap());
    let mut profile = chrome();
    profile.he.cad = cad;
    let client = Client::new(profile, topo.client.clone(), vec![resolver_addr()]);
    if let Some(rtt) = warm_rtt {
        client
            .history()
            .record_rtt("2001:db8::1".parse().unwrap(), rtt);
        client
            .history()
            .record_rtt("192.0.2.1".parse().unwrap(), rtt);
    }
    let res = topo
        .sim
        .block_on(async move { client.connect_only(&www(), 80).await });
    res.log.time_to_connect().expect("v4 fallback connects")
}

fn bench(c: &mut Criterion) {
    // --- Ablation 1: fixed vs dynamic CAD under broken IPv6 -------------
    c.bench_function("ablate_cad_fixed_250ms_broken_v6", |b| {
        b.iter(|| {
            let ttc = ttc_with_cad(CadMode::Fixed(Duration::from_millis(250)), None);
            assert!(ttc >= Duration::from_millis(250));
            std::hint::black_box(ttc)
        })
    });
    c.bench_function("ablate_cad_dynamic_warm_broken_v6", |b| {
        b.iter(|| {
            // Warm history (1 ms RTT): dynamic CAD clamps to the 10 ms
            // minimum — an order of magnitude faster fallback than fixed.
            let ttc = ttc_with_cad(CadMode::rfc_dynamic(), Some(Duration::from_millis(1)));
            assert!(ttc < Duration::from_millis(50));
            std::hint::black_box(ttc)
        })
    });

    // --- Ablation 2: RD vs stall under slow A ---------------------------
    c.bench_function("ablate_rd_absent_slow_a_stalls", |b| {
        use lazyeye_testbed::{run_rd_case, DelayedRecord, RdCaseConfig, SweepSpec};
        b.iter(|| {
            let cfg = RdCaseConfig {
                delayed: DelayedRecord::A,
                sweep: SweepSpec::new(800, 800, 1),
                repetitions: 1,
            };
            let stall = run_rd_case(&chrome(), &cfg, 8)[0].first_attempt_ms.unwrap();
            assert!(stall >= 800.0, "no RD => stall");
            std::hint::black_box(stall)
        })
    });
    c.bench_function("ablate_rd_present_slow_a_no_stall", |b| {
        use lazyeye_testbed::{run_rd_case, DelayedRecord, RdCaseConfig, SweepSpec};
        b.iter(|| {
            let cfg = RdCaseConfig {
                delayed: DelayedRecord::A,
                sweep: SweepSpec::new(800, 800, 1),
                repetitions: 1,
            };
            let first = run_rd_case(&safari(), &cfg, 8)[0].first_attempt_ms.unwrap();
            assert!(first < 50.0, "RD => immediate v6");
            std::hint::black_box(first)
        })
    });

    // --- Ablation 3: interlacing with dead preferred addresses ----------
    for (label, strategy) in [
        (
            "rfc8305",
            InterlaceStrategy::Rfc8305 {
                first_family_count: 1,
            },
        ),
        ("safari", InterlaceStrategy::SafariStyle),
        ("hev1", InterlaceStrategy::Hev1SingleFallback),
    ] {
        c.bench_function(&format!("ablate_interlace_{label}_3dead_v6"), |b| {
            b.iter(|| {
                // 3 dead v6 + 1 live v4: strategies differ in how many
                // dead addresses they wade through.
                let mut topo = test_domain_topology(
                    9,
                    "abl.test",
                    vec!["192.0.2.1".parse().unwrap()],
                    (1..=3)
                        .map(|i| format!("2001:db8:dead::{i}").parse().unwrap())
                        .collect(),
                );
                let mut profile = chrome();
                profile.he.interlace = strategy;
                profile.he.quirks.stop_after_first_pair = false;
                profile.he.attempt_timeout = Duration::from_secs(2);
                let client = Client::new(profile, topo.client.clone(), vec![resolver_addr()]);
                let qname = lazyeye_dns::Name::parse("d0-tnone-nabl.abl.test").unwrap();
                let res = topo
                    .sim
                    .block_on(async move { client.connect_only(&qname, 80).await });
                assert_eq!(
                    res.connection.as_ref().ok().map(|c| c.family()),
                    Some(Family::V4),
                    "{label} must reach the live v4 address"
                );
                std::hint::black_box(res.log.time_to_connect())
            })
        });
    }

    // --- Ablation 4: resolver backoff vs plain failover ------------------
    // 0.44 is Unbound's observed same-address retry probability; 1.0 would
    // never fail over at all (the plan caps at max_attempts on one addr).
    for (label, retry_same) in [("backoff", 0.44f64), ("failover", 0.0f64)] {
        c.bench_function(&format!("ablate_resolver_{label}_dead_v6_ns"), |b| {
            use lazyeye_resolver::{unbound, RecursiveConfig, RecursiveResolver};
            use lazyeye_testbed::topology::resolver_topology;
            b.iter(|| {
                let mut topo = resolver_topology(11, "abl");
                topo.auth.blackhole("2001:db8:53::53".parse().unwrap());
                let mut cfg = RecursiveConfig::new(topo.roots.clone());
                cfg.policy = unbound().policy;
                cfg.policy.v6_preference = lazyeye_resolver::V6Preference::Always;
                cfg.policy.retry_same_prob = retry_same;
                let resolver = RecursiveResolver::new(topo.resolver_host.clone(), cfg);
                let qname = topo.qname.clone();
                let ok = topo.sim.block_on(async move {
                    resolver
                        .resolve(&qname, lazyeye_dns::RrType::A)
                        .await
                        .is_ok()
                });
                let v6_rx = topo
                    .auth
                    .capture()
                    .udp_rx()
                    .filter(|r| r.family() == Family::V6)
                    .count();
                if label == "failover" {
                    assert!(ok, "plain failover always reaches the v4 address");
                } else {
                    // Backoff may burn the whole attempt budget on the dead
                    // address (that is the cost being measured); either way
                    // the retries must be visible at the auth server.
                    assert!(ok || v6_rx >= 2, "backoff must at least retry v6");
                }
                // Backoff spends extra virtual time on the dead address.
                std::hint::black_box(topo.sim.now())
            })
        });
    }
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);

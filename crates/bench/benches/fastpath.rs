//! Criterion: compiled fast path vs full simulation on a CAD-sweep
//! campaign — end-to-end runs/second both ways.
//!
//! Also emits the `fastpath` section of `BENCH.json`: both throughput
//! series, plus the deterministic calibration/run/fallback counters of
//! one fixed-seed `--jobs 1` fast execution. `bench_check` pins the
//! counters against the checked-in baseline and gates the speedup at
//! ≥ 2× (both numbers come from the same run on the same machine, so
//! the gate is machine-independent).

use criterion::{criterion_group, criterion_main, Criterion};
use lazyeye_bench::bench_json;
use lazyeye_campaign::{run_campaign_with, CampaignSpec, NetemSpec};
use lazyeye_json::Json;
use lazyeye_testbed::{CadCaseConfig, SweepSpec};

/// Runs/sec of `iters` sequential executions of the bench campaign.
fn throughput(spec: &CampaignSpec, iters: u32, fast: bool) -> f64 {
    for _ in 0..10 {
        std::hint::black_box(
            run_campaign_with(spec, 1, fast, |_, _| {})
                .unwrap()
                .total_runs,
        );
    }
    let t0 = std::time::Instant::now();
    let mut total_runs = 0u64;
    for _ in 0..iters {
        total_runs += run_campaign_with(spec, 1, fast, |_, _| {})
            .unwrap()
            .total_runs;
    }
    total_runs as f64 / t0.elapsed().as_secs_f64()
}

/// Emits the `fastpath` section of `BENCH.json`.
fn emit_json(_c: &mut Criterion) {
    let spec = bench_spec();
    let sim_rps = throughput(&spec, 50, false);
    let fast_rps = throughput(&spec, 200, true);
    println!(
        "fastpath sweep: simulated {sim_rps:.0} runs/sec, compiled {fast_rps:.0} runs/sec ({:.1}x)",
        fast_rps / sim_rps
    );

    // Counters: one fixed-seed fast campaign at --jobs 1. Calibration
    // count, fast-run count and fallback count are all deterministic
    // functions of (spec, seed).
    bench_json::reset_counters();
    let report = run_campaign_with(&spec, 1, true, |_, _| {}).unwrap();
    let fp = |name: &'static str| {
        Json::UInt(lazyeye_obs::counter(name, lazyeye_obs::Clock::Virtual).get())
    };

    bench_json::merge_section(
        "fastpath",
        Json::obj(vec![
            ("fast_runs_per_sec", Json::Int(fast_rps as i64)),
            ("sim_runs_per_sec", Json::Int(sim_rps as i64)),
            ("smoke_total_runs", Json::UInt(report.total_runs)),
            (
                "counters",
                Json::obj(vec![
                    ("calibrations", fp("fastpath.calibrations")),
                    ("fast_runs", fp("fastpath.runs")),
                    ("fallbacks", fp("fastpath.fallbacks")),
                ]),
            ),
        ]),
    );
}

/// A CAD-sweep campaign: the workload the compiled fast path targets.
/// Three clients across the default 0–400 ms sweep with the refinement
/// pass on — every run is eligible (baseline netem), so the comparison
/// isolates analytic drive vs full simulation.
fn bench_spec() -> CampaignSpec {
    CampaignSpec {
        name: "bench-fastpath".into(),
        seed: 7,
        clients: vec![
            "chrome-130.0".into(),
            "firefox-132.0".into(),
            "curl-7.88.1".into(),
        ],
        resolvers: Vec::new(),
        netem: vec![NetemSpec::baseline()],
        cad: Some(CadCaseConfig {
            sweep: SweepSpec::new(0, 400, 20),
            repetitions: 3,
        }),
        rd: None,
        selection: None,
        resolver: None,
        refine_step_ms: Some(5),
    }
}

fn bench(c: &mut Criterion) {
    for fast in [false, true] {
        let label = if fast { "fast" } else { "sim" };
        c.bench_function(&format!("cad_sweep_campaign_{label}"), |b| {
            let spec = bench_spec();
            b.iter(|| {
                let report = run_campaign_with(&spec, 1, fast, |_, _| {}).unwrap();
                std::hint::black_box(report.total_runs)
            })
        });
    }

    // The analytic driver alone: one calibrated CAD cell, no campaign
    // scaffolding.
    c.bench_function("cad_cell_compiled", |b| {
        let profile = lazyeye_clients::table2_clients().remove(0);
        let fp = lazyeye_testbed::CadFastPath::calibrate(&profile, 7, &[]).unwrap();
        b.iter(|| std::hint::black_box(fp.run(200, 0).unwrap().observed_cad_ms))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = emit_json, bench
}
criterion_main!(benches);

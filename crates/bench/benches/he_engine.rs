//! Criterion: the Happy Eyeballs engine end-to-end (DNS + racing), and
//! its cost under failure.

use criterion::{criterion_group, criterion_main, Criterion};
use lazyeye_clients::{figure2_clients, Client};
use lazyeye_dns::Name;
use lazyeye_net::{Family, Netem, NetemRule};
use lazyeye_testbed::topology::{default_local_topology, resolver_addr, www};

fn chrome() -> lazyeye_clients::ClientProfile {
    figure2_clients()
        .into_iter()
        .find(|c| c.name == "Chrome" && c.version == "130.0")
        .unwrap()
}

fn bench(c: &mut Criterion) {
    c.bench_function("he_connect_healthy", |b| {
        b.iter(|| {
            let mut topo = default_local_topology(1);
            let client = Client::new(chrome(), topo.client.clone(), vec![resolver_addr()]);
            let res = topo
                .sim
                .block_on(async move { client.connect_only(&www(), 80).await });
            std::hint::black_box(res.connection.is_ok())
        })
    });

    c.bench_function("he_connect_v6_broken_fallback", |b| {
        b.iter(|| {
            let mut topo = default_local_topology(1);
            topo.server
                .add_egress(NetemRule::family(Family::V6, Netem::delay_ms(5000)));
            let client = Client::new(chrome(), topo.client.clone(), vec![resolver_addr()]);
            let res = topo
                .sim
                .block_on(async move { client.connect_only(&www(), 80).await });
            std::hint::black_box(res.log.observed_cad())
        })
    });

    c.bench_function("he_full_cad_sweep_9pts", |b| {
        use lazyeye_testbed::{run_cad_case, CadCaseConfig, SweepSpec};
        b.iter(|| {
            let cfg = CadCaseConfig {
                sweep: SweepSpec::new(0, 400, 50),
                repetitions: 1,
            };
            std::hint::black_box(run_cad_case(&chrome(), &cfg, 7).len())
        })
    });

    c.bench_function("he_fetch_with_http", |b| {
        b.iter(|| {
            let mut topo = default_local_topology(2);
            // Swap the hold-connections web server for a real one.
            let http_host = topo.server.clone();
            topo.sim.enter(|| {
                let listener = http_host.tcp_listen_any(8080).unwrap();
                let handler: lazyeye_clients::http::Handler = std::rc::Rc::new(|_req, peer| {
                    lazyeye_clients::http::HttpResponse::ok(format!("{}", peer.ip()))
                });
                lazyeye_sim::spawn(lazyeye_clients::http::serve_http(listener, handler));
            });
            let client = Client::new(chrome(), topo.client.clone(), vec![resolver_addr()]);
            let body = topo.sim.block_on(async move {
                client
                    .fetch(&Name::parse("www.hetest").unwrap(), 8080, "/ip")
                    .await
                    .response
                    .map(|r| r.text())
            });
            std::hint::black_box(body)
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);

//! Criterion: full iterative resolution through the resolver testbed.

use criterion::{criterion_group, criterion_main, Criterion};
use lazyeye_resolver::{bind9, unbound, RecursiveConfig, RecursiveResolver};
use lazyeye_testbed::topology::resolver_topology;

fn bench(c: &mut Criterion) {
    for (label, profile) in [("bind9", bind9()), ("unbound", unbound())] {
        c.bench_function(&format!("resolve_delegation_{label}"), |b| {
            b.iter(|| {
                let mut topo = resolver_topology(3, "bench");
                let mut cfg = RecursiveConfig::new(topo.roots.clone());
                cfg.policy = profile.policy.clone();
                let resolver = RecursiveResolver::new(topo.resolver_host.clone(), cfg);
                let qname = topo.qname.clone();
                let out = topo.sim.block_on(async move {
                    resolver.resolve(&qname, lazyeye_dns::RrType::A).await
                });
                std::hint::black_box(out.is_ok())
            })
        });
    }

    c.bench_function("resolve_cached_1k", |b| {
        b.iter(|| {
            let mut topo = resolver_topology(4, "bench2");
            let cfg = RecursiveConfig::new(topo.roots.clone());
            let resolver = RecursiveResolver::new(topo.resolver_host.clone(), cfg);
            let qname = topo.qname.clone();
            let hits = topo.sim.block_on(async move {
                let _ = resolver.resolve(&qname, lazyeye_dns::RrType::A).await;
                for _ in 0..1000 {
                    let _ = resolver.resolve(&qname, lazyeye_dns::RrType::A).await;
                }
                resolver.cache_stats().0
            });
            std::hint::black_box(hits)
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);

//! Criterion: simulator core throughput — how fast virtual time runs.
//!
//! Besides the criterion timings, this bench emits the `sim` section of
//! `BENCH.json`: a per-run executor-lifecycle runs/sec figure (the cost
//! the slab/wheel/arena overhaul targets — one simulated measurement
//! run's worth of spawn/timer/channel traffic, through the worker pool)
//! plus the deterministic scheduler counters of that fixed workload.

use criterion::{criterion_group, criterion_main, Criterion};
use lazyeye_bench::bench_json;
use lazyeye_json::Json;
use lazyeye_sim::{sleep, spawn, Sim};
use std::time::Duration;

/// One measurement-run-shaped executor workload: a pooled sim, a fan of
/// racing timer tasks and a channel ping stream — the per-run shape the
/// campaign engine drives a few hundred thousand times.
fn lifecycle_run(seed: u64) -> u64 {
    let mut sim = lazyeye_sim::pooled(seed);
    let t = sim.block_on(async {
        let mut handles = Vec::new();
        for i in 0..32u64 {
            handles.push(spawn(async move {
                lazyeye_sim::race(
                    sleep(Duration::from_millis(i % 7)),
                    sleep(Duration::from_millis(3)),
                )
                .await;
            }));
        }
        let (tx, mut rx) = lazyeye_sim::sync::mpsc::unbounded::<u32>();
        spawn(async move {
            for i in 0..64u32 {
                if tx.send(i).is_err() {
                    break;
                }
                sleep(Duration::from_micros(500)).await;
            }
        });
        while rx.recv().await.is_some() {}
        for h in handles {
            let _ = h.await;
        }
        lazyeye_sim::now()
    });
    t.as_nanos()
}

/// Emits the `sim` section of `BENCH.json`.
fn emit_json(_c: &mut Criterion) {
    // Throughput (machine-dependent, informational).
    for i in 0..200 {
        std::hint::black_box(lifecycle_run(i));
    }
    let n = 3000u64;
    let t0 = std::time::Instant::now();
    for i in 0..n {
        std::hint::black_box(lifecycle_run(i));
    }
    let runs_per_sec = n as f64 / t0.elapsed().as_secs_f64();
    println!("sim lifecycle throughput: {runs_per_sec:.0} runs/sec");

    // Counters (deterministic, CI-gated): 100 fixed-seed lifecycle runs.
    // Per-sim tallies flush into the obs registry on each run's Sim drop
    // (back into the worker pool), so the registry is complete at read
    // time.
    bench_json::reset_counters();
    for i in 0..100 {
        std::hint::black_box(lifecycle_run(i));
    }

    bench_json::merge_section(
        "sim",
        Json::obj(vec![
            ("run_lifecycle_runs_per_sec", Json::Int(runs_per_sec as i64)),
            ("counters", bench_json::counters()),
        ]),
    );
}

fn bench(c: &mut Criterion) {
    c.bench_function("sim_10k_timers", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            sim.block_on(async {
                let handles: Vec<_> = (0..10_000u64)
                    .map(|i| spawn(async move { sleep(Duration::from_millis(i % 977)).await }))
                    .collect();
                for h in handles {
                    let _ = h.await;
                }
            });
            std::hint::black_box(sim.now())
        })
    });

    c.bench_function("sim_channel_pingpong_1k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            sim.block_on(async {
                let (tx_a, mut rx_a) = lazyeye_sim::sync::mpsc::unbounded::<u32>();
                let (tx_b, mut rx_b) = lazyeye_sim::sync::mpsc::unbounded::<u32>();
                spawn(async move {
                    while let Some(v) = rx_a.recv().await {
                        if tx_b.send(v + 1).is_err() {
                            break;
                        }
                    }
                });
                let mut v = 0;
                for _ in 0..1000 {
                    tx_a.send(v).unwrap();
                    v = rx_b.recv().await.unwrap();
                }
                v
            })
        })
    });

    c.bench_function("net_udp_1k_roundtrips", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let net = lazyeye_net::Network::new();
            let a = net.host("a").v4("192.0.2.1").build();
            let z = net.host("z").v4("192.0.2.2").build();
            sim.block_on(async move {
                let sa = a.udp_bind_any(7).unwrap();
                spawn(async move {
                    while let Ok((p, src)) = sa.recv_from().await {
                        let _ = sa.send_to(p, src);
                    }
                });
                let sz = z.udp_bind_any(0).unwrap();
                let dst = std::net::SocketAddr::new("192.0.2.1".parse().unwrap(), 7);
                for _ in 0..1000 {
                    sz.send_to(bytes::Bytes::from_static(b"ping"), dst).unwrap();
                    let _ = sz.recv_from().await.unwrap();
                }
            });
            std::hint::black_box(sim.now())
        })
    });

    c.bench_function("net_tcp_100_connects", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let net = lazyeye_net::Network::new();
            let server = net.host("s").v4("192.0.2.1").build();
            let client = net.host("c").v4("192.0.2.9").build();
            sim.block_on(async move {
                let l = server.tcp_listen_any(80).unwrap();
                spawn(async move {
                    loop {
                        let Ok((s, _)) = l.accept().await else { break };
                        std::mem::forget(s);
                    }
                });
                let dst = std::net::SocketAddr::new("192.0.2.1".parse().unwrap(), 80);
                for _ in 0..100 {
                    let _ = client.tcp_connect(dst).await.unwrap();
                }
            });
            std::hint::black_box(sim.poll_count())
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = emit_json, bench
}
criterion_main!(benches);

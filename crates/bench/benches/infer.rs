//! Criterion: inference-layer throughput — changepoint fitting over a
//! sweep grid, full profile inference from observations, and trace
//! (de)serialisation, isolating the analysis cost from the simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use lazyeye_infer::{detect_switchover, infer_profile, CaseKind, Observation};
use lazyeye_net::Family;
use lazyeye_trace::{Trace, TraceEvent, TraceEventKind, TraceMeta, TraceSet};

/// A clean 500-point sweep with the switchover at 250 ms.
fn sweep_points() -> Vec<(u64, Family)> {
    (0..500u64)
        .map(|i| {
            let delay = i * 2;
            (delay, if delay <= 250 { Family::V6 } else { Family::V4 })
        })
        .collect()
}

fn observations(n: u64) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            let delay = (i % 100) * 5;
            let mut o = Observation::shell(CaseKind::Cad, "bench-client", "baseline", delay, 0);
            let v4 = delay > 250;
            o.family = Some(if v4 { Family::V4 } else { Family::V6 });
            o.observed_cad_ms = v4.then_some(250.0 + (i % 3) as f64);
            o.aaaa_first = Some(true);
            o
        })
        .collect()
}

fn trace_set(traces: usize, events_per_trace: usize) -> TraceSet {
    let mut set = TraceSet::default();
    for t in 0..traces {
        let events = (0..events_per_trace)
            .map(|i| TraceEvent {
                at_ns: i as u64 * 1_000_000,
                kind: TraceEventKind::AttemptStarted {
                    index: i as u64,
                    addr: format!("2001:db8::{i}"),
                    family: Family::V6,
                    proto: "tcp".into(),
                },
            })
            .collect();
        set.push(Trace {
            meta: TraceMeta {
                subject: "bench-client".into(),
                case: "cad".into(),
                condition: "baseline".into(),
                configured_delay_ms: t as u64,
                rep: 0,
                seed: 7,
            },
            events,
        });
    }
    set
}

fn bench(c: &mut Criterion) {
    let points = sweep_points();
    c.bench_function("changepoint_500_points", |b| {
        b.iter(|| std::hint::black_box(detect_switchover(&points)))
    });

    let obs = observations(1000);
    c.bench_function("infer_profile_1000_observations", |b| {
        b.iter(|| std::hint::black_box(infer_profile("bench-client", &obs)))
    });

    let set = trace_set(50, 20);
    let text = set.to_json_string();
    c.bench_function("trace_emit_50x20", |b| {
        b.iter(|| std::hint::black_box(set.to_json_string().len()))
    });
    c.bench_function("trace_parse_50x20", |b| {
        b.iter(|| std::hint::black_box(TraceSet::from_json_str(&text).unwrap().traces.len()))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);

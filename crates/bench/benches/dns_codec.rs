//! Criterion: DNS wire-format encode/decode throughput, plus heap
//! allocation counts per message (deterministic for the fixed
//! workloads, pinned in `BENCH.json` and gated by `bench_check`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lazyeye_bench::bench_json;
use lazyeye_dns::{Message, Name, RData, Rcode, Record, RrType, SvcParam, SvcParams};
use lazyeye_json::Json;

/// `System`, counting every allocation — the codec's per-message alloc
/// count is a correctness-adjacent metric here (the flat `Name` storage
/// exists to keep it flat across label counts).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations per run of `f`, averaged over a fixed iteration count so
/// one-off warmup allocations wash out of the integer division.
fn allocs_per_run<T>(mut f: impl FnMut() -> T) -> u64 {
    const ITERS: u64 = 1000;
    std::hint::black_box(f());
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..ITERS {
        std::hint::black_box(f());
    }
    (ALLOCS.load(Ordering::Relaxed) - before) / ITERS
}

/// Emits the `dns` section of `BENCH.json`: per-message allocation
/// counts for the fixed codec workloads.
fn emit_json(_c: &mut Criterion) {
    let small = small_query().encode();
    let large = large_response().encode();
    let decode_small = allocs_per_run(|| Message::decode(&small).unwrap());
    let decode_large = allocs_per_run(|| Message::decode(&large).unwrap());
    let encode_large = {
        let msg = large_response();
        allocs_per_run(|| msg.encode())
    };
    println!(
        "dns codec allocs/message: decode small {decode_small}, decode large {decode_large}, encode large {encode_large}"
    );
    bench_json::merge_section(
        "dns",
        Json::obj(vec![(
            "counters",
            Json::obj(vec![
                ("decode_allocs_small_query", Json::UInt(decode_small)),
                ("decode_allocs_large_response", Json::UInt(decode_large)),
                ("encode_allocs_large_response", Json::UInt(encode_large)),
            ]),
        )]),
    );
}

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

fn small_query() -> Message {
    Message::query(0x4242, n("www.example.com"), RrType::Aaaa)
}

fn large_response() -> Message {
    let q = Message::query(7, n("www.example.com"), RrType::Aaaa);
    let mut m = Message::response_to(&q, Rcode::NoError, true);
    for i in 0..10u16 {
        m.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::Aaaa(format!("2001:db8::{i}").parse().unwrap()),
        ));
        m.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::A(format!("192.0.2.{i}").parse().unwrap()),
        ));
    }
    m.answers.push(Record::new(
        n("www.example.com"),
        300,
        RData::Https(
            SvcParams::service(1, Name::root())
                .with(SvcParam::Alpn(vec![b"h2".to_vec(), b"h3".to_vec()]))
                .with(SvcParam::Ech(vec![0xAB; 64]))
                .with(SvcParam::Ipv6Hint(vec!["2001:db8::1".parse().unwrap()])),
        ),
    ));
    m
}

fn bench(c: &mut Criterion) {
    c.bench_function("dns_encode_small_query", |b| {
        let msg = small_query();
        b.iter(|| std::hint::black_box(msg.encode()))
    });
    c.bench_function("dns_encode_large_response", |b| {
        let msg = large_response();
        b.iter(|| std::hint::black_box(msg.encode()))
    });
    c.bench_function("dns_decode_small_query", |b| {
        let wire = small_query().encode();
        b.iter(|| std::hint::black_box(Message::decode(&wire).unwrap()))
    });
    c.bench_function("dns_decode_large_response", |b| {
        let wire = large_response().encode();
        b.iter(|| std::hint::black_box(Message::decode(&wire).unwrap()))
    });
    c.bench_function("dns_roundtrip_large", |b| {
        let msg = large_response();
        b.iter_batched(
            || msg.clone(),
            |m| std::hint::black_box(Message::decode(&m.encode()).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = emit_json, bench
}
criterion_main!(benches);

//! Criterion: DNS wire-format encode/decode throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lazyeye_dns::{Message, Name, RData, Rcode, Record, RrType, SvcParam, SvcParams};

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

fn small_query() -> Message {
    Message::query(0x4242, n("www.example.com"), RrType::Aaaa)
}

fn large_response() -> Message {
    let q = Message::query(7, n("www.example.com"), RrType::Aaaa);
    let mut m = Message::response_to(&q, Rcode::NoError, true);
    for i in 0..10u16 {
        m.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::Aaaa(format!("2001:db8::{i}").parse().unwrap()),
        ));
        m.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::A(format!("192.0.2.{i}").parse().unwrap()),
        ));
    }
    m.answers.push(Record::new(
        n("www.example.com"),
        300,
        RData::Https(
            SvcParams::service(1, Name::root())
                .with(SvcParam::Alpn(vec![b"h2".to_vec(), b"h3".to_vec()]))
                .with(SvcParam::Ech(vec![0xAB; 64]))
                .with(SvcParam::Ipv6Hint(vec!["2001:db8::1".parse().unwrap()])),
        ),
    ));
    m
}

fn bench(c: &mut Criterion) {
    c.bench_function("dns_encode_small_query", |b| {
        let msg = small_query();
        b.iter(|| std::hint::black_box(msg.encode()))
    });
    c.bench_function("dns_encode_large_response", |b| {
        let msg = large_response();
        b.iter(|| std::hint::black_box(msg.encode()))
    });
    c.bench_function("dns_decode_small_query", |b| {
        let wire = small_query().encode();
        b.iter(|| std::hint::black_box(Message::decode(&wire).unwrap()))
    });
    c.bench_function("dns_decode_large_response", |b| {
        let wire = large_response().encode();
        b.iter(|| std::hint::black_box(Message::decode(&wire).unwrap()))
    });
    c.bench_function("dns_roundtrip_large", |b| {
        let msg = large_response();
        b.iter_batched(
            || msg.clone(),
            |m| std::hint::black_box(Message::decode(&m.encode()).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);

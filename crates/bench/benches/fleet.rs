//! Criterion: fleet throughput — end-to-end web-tool sessions/second at
//! 1, 4 and 8 workers, the perf anchor for the population-scale service.
//!
//! Besides the per-iteration timing (regression tracking via the
//! criterion stub's IQR-filtered report), each configuration prints an
//! explicit `sessions/sec` line so the scaling curve is readable straight
//! off the bench output.

use criterion::{criterion_group, criterion_main, Criterion};
use lazyeye_bench::bench_json;
use lazyeye_fleet::{expand, run_fleet, FleetCondition, FleetSpec};
use lazyeye_json::Json;

/// Emits the `fleet` section of `BENCH.json`: sessions/sec plus the
/// deterministic scheduler counters of one fixed-seed `--jobs 1` fleet.
fn emit_json(_c: &mut Criterion) {
    let spec = bench_spec();
    for _ in 0..5 {
        std::hint::black_box(run_fleet(&spec, 1, |_, _| {}).unwrap().total_sessions);
    }
    let t0 = std::time::Instant::now();
    let mut sessions = 0u64;
    let iters = 40;
    for _ in 0..iters {
        sessions += run_fleet(&spec, 1, |_, _| {}).unwrap().total_sessions;
    }
    let sessions_per_sec = sessions as f64 / t0.elapsed().as_secs_f64();
    println!("fleet throughput jobs=1: {sessions_per_sec:.0} sessions/sec");

    // Per-sim tallies flush into the obs registry on each run's Sim drop
    // (back into the worker pool), so the registry is complete at read
    // time.
    bench_json::reset_counters();
    let report = run_fleet(&spec, 1, |_, _| {}).unwrap();

    bench_json::merge_section(
        "fleet",
        Json::obj(vec![
            ("sessions_per_sec_jobs1", Json::Int(sessions_per_sec as i64)),
            ("smoke_total_sessions", Json::UInt(report.total_sessions)),
            ("counters", bench_json::counters()),
        ]),
    );
}

/// A ~14-session fleet over three client families and one condition:
/// large enough for work stealing to matter, small enough to iterate in
/// a bench window.
fn bench_spec() -> FleetSpec {
    FleetSpec {
        name: "bench".into(),
        seed: 7,
        population: vec![
            "opera-114.0.0".to_string(),
            "firefox-130.0".to_string(),
            "safari-18.0.1".to_string(),
        ],
        conditions: vec![FleetCondition {
            label: "home".into(),
            base_delay_ms: 8,
            jitter_ms: 3,
        }],
        cad_sessions: 2,
        rd_sessions: 1,
        rd_a_sessions: 0,
        repetitions: 2,
        resolver_checks: 1,
    }
}

fn bench(c: &mut Criterion) {
    let spec = bench_spec();
    let sessions = expand(&spec).unwrap().sessions.len();
    for jobs in [1usize, 4, 8] {
        // Explicit throughput line: sessions/sec at this worker count.
        let started = std::time::Instant::now();
        let mut executed = 0usize;
        while started.elapsed() < std::time::Duration::from_millis(600) {
            let report = run_fleet(&spec, jobs, |_, _| {}).unwrap();
            executed += report.total_sessions as usize;
        }
        let rate = executed as f64 / started.elapsed().as_secs_f64();
        println!("fleet throughput jobs={jobs}: {rate:.0} sessions/sec");

        c.bench_function(&format!("fleet_{sessions}sessions_jobs{jobs}"), |b| {
            let spec = bench_spec();
            b.iter(|| {
                let report = run_fleet(&spec, jobs, |_, _| {}).unwrap();
                std::hint::black_box(report.total_sessions)
            })
        });
    }

    // Orchestration-only overhead: plan expansion + report building are
    // the non-simulation costs the service pays per request.
    c.bench_function("fleet_expand_default", |b| {
        let spec = FleetSpec::default();
        b.iter(|| std::hint::black_box(expand(&spec).unwrap().sessions.len()))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = emit_json, bench
}
criterion_main!(benches);

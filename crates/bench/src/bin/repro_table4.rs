//! Reproduces **Table 4**: the tested open resolver inventory with
//! address counts and the IPv6-only-capability filter that excludes four
//! services from the §5.3 analysis.

use lazyeye_bench::{emit, fresh};
use lazyeye_resolver::open_resolver_profiles;
use lazyeye_testbed::Table;

fn main() {
    fresh("table4");
    let mut t = Table::new(
        "Table 4 — tested open resolvers",
        vec![
            "Service",
            "# IPv4 Addrs.",
            "# IPv6 Addrs.",
            "IPv6-only capable",
            "Notes",
        ],
    );
    let profiles = open_resolver_profiles();
    for p in &profiles {
        t.row(vec![
            p.name.to_string(),
            p.v4_addrs.to_string(),
            p.v6_addrs.to_string(),
            if p.ipv6_only_capable {
                "yes"
            } else {
                "NO — excluded"
            }
            .to_string(),
            p.notes.to_string(),
        ]);
    }
    emit("table4", &t.render());
    let excluded: Vec<&str> = profiles
        .iter()
        .filter(|p| !p.ipv6_only_capable)
        .map(|p| p.name)
        .collect();
    emit(
        "table4",
        &format!(
            "{} services probed; {} excluded for failing IPv6-only delegation\n\
             resolution ({}), leaving 13 for analysis — matching Table 4 and §5.3.",
            profiles.len(),
            excluded.len(),
            excluded.join(", ")
        ),
    );
}

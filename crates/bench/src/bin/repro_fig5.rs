//! Reproduces **Figure 5**: the address family used at the n-th
//! connection attempt when DNS offers ten unresponsive addresses per
//! family.

use lazyeye_bench::{emit, fresh};
use lazyeye_clients::{figure2_clients, safari_clients};
use lazyeye_net::Family;
use lazyeye_testbed::{run_selection_case, SelectionCaseConfig, Table};

fn main() {
    fresh("fig5");
    emit(
        "fig5",
        "Figure 5 — address family at the n-th connection attempt\n\
         (10 IPv6 + 10 IPv4 addresses offered, none responding)\n",
    );

    let mut clients = Vec::new();
    for name in ["wget", "curl"] {
        clients.push(
            figure2_clients()
                .into_iter()
                .rfind(|c| c.name == name)
                .unwrap(),
        );
    }
    clients.push(safari_clients().into_iter().find(|c| !c.mobile).unwrap());
    for name in ["Firefox", "Edge", "Chromium", "Chrome"] {
        clients.push(
            figure2_clients()
                .into_iter()
                .rfind(|c| c.name == name)
                .unwrap(),
        );
    }

    let mut t = Table::new(
        "Figure 5 — attempt order",
        vec!["Client", "attempts (6/4 per position)", "#v6", "#v4"],
    );
    for (i, profile) in clients.iter().enumerate() {
        let r = run_selection_case(profile, &SelectionCaseConfig::default(), 6000 + i as u64);
        let order: String = r
            .order
            .iter()
            .map(|f| if *f == Family::V6 { '6' } else { '4' })
            .collect();
        t.row(vec![
            profile.figure2_label(),
            order,
            r.v6_used.to_string(),
            r.v4_used.to_string(),
        ]);
    }
    emit("fig5", &t.render());
    emit(
        "fig5",
        "Paper check: only Safari retries as often as there are addresses,\n\
         with its FAFC=2 interleaving (6 6 4, then remaining v6, then\n\
         remaining v4). Everything else that implements a CAD tries one\n\
         IPv6 and one IPv4 address and stops; wget tries IPv6 only —\n\
         matching Figure 5 and App. D.",
    );
}

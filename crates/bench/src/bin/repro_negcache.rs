//! Extension experiment (related work, Foremski et al. 2019): Happy
//! Eyeballs clients generate a steady stream of AAAA queries for
//! IPv4-only domains; with small negative-caching TTLs these dominate the
//! query load — "domains with up to 90 % empty AAAA responses due to HE".
//!
//! Setup: an IPv4-only domain (AAAA is NODATA with a configurable SOA
//! minimum), a recursive resolver with RFC 2308 negative caching, and a
//! client re-fetching the site every 10 s for ten minutes. We count the
//! AAAA queries that reach the authoritative server per negative-TTL
//! setting.

use std::net::{IpAddr, SocketAddr};

use lazyeye_authns::{serve as serve_dns, AuthConfig, AuthServer};
use lazyeye_bench::{emit, fresh};
use lazyeye_clients::Client;
use lazyeye_dns::{Name, RrType, Zone, ZoneSet};
use lazyeye_net::Network;
use lazyeye_resolver::{serve_recursive, RecursiveConfig, RecursiveResolver};
use lazyeye_sim::{sleep, spawn, Sim};
use lazyeye_testbed::Table;
use std::time::Duration;

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

/// Runs the ten-minute browsing session and returns (AAAA, A) query
/// counts observed at the authoritative server.
fn run(neg_ttl: u32, seed: u64) -> (usize, usize) {
    let mut sim = Sim::new(seed);
    let net = Network::new();
    let root = net
        .host("root")
        .v4("198.41.0.4")
        .v6("2001:503:ba3e::2:30")
        .build();
    let auth = net
        .host("auth")
        .v4("192.0.2.53")
        .v6("2001:db8:53::53")
        .build();
    let rec = net.host("rec").v4("192.0.2.10").v6("2001:db8::10").build();
    let web = net.host("web").v4("203.0.113.80").build(); // v4-only!
    let browser = net
        .host("browser")
        .v4("192.0.2.200")
        .v6("2001:db8::200")
        .build();

    let mut root_zone = Zone::new(Name::root());
    root_zone.ns(&n("v4only.test"), &n("ns1.v4only.test"), 3600);
    root_zone.a(&n("ns1.v4only.test"), "192.0.2.53".parse().unwrap(), 3600);
    root_zone.aaaa(
        &n("ns1.v4only.test"),
        "2001:db8:53::53".parse().unwrap(),
        3600,
    );
    let mut root_zones = ZoneSet::new();
    root_zones.add(root_zone);

    // The v4-only zone: A record with a healthy TTL, *no* AAAA, negative
    // TTL per experiment parameter.
    let mut zone = Zone::new(n("v4only.test"));
    zone.set_negative_ttl(neg_ttl);
    zone.a(&n("www.v4only.test"), "203.0.113.80".parse().unwrap(), 3600);
    let mut zones = ZoneSet::new();
    zones.add(zone);
    let auth_server = AuthServer::new(AuthConfig {
        zones,
        ..AuthConfig::default()
    });

    let auth_handle = auth_server.clone();
    sim.enter(|| {
        spawn(serve_dns(
            root.udp_bind_any(53).unwrap(),
            AuthServer::new(AuthConfig {
                zones: root_zones,
                ..AuthConfig::default()
            }),
        ));
        spawn(serve_dns(auth.udp_bind_any(53).unwrap(), auth_server));
        let resolver = RecursiveResolver::new(
            rec.clone(),
            RecursiveConfig::new(vec![(
                n("ns.root"),
                vec![
                    "198.41.0.4".parse::<IpAddr>().unwrap(),
                    "2001:503:ba3e::2:30".parse::<IpAddr>().unwrap(),
                ],
            )]),
        );
        spawn(serve_recursive(rec.udp_bind_any(53).unwrap(), resolver));
        let listener = web.tcp_listen_any(80).unwrap();
        spawn(async move {
            loop {
                let Ok((s, _)) = listener.accept().await else {
                    break;
                };
                std::mem::forget(s);
            }
        });
    });

    // One browser instance re-visiting the page every 10 s for 10 min.
    let profile = lazyeye_clients::figure2_clients()
        .into_iter()
        .find(|c| c.name == "Chrome" && c.version == "130.0")
        .unwrap();
    let client = Client::new(
        profile,
        browser,
        vec![SocketAddr::new("192.0.2.10".parse().unwrap(), 53)],
    );
    sim.block_on(async move {
        for _ in 0..60 {
            // Fresh page visit: the HE outcome cache does not pin it.
            client.new_page_visit();
            let _ = client.connect_only(&n("www.v4only.test"), 80).await;
            sleep(Duration::from_secs(10)).await;
        }
    });

    let log = auth_handle.query_log();
    let aaaa = log.iter().filter(|e| e.qtype == RrType::Aaaa).count();
    let a = log.iter().filter(|e| e.qtype == RrType::A).count();
    (aaaa, a)
}

fn main() {
    fresh("negcache");
    let mut t = Table::new(
        "Negative caching vs Happy Eyeballs AAAA load (10-minute session, \
         one client, v4-only domain)",
        vec![
            "SOA minimum (neg TTL)",
            "AAAA queries at auth",
            "A queries at auth",
            "AAAA share",
        ],
    );
    for (i, neg_ttl) in [5u32, 30, 300, 3600].into_iter().enumerate() {
        let (aaaa, a) = run(neg_ttl, 9000 + i as u64);
        let share = 100.0 * aaaa as f64 / (aaaa + a).max(1) as f64;
        t.row(vec![
            format!("{neg_ttl} s"),
            aaaa.to_string(),
            a.to_string(),
            format!("{share:.0} %"),
        ]);
    }
    emit("negcache", &t.render());
    emit(
        "negcache",
        "Extension experiment (cf. Foremski et al., DNS Observatory): the A\n\
         answer caches for its full hour TTL while the empty AAAA expires at\n\
         the SOA minimum, so small negative TTLs make HE's speculative AAAA\n\
         queries dominate the authoritative load — the '90 % empty AAAA'\n\
         phenomenon the paper's related work describes.",
    );
}

//! Reproduces **Table 3**: resolver IPv6 usage as observed on the
//! authoritative name server — AAAA query ordering, IPv6 share, the
//! maximum IPv6 delay tolerated, and IPv6 packet counts.

use lazyeye_bench::{emit, fast_mode, fresh};
use lazyeye_resolver::{open_resolver_profiles, software_profiles};
use lazyeye_testbed::{
    run_resolver_case, summarize_resolver, ResolverCaseConfig, SweepSpec, Table,
};

fn main() {
    fresh("table3");
    let mut t = Table::new(
        "Table 3 — resolver IPv6 usage at the authoritative name server",
        vec![
            "Service",
            "AAAA Query",
            "IPv6 Share",
            "Max IPv6 Delay",
            "Obs. CAD",
            "# IPv6 Packets",
            "Expected (paper)",
        ],
    );

    let share_reps = if fast_mode() { 20 } else { 60 };
    let mut profiles = software_profiles();
    profiles.extend(
        open_resolver_profiles()
            .into_iter()
            .filter(|p| p.ipv6_only_capable),
    );

    for (i, profile) in profiles.iter().enumerate() {
        // Preference share at zero delay (many repetitions).
        let share_cfg = ResolverCaseConfig {
            sweep: SweepSpec::new(0, 0, 1),
            repetitions: share_reps,
        };
        let share_stats =
            summarize_resolver(&run_resolver_case(profile, &share_cfg, 4000 + i as u64));

        // Timeout/CAD via a delay sweep around the profile's timeout.
        let t_ms = profile.policy.server_timeout.as_millis() as u64;
        let sweep_cfg = ResolverCaseConfig {
            sweep: SweepSpec::new(0, t_ms + 400, (t_ms / 4).max(50)),
            repetitions: if fast_mode() { 2 } else { 4 },
        };
        let sweep_stats =
            summarize_resolver(&run_resolver_case(profile, &sweep_cfg, 5000 + i as u64));

        let expected = profile
            .expected
            .map(|(share, delay, pkts)| {
                format!(
                    "{share:.1} % / {} / {pkts}",
                    delay
                        .map(|d| format!("{d} ms"))
                        .unwrap_or_else(|| "-".into())
                )
            })
            .unwrap_or_else(|| "-".into());

        t.row(vec![
            profile.name.to_string(),
            profile.aaaa_marker().symbol().to_string(),
            share_stats
                .v6_share_pct
                .map(|s| format!("{s:.1} %"))
                .unwrap_or_else(|| "-".into()),
            sweep_stats
                .max_v6_delay_ms
                .map(|d| format!("{d} ms"))
                .unwrap_or_else(|| "-".into()),
            sweep_stats
                .observed_cad_ms
                .map(|d| format!("{d:.0} ms"))
                .unwrap_or_else(|| "-".into()),
            sweep_stats
                .max_v6_packets
                .max(share_stats.max_v6_packets)
                .to_string(),
            expected,
        ]);
    }
    emit("table3", &t.render());
    emit(
        "table3",
        "Paper check: BIND always prefers IPv6 with an 800 ms timeout and one\n\
         IPv6 packet; Unbound sits near 50 % with same-address backoff\n\
         (376 -> 1128 ms, 2 packets); Knot near 25 %; OpenDNS is the only\n\
         open service doing HE-style always-IPv6 with a 50 ms fallback;\n\
         Google and DNS.sb never use the IPv6 name-server address; Yandex\n\
         sends up to 6 IPv6 packets without interleaving — matching §5.3.\n\
         (Shares are stochastic: sampled preferences approximate the paper's\n\
         long-run percentages.)",
    );
}

//! Reproduces **Table 5**: the browser/OS inventory of the web-based
//! measurement campaign, extracted from submitted user agents.

use lazyeye_bench::{emit, fast_mode, fresh};
use lazyeye_clients::{table5_population, ua};
use lazyeye_testbed::Table;
use lazyeye_webtool::{deploy, WebConditions};

fn main() {
    fresh("table5");
    let population = table5_population();
    let mut d = deploy(85, WebConditions::default());
    let reps = if fast_mode() { 1 } else { 2 };
    let submissions = d.run_campaign(&population, reps);

    let mut rows: Vec<(String, String, String, String)> = submissions
        .iter()
        .map(|s| {
            let p = ua::parse_user_agent(&s.user_agent);
            (p.os_name, p.os_version, p.browser, p.browser_version)
        })
        .collect();
    rows.sort();
    rows.dedup();

    let mut t = Table::new(
        "Table 5 — operating systems and browsers in the web campaign",
        vec!["OS Name", "OS Version", "Browser", "Browser Version"],
    );
    for (os, osv, b, bv) in &rows {
        t.row(vec![os.clone(), osv.clone(), b.clone(), bv.clone()]);
    }
    emit("table5", &t.render());

    let browsers: std::collections::HashSet<&String> = rows.iter().map(|r| &r.2).collect();
    let oses: std::collections::HashSet<&String> = rows.iter().map(|r| &r.0).collect();
    emit(
        "table5",
        &format!(
            "{} distinct browser+OS combinations across {} browsers and {} OSes\n\
             (paper: 33 combinations, nine browsers, seven OSes). Linux and\n\
             Ubuntu UAs carry no OS version, as in the paper's Table 5.",
            rows.len(),
            browsers.len(),
            oses.len()
        ),
    );
}

//! Reproduces **Figure 4**: the web-based testing tool's result grids —
//! (a) the CAD test across the 18 delay tiers, (b) the RD test — for
//! Safari (the paper's screenshot subject) and Chromium for contrast.

use lazyeye_authns::DelayTarget;
use lazyeye_bench::{emit, fresh};
use lazyeye_clients::{figure2_clients, safari_clients};
use lazyeye_webtool::{deploy, WebConditions};

fn main() {
    fresh("fig4");
    let safari = safari_clients().into_iter().find(|c| !c.mobile).unwrap();
    let chrome = figure2_clients()
        .into_iter()
        .find(|c| c.name == "Chrome" && c.version == "130.0")
        .unwrap();

    emit(
        "fig4",
        "Figure 4a — web CAD tool (per-tier connection family, 10 repetitions)\n",
    );
    for (label, profile, seed) in [("Safari 17.6", &safari, 71), ("Chrome 130.0", &chrome, 72)] {
        let mut d = deploy(seed, WebConditions::default());
        let result = d.run_cad_session(profile, 10);
        let (lo, hi) = result.cad_interval();
        emit("fig4", &format!("--- {label} ---"));
        emit("fig4", &result.grid());
        emit(
            "fig4",
            &format!(
                "CAD interval: ({}, {}]   mixed tiers: {}\n",
                lo.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
                hi.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
                result.mixed_tiers()
            ),
        );
    }

    emit(
        "fig4",
        "Figure 4b — web RD tool (AAAA answer delayed per tier)\n",
    );
    for (label, profile, seed) in [("Safari 17.6", &safari, 73), ("Chrome 130.0", &chrome, 74)] {
        let mut d = deploy(seed, WebConditions::default());
        let result = d.run_rd_session(profile, 5, DelayTarget::Aaaa);
        let (lo, hi) = result.cad_interval();
        emit("fig4", &format!("--- {label} ---"));
        emit("fig4", &result.grid());
        emit(
            "fig4",
            &format!(
                "RD interval: ({}, {}]\n",
                lo.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
                hi.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
            ),
        );
    }
    emit(
        "fig4",
        "Paper check: Safari's web CAD is dynamic (interval far below the\n\
         local 2 s, with inconsistent tiers); its RD kicks in around 50 ms.\n\
         Chromium shows a clean fixed-CAD interval around 300 ms and *no* RD\n\
         — it keeps IPv6 through multi-second AAAA delays until the stub\n\
         resolver timeout, matching §5.1/§5.2 and App. Figure 4.",
    );
}

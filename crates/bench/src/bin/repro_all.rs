//! Runs every reproduction binary in sequence (the paper's full
//! evaluation), leaving outputs in `results/`.

use std::process::Command;

fn main() {
    let bins = [
        "repro_table1",
        "repro_fig2",
        "repro_table2",
        "repro_table3",
        "repro_table4",
        "repro_fig4",
        "repro_fig5",
        "repro_table5",
        "repro_icpr",
        "repro_stall",
        "repro_negcache",
    ];
    let self_exe = std::env::current_exe().expect("own path");
    let dir = self_exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let path = dir.join(bin);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when running via `cargo run`.
            Command::new("cargo")
                .args(["run", "-q", "-p", "lazyeye-bench", "--bin", bin])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!("failed to run {bin}: {e}"),
        }
    }
    println!("\nAll reproductions complete; outputs in results/.");
}

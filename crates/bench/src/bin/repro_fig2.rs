//! Reproduces **Figure 2**: the address family of the established
//! connection at each configured IPv6 delay, for all 17 local-testbed
//! clients (plus Safari, which the paper omits from the figure for scale).

use lazyeye_bench::{emit, fast_mode, fresh, strip};
use lazyeye_clients::{figure2_clients, safari_clients};
use lazyeye_testbed::{run_cad_case, summarize_cad, CadCaseConfig, SweepSpec, Table};

fn main() {
    fresh("fig2");
    let step = if fast_mode() { 25 } else { 10 };
    let sweep = SweepSpec::new(0, 400, step);
    let cfg = CadCaseConfig {
        sweep,
        repetitions: 1,
    };

    emit(
        "fig2",
        &format!(
            "Figure 2 — established connection family vs configured IPv6 delay\n\
             (sweep 0..=400 ms step {step} ms; 6 = IPv6, 4 = IPv4, x = failed)\n"
        ),
    );

    let mut summary = Table::new(
        "Figure 2 summary — observed switchover per client",
        vec![
            "Client",
            "last IPv6 delay",
            "first IPv4 delay",
            "measured CAD",
        ],
    );

    let delays = sweep.values();
    let axis: String = delays
        .iter()
        .map(|d| if d % 100 == 0 { '|' } else { ' ' })
        .collect();
    emit("fig2", &format!("{:>28}  {}", "0ms .. 400ms:", axis));

    for (i, profile) in figure2_clients().into_iter().enumerate() {
        let samples = run_cad_case(&profile, &cfg, 1000 + i as u64);
        let cells: Vec<Option<lazyeye_net::Family>> = samples.iter().map(|s| s.family).collect();
        emit(
            "fig2",
            &format!("{:>28}  {}", profile.figure2_label(), strip(&cells)),
        );
        let s = summarize_cad(&samples);
        summary.row(vec![
            profile.figure2_label(),
            s.last_v6_delay_ms
                .map(|v| format!("{v} ms"))
                .unwrap_or_else(|| "> 400 ms (never fell back)".into()),
            s.first_v4_delay_ms
                .map(|v| format!("{v} ms"))
                .unwrap_or_else(|| "-".into()),
            s.measured_cad_ms
                .map(|v| format!("{v:.1} ms"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }

    // Safari, separately (2 s fresh-state CAD, as the paper notes).
    let safari = safari_clients().into_iter().find(|c| !c.mobile).unwrap();
    let safari_cfg = CadCaseConfig {
        sweep: SweepSpec::new(1800, 2200, 100),
        repetitions: 1,
    };
    let samples = run_cad_case(&safari, &safari_cfg, 99);
    let s = summarize_cad(&samples);
    summary.row(vec![
        format!("{} (omitted from Fig. 2)", safari.figure2_label()),
        s.last_v6_delay_ms
            .map(|v| format!("{v} ms"))
            .unwrap_or_else(|| "-".into()),
        s.first_v4_delay_ms
            .map(|v| format!("{v} ms"))
            .unwrap_or_else(|| "-".into()),
        s.measured_cad_ms
            .map(|v| format!("{v:.1} ms"))
            .unwrap_or_else(|| "-".into()),
    ]);

    emit("fig2", "");
    emit("fig2", &summary.render());
    emit(
        "fig2",
        "Paper check: Chromium-based browsers switch at 300 ms (all versions\n\
         back to Chrome 88/Edge 90), Firefox at 250 ms, curl at 200 ms, wget\n\
         never switches, Safari at 2 s with a fresh state — matching §5.1.",
    );
}

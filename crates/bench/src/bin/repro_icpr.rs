//! Reproduces the **iCloud Private Relay findings** (§5.1/§5.2):
//! measurements through iCPR show the egress operator's Happy Eyeballs,
//! not Safari's — Akamai with a 150 ms CAD and 400 ms DNS timeout,
//! Cloudflare with 200 ms and 1.75 s.

use std::net::SocketAddr;
use std::rc::Rc;

use lazyeye_authns::{serve as serve_dns, AuthConfig, AuthServer};
use lazyeye_bench::{emit, fresh};
use lazyeye_clients::http::{serve_http, Handler, HttpRequest, HttpResponse};
use lazyeye_clients::icpr;
use lazyeye_dns::{Name, RrType, Zone, ZoneSet};
use lazyeye_net::{Family, Netem, NetemRule, Network};
use lazyeye_sim::{spawn, Sim};
use lazyeye_testbed::Table;

fn sa(ip: &str, port: u16) -> SocketAddr {
    SocketAddr::new(ip.parse().unwrap(), port)
}

/// Runs one iCPR measurement: target IPv6 delayed by `v6_delay_ms` (CAD
/// test) or AAAA delayed by `dns_delay_ms` (RD test); returns the family
/// the egress ended up using.
fn via_egress(
    profile: icpr::EgressProfile,
    v6_delay_ms: u64,
    dns_delay_ms: u64,
    seed: u64,
) -> Option<Family> {
    let mut sim = Sim::new(seed);
    let net = Network::new();
    let web = net.host("web").v4("192.0.2.1").v6("2001:db8::1").build();
    let egress = net
        .host("egress")
        .v4("198.51.100.9")
        .v6("2001:db8:e9::9")
        .build();
    let user = net.host("user").v4("192.0.2.200").build();

    if v6_delay_ms > 0 {
        web.add_egress(NetemRule::family(Family::V6, Netem::delay_ms(v6_delay_ms)));
    }
    let mut zone = Zone::new(Name::parse("hetest").unwrap());
    zone.a(
        &Name::parse("www.hetest").unwrap(),
        "192.0.2.1".parse().unwrap(),
        300,
    );
    zone.aaaa(
        &Name::parse("www.hetest").unwrap(),
        "2001:db8::1".parse().unwrap(),
        300,
    );
    let mut zones = ZoneSet::new();
    zones.add(zone);
    let auth = AuthServer::new(AuthConfig {
        zones,
        qtype_delays: if dns_delay_ms > 0 {
            vec![(RrType::Aaaa, std::time::Duration::from_millis(dns_delay_ms))]
        } else {
            Vec::new()
        },
        ..AuthConfig::default()
    });
    sim.enter(|| {
        spawn(serve_dns(web.udp_bind_any(53).unwrap(), auth));
        let listener = web.tcp_listen_any(80).unwrap();
        let handler: Handler = Rc::new(|_req: &HttpRequest, peer: SocketAddr| {
            HttpResponse::ok(format!("{}", peer.ip()))
        });
        spawn(serve_http(listener, handler));
        icpr::spawn_egress(&egress, 4433, profile, vec![sa("192.0.2.1", 53)]).unwrap();
    });
    let reply = sim.block_on(async move {
        icpr::visit_via_egress(
            &user,
            sa("198.51.100.9", 4433),
            &Name::parse("www.hetest").unwrap(),
            80,
            "/ip",
        )
        .await
        .unwrap()
    });
    reply
        .text()
        .parse::<std::net::IpAddr>()
        .ok()
        .map(Family::of)
}

fn main() {
    fresh("icpr");
    let mut cad_table = Table::new(
        "iCPR egress CAD (IPv6 transport delayed)",
        vec![
            "Operator",
            "delay where v6 still used",
            "first delay using v4",
        ],
    );
    let mut rd_table = Table::new(
        "iCPR egress DNS timeout (AAAA answer delayed)",
        vec![
            "Operator",
            "delay where v6 still used",
            "first delay using v4",
        ],
    );

    for (op, make) in [
        ("Akamai", icpr::akamai as fn() -> icpr::EgressProfile),
        (
            "Cloudflare",
            icpr::cloudflare as fn() -> icpr::EgressProfile,
        ),
    ] {
        // CAD sweep.
        let delays = [0u64, 100, 150, 200, 250, 400];
        let mut last_v6 = None;
        let mut first_v4 = None;
        for (i, &d) in delays.iter().enumerate() {
            match via_egress(make(), d, 0, 900 + i as u64) {
                Some(Family::V6) => last_v6 = Some(d),
                Some(Family::V4) if first_v4.is_none() => first_v4 = Some(d),
                _ => {}
            }
        }
        cad_table.row(vec![
            op.into(),
            last_v6
                .map(|d| format!("{d} ms"))
                .unwrap_or_else(|| "-".into()),
            first_v4
                .map(|d| format!("{d} ms"))
                .unwrap_or_else(|| "-".into()),
        ]);

        // DNS (RD-equivalent) sweep.
        let dns_delays = [0u64, 200, 400, 800, 1200, 1750, 2500];
        let mut last_v6 = None;
        let mut first_v4 = None;
        for (i, &d) in dns_delays.iter().enumerate() {
            match via_egress(make(), 0, d, 950 + i as u64) {
                Some(Family::V6) => last_v6 = Some(d),
                Some(Family::V4) if first_v4.is_none() => first_v4 = Some(d),
                _ => {}
            }
        }
        rd_table.row(vec![
            op.into(),
            last_v6
                .map(|d| format!("{d} ms"))
                .unwrap_or_else(|| "-".into()),
            first_v4
                .map(|d| format!("{d} ms"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }

    emit("icpr", &cad_table.render());
    emit("icpr", &rd_table.render());
    emit(
        "icpr",
        "Paper check: Akamai egress uses a 150 ms CAD and a 400 ms DNS\n\
         timeout; Cloudflare 200 ms and 1.75 s (it keeps using IPv6 up to a\n\
         1.75 s AAAA delay). Through iCPR, Safari's own RD and address\n\
         selection are invisible — the egress stack decides, matching §5.1/§5.2.",
    );
}

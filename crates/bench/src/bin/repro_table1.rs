//! Reproduces **Table 1**: the parameters defined for HEv1, HEv2 and the
//! HEv3 draft, printed from the engine's own constants.

use lazyeye_bench::{emit, fresh};
use lazyeye_core::version_params;
use lazyeye_testbed::Table;

fn main() {
    fresh("table1");
    let rows = version_params();
    let mut t = Table::new(
        "Table 1 — Happy Eyeballs parameters per version",
        vec!["Parameter", "HEv1 (2012)", "HEv2 (2017)", "HEv3 (draft)"],
    );
    let cell = |i: usize, f: &dyn Fn(&lazyeye_core::VersionParams) -> String| f(&rows[i]);
    type RowFn = Box<dyn Fn(&lazyeye_core::VersionParams) -> String>;
    let param_rows: Vec<(&str, RowFn)> = vec![
        (
            "Considered protocols",
            Box::new(|r| r.considered_protocols.to_string()),
        ),
        ("DNS records", Box::new(|r| r.dns_records.to_string())),
        (
            "Resolution Delay",
            Box::new(|r| {
                r.resolution_delay
                    .map(|d| format!("{} ms", d.as_millis()))
                    .unwrap_or_else(|| "-".into())
            }),
        ),
        (
            "Address selection",
            Box::new(|r| r.address_selection.to_string()),
        ),
        (
            "Fixed Conn. Attempt Delay",
            Box::new(|r| {
                let (lo, hi) = r.fixed_cad;
                if lo == hi {
                    format!("{} ms", lo.as_millis())
                } else {
                    format!("{}-{} ms", lo.as_millis(), hi.as_millis())
                }
            }),
        ),
        (
            "Min/Rec./Max when dynamic",
            Box::new(|r| {
                r.dynamic_cad
                    .map(|(min, rec, max)| {
                        format!(
                            "{} ms / {} ms / {} s",
                            min.as_millis(),
                            rec.as_millis(),
                            max.as_secs()
                        )
                    })
                    .unwrap_or_else(|| "-".into())
            }),
        ),
    ];
    for (name, f) in &param_rows {
        t.row(vec![
            name.to_string(),
            cell(0, f.as_ref()),
            cell(1, f.as_ref()),
            cell(2, f.as_ref()),
        ]);
    }
    emit("table1", &t.render());
    emit(
        "table1",
        "Paper check: HEv1 CAD 150-250 ms, HEv2/v3 fixed 250 ms, RD 50 ms,\n\
         dynamic 10 ms / 100 ms / 2 s — all read back from lazyeye-core's\n\
         version_params(), matching Table 1 of the paper exactly.",
    );
}

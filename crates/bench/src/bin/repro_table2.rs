//! Reproduces **Table 2**: the Happy Eyeballs feature matrix of client
//! applications, evaluated through black-box testbed runs, plus the
//! local-vs-web consistency column.

use lazyeye_bench::{emit, fresh};
use lazyeye_clients::table2_clients;
use lazyeye_testbed::{evaluate_client_features, Table};
use lazyeye_webtool::{deploy, WebConditions};

fn main() {
    fresh("table2");
    let mut t = Table::new(
        "Table 2 — HE feature evaluation of client applications",
        vec![
            "Client",
            "Prefers IPv6",
            "CAD Impl.",
            "AAAA first",
            "RD Impl.",
            "IPv4 Addrs.",
            "IPv6 Addrs.",
            "Addr. Selection",
            "Consistency",
        ],
    );

    for (i, profile) in table2_clients().into_iter().enumerate() {
        let row = evaluate_client_features(&profile, 2000 + i as u64);

        // Consistency: does the web-based interval bracket the local
        // switchover? (Fixed-CAD clients: yes; Safari: no — dynamic.)
        let consistency = if profile.mobile {
            "-".to_string() // mobile devices were web-only in the paper
        } else {
            let mut d = deploy(3000 + i as u64, WebConditions::default());
            let web = d.run_cad_session(&profile, 3);
            let (last_v6, first_v4) = web.cad_interval();
            let local_cad = profile.fixed_cad().map(|d| d.as_millis() as u64);
            match (local_cad, last_v6, first_v4) {
                (Some(cad), Some(lo), Some(hi)) if lo < cad + 60 && hi + 60 > cad => {
                    "consistent".into()
                }
                (None, _, _) => format!("inconsistent ({} mixed tiers)", web.mixed_tiers()),
                _ => "deviates".into(),
            }
        };

        let fmt_n = |n: usize| {
            if n == 0 {
                "-".to_string()
            } else {
                n.to_string()
            }
        };
        t.row(vec![
            row.client.clone(),
            lazyeye_testbed::FeatureRow::mark(row.prefers_v6).into(),
            lazyeye_testbed::FeatureRow::mark(row.cad_impl).into(),
            lazyeye_testbed::FeatureRow::mark(row.aaaa_first).into(),
            lazyeye_testbed::FeatureRow::mark(row.rd_impl).into(),
            fmt_n(row.v4_addrs_used),
            fmt_n(row.v6_addrs_used),
            lazyeye_testbed::FeatureRow::mark(row.addr_selection).into(),
            consistency,
        ]);
    }
    emit("table2", &t.render());
    emit(
        "table2",
        "Paper check: every client prefers IPv6; all but wget implement a CAD;\n\
         only Safari implements the Resolution Delay and address selection\n\
         (10 addresses per family; others use 1+1); Firefox is not AAAA-first;\n\
         Safari is the inconsistent one on the web — matching Table 2.",
    );
}

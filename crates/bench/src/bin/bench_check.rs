//! `bench_check <baseline BENCH.json> <current BENCH.json>` — the CI
//! perf-smoke gate.
//!
//! * **Counters** (`<section>.counters.*`): must match the baseline
//!   exactly. They are deterministic functions of the fixed-seed smoke
//!   workloads (scheduler polls, timers, tasks), so any drift means the
//!   executor's schedule changed — exactly the regression the golden
//!   report hashes guard, caught here from the scheduling side.
//! * **Throughput** (`*_per_sec`): machine-dependent, reported as a ratio
//!   against the baseline for the log, never gated.

use std::process::ExitCode;

use lazyeye_json::Json;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_check <baseline BENCH.json> <current BENCH.json>");
        return ExitCode::from(2);
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };

    let Json::Obj(base_sections) = &baseline else {
        eprintln!("bench_check: baseline is not an object");
        return ExitCode::FAILURE;
    };

    let mut drift = 0usize;
    for (section, base_val) in base_sections {
        if section == "schema" || section == "note" {
            continue;
        }
        let Some(cur_val) = current.get(section) else {
            eprintln!("bench_check: section {section:?} missing from {current_path}");
            drift += 1;
            continue;
        };
        // Gate: counters must match exactly.
        if let Some(Json::Obj(base_counters)) = base_val.get("counters") {
            for (name, base_n) in base_counters {
                let cur_n = cur_val.get("counters").and_then(|c| c.get(name));
                if cur_n != Some(base_n) {
                    eprintln!(
                        "bench_check: DRIFT {section}.counters.{name}: baseline {base_n}, current {}",
                        cur_n.map(|v| v.to_string()).unwrap_or_else(|| "-".into())
                    );
                    drift += 1;
                }
            }
        }
        // Report: throughput ratios.
        if let Json::Obj(fields) = base_val {
            for (name, v) in fields {
                if !name.contains("_per_sec") {
                    continue;
                }
                let (Some(base_r), Some(cur_r)) =
                    (v.as_f64(), cur_val.get(name).and_then(|x| x.as_f64()))
                else {
                    continue;
                };
                if base_r > 0.0 {
                    println!(
                        "bench_check: {section}.{name}: {cur_r:.0} vs baseline {base_r:.0} ({:.2}x)",
                        cur_r / base_r
                    );
                }
            }
        }
    }

    // Gate: the compiled fast path must hold ≥ 2× over full simulation.
    // Both series come from the same run of the same workload in the
    // current file, so the ratio is machine-independent even though the
    // absolute numbers are not.
    if let Some(fp) = current.get("fastpath") {
        let rate = |name: &str| fp.get(name).and_then(|v| v.as_f64());
        if let (Some(fast), Some(sim)) = (rate("fast_runs_per_sec"), rate("sim_runs_per_sec")) {
            if sim > 0.0 && fast / sim < 2.0 {
                eprintln!(
                    "bench_check: FAIL fastpath speedup {:.2}x < 2.00x (fast {fast:.0} vs sim {sim:.0} runs/sec)",
                    fast / sim
                );
                drift += 1;
            } else if sim > 0.0 {
                println!(
                    "bench_check: fastpath speedup {:.2}x over full simulation (gate: >= 2.00x)",
                    fast / sim
                );
            }
        }
    }

    if drift > 0 {
        eprintln!("bench_check: {drift} counter(s) drifted from the pinned baseline");
        return ExitCode::FAILURE;
    }
    println!("bench_check: counters match the pinned baseline");
    ExitCode::SUCCESS
}

//! Reproduces the **§5.2 stall finding**: a delayed DNS **A** answer
//! delays (and can break) IPv6 connections in Chrome/Firefox although the
//! AAAA answer arrived instantly — and the Chromium `EnableHappyEyeballsV3`
//! feature flag fixes it.

use lazyeye_bench::{emit, fresh};
use lazyeye_clients::{chromium_hev3_flag, figure2_clients, safari_clients};
use lazyeye_testbed::{run_rd_case, DelayedRecord, RdCaseConfig, SweepSpec, Table};

fn main() {
    fresh("stall");
    let chrome = figure2_clients()
        .into_iter()
        .find(|c| c.name == "Chrome" && c.version == "130.0")
        .unwrap();
    let firefox = figure2_clients()
        .into_iter()
        .find(|c| c.name == "Firefox" && c.version == "132.0")
        .unwrap();
    let safari = safari_clients().into_iter().find(|c| !c.mobile).unwrap();
    let fixed = chromium_hev3_flag();

    let mut t = Table::new(
        "§5.2 — first connection attempt vs delayed A answer (AAAA instant)",
        vec!["Client", "A delay", "first SYN at", "family", "stalled?"],
    );

    for (profile, label) in [
        (&chrome, "Chrome 130.0"),
        (&firefox, "Firefox 132.0"),
        (&safari, "Safari 17.6"),
        (&fixed, "Chromium + HEv3 flag"),
    ] {
        for delay_ms in [0u64, 400, 800, 2000, 6000] {
            let cfg = RdCaseConfig {
                delayed: DelayedRecord::A,
                sweep: SweepSpec::new(delay_ms, delay_ms, 1),
                repetitions: 1,
            };
            let samples = run_rd_case(profile, &cfg, 7000 + delay_ms);
            let s = &samples[0];
            let first = s.first_attempt_ms.unwrap_or(f64::NAN);
            let stalled = first > delay_ms as f64 * 0.9 && delay_ms > 0;
            t.row(vec![
                label.into(),
                format!("{delay_ms} ms"),
                format!("{first:.1} ms"),
                s.family
                    .map(|f| f.label().to_string())
                    .unwrap_or_else(|| "FAILED".into()),
                if stalled {
                    "STALLED".into()
                } else {
                    "no".to_string()
                },
            ]);
        }
    }
    emit("stall", &t.render());
    emit(
        "stall",
        "Paper check: Chrome and Firefox wait for the A answer before any\n\
         connection attempt — a slow A lookup delays IPv6 although the AAAA\n\
         arrived instantly, and with high delays plus tight resolver\n\
         configurations connections fail entirely. Safari connects\n\
         immediately, and Chromium's HEv3 feature flag (April 2024) removes\n\
         the stall — matching §5.2.",
    );
}

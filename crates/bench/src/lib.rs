//! # lazyeye-bench — experiment reproduction harness
//!
//! One binary per paper table/figure (see DESIGN.md's experiment index):
//!
//! | Binary         | Reproduces |
//! |----------------|------------|
//! | `repro_table1` | Table 1 — HE version parameters |
//! | `repro_fig2`   | Figure 2 — connection family vs configured IPv6 delay |
//! | `repro_table2` | Table 2 — client feature matrix |
//! | `repro_table3` | Table 3 — resolver IPv6 usage |
//! | `repro_table4` | Table 4 — open resolver inventory |
//! | `repro_fig4`   | Figure 4 — web tool CAD/RD grids |
//! | `repro_fig5`   | Figure 5 — address selection order |
//! | `repro_table5` | Table 5 — web campaign browser/OS inventory |
//! | `repro_icpr`   | §5.1/§5.2 — iCloud Private Relay egress behaviour |
//! | `repro_stall`  | §5.2 — the delayed-A stall and the HEv3-flag fix |
//! | `repro_all`    | everything above, into `results/` |
//!
//! Criterion benches (`cargo bench`) measure the framework itself (DNS
//! codec, simulator core, HE engine, resolver) and the ablations DESIGN.md
//! calls out.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Where reproduction outputs land (`results/` at the workspace root).
pub fn results_dir() -> PathBuf {
    let candidates = [
        Path::new("results"),
        Path::new("../results"),
        Path::new("../../results"),
    ];
    for c in candidates {
        if c.is_dir() {
            return c.to_path_buf();
        }
    }
    let p = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Prints to stdout *and* appends to `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let path = results_dir().join(format!("{name}.txt"));
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(content.as_bytes());
        let _ = f.write_all(b"\n");
    }
}

/// Truncates a result file before a fresh reproduction run.
pub fn fresh(name: &str) {
    let path = results_dir().join(format!("{name}.txt"));
    let _ = std::fs::write(&path, b"");
}

/// Renders a Figure 2-style strip: one character per sweep point
/// (`6` = IPv6, `4` = IPv4, `x` = failed).
pub fn strip(cells: &[Option<lazyeye_net::Family>]) -> String {
    cells
        .iter()
        .map(|f| match f {
            Some(lazyeye_net::Family::V6) => '6',
            Some(lazyeye_net::Family::V4) => '4',
            None => 'x',
        })
        .collect()
}

/// `fast mode` reduces sweep resolution for quick runs
/// (`LAZYEYE_FAST=1`).
pub fn fast_mode() -> bool {
    std::env::var("LAZYEYE_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Machine-readable bench output (`BENCH.json`).
///
/// Each bench binary contributes one top-level section (`sim`,
/// `campaign`, `fleet`) holding throughput numbers (`*_per_sec`,
/// machine-dependent, informational) and a `counters` object (scheduler
/// polls, timers, tasks for a fixed-seed smoke workload — deterministic
/// across machines and worker counts, pinned by the checked-in baseline
/// and gated in CI by `bench_check`).
pub mod bench_json {
    use lazyeye_json::Json;
    use std::path::PathBuf;

    /// Where the generated `BENCH.json` goes: `$LAZYEYE_BENCH_JSON`
    /// (absolute paths recommended — cargo runs benches with the package
    /// directory as cwd), or `<workspace>/target/BENCH.json` by default.
    pub fn path() -> PathBuf {
        if let Ok(p) = std::env::var("LAZYEYE_BENCH_JSON") {
            return PathBuf::from(p);
        }
        PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH.json"
        ))
    }

    /// Loads the current file (or an empty object), replaces `section`,
    /// and writes it back pretty-printed.
    pub fn merge_section(section: &str, value: Json) {
        let p = path();
        let mut doc = std::fs::read_to_string(&p)
            .ok()
            .and_then(|t| Json::parse(&t).ok())
            .unwrap_or_else(|| Json::Obj(Vec::new()));
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "schema" && k != section);
            pairs.insert(
                0,
                ("schema".to_string(), Json::Str("lazyeye-bench/1".into())),
            );
            pairs.push((section.to_string(), value));
        }
        let mut text = doc.to_string_pretty();
        text.push('\n');
        if let Err(e) = std::fs::write(&p, text) {
            eprintln!("[bench] warning: cannot write {}: {e}", p.display());
        } else {
            println!("[bench] wrote section {section:?} to {}", p.display());
        }
    }

    /// Zeroes every registered metric before a fixed bench workload, so
    /// [`counters`] reads a clean per-workload tally.
    pub fn reset_counters() {
        lazyeye_obs::registry::reset_all();
    }

    /// The scheduler-counter object for a section, read straight from
    /// the `lazyeye-obs` registry (`sim.*` metric names). The poll,
    /// timer and task counters live in the virtual clock domain, so the
    /// values are deterministic for a fixed-seed workload; the slab-slot
    /// counters are wall-domain but still fixed at `--jobs 1`, which is
    /// how every bench emitter runs its pinned workload.
    pub fn counters() -> Json {
        use lazyeye_obs::Clock::{Virtual, Wall};
        Json::obj(vec![
            (
                "polls",
                Json::UInt(lazyeye_obs::counter("sim.polls", Virtual).get()),
            ),
            (
                "timers_armed",
                Json::UInt(lazyeye_obs::counter("sim.timers_armed", Virtual).get()),
            ),
            (
                "timers_fired",
                Json::UInt(lazyeye_obs::counter("sim.timers_fired", Virtual).get()),
            ),
            (
                "tasks_spawned",
                Json::UInt(lazyeye_obs::counter("sim.tasks_spawned", Virtual).get()),
            ),
            (
                "slots_allocated",
                Json::UInt(lazyeye_obs::counter("sim.slots_allocated", Wall).get()),
            ),
            (
                "slots_reused",
                Json::UInt(lazyeye_obs::counter("sim.slots_reused", Wall).get()),
            ),
        ])
    }
}

//! # lazyeye-bench — experiment reproduction harness
//!
//! One binary per paper table/figure (see DESIGN.md's experiment index):
//!
//! | Binary         | Reproduces |
//! |----------------|------------|
//! | `repro_table1` | Table 1 — HE version parameters |
//! | `repro_fig2`   | Figure 2 — connection family vs configured IPv6 delay |
//! | `repro_table2` | Table 2 — client feature matrix |
//! | `repro_table3` | Table 3 — resolver IPv6 usage |
//! | `repro_table4` | Table 4 — open resolver inventory |
//! | `repro_fig4`   | Figure 4 — web tool CAD/RD grids |
//! | `repro_fig5`   | Figure 5 — address selection order |
//! | `repro_table5` | Table 5 — web campaign browser/OS inventory |
//! | `repro_icpr`   | §5.1/§5.2 — iCloud Private Relay egress behaviour |
//! | `repro_stall`  | §5.2 — the delayed-A stall and the HEv3-flag fix |
//! | `repro_all`    | everything above, into `results/` |
//!
//! Criterion benches (`cargo bench`) measure the framework itself (DNS
//! codec, simulator core, HE engine, resolver) and the ablations DESIGN.md
//! calls out.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Where reproduction outputs land (`results/` at the workspace root).
pub fn results_dir() -> PathBuf {
    let candidates = [
        Path::new("results"),
        Path::new("../results"),
        Path::new("../../results"),
    ];
    for c in candidates {
        if c.is_dir() {
            return c.to_path_buf();
        }
    }
    let p = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Prints to stdout *and* appends to `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let path = results_dir().join(format!("{name}.txt"));
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(content.as_bytes());
        let _ = f.write_all(b"\n");
    }
}

/// Truncates a result file before a fresh reproduction run.
pub fn fresh(name: &str) {
    let path = results_dir().join(format!("{name}.txt"));
    let _ = std::fs::write(&path, b"");
}

/// Renders a Figure 2-style strip: one character per sweep point
/// (`6` = IPv6, `4` = IPv4, `x` = failed).
pub fn strip(cells: &[Option<lazyeye_net::Family>]) -> String {
    cells
        .iter()
        .map(|f| match f {
            Some(lazyeye_net::Family::V6) => '6',
            Some(lazyeye_net::Family::V4) => '4',
            None => 'x',
        })
        .collect()
}

/// `fast mode` reduces sweep resolution for quick runs
/// (`LAZYEYE_FAST=1`).
pub fn fast_mode() -> bool {
    std::env::var("LAZYEYE_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

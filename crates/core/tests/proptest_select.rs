//! Property-based tests for address selection: whatever the inputs, the
//! interlacing strategies must uphold their invariants.

use std::net::IpAddr;

use lazyeye_core::select::interlace;
use lazyeye_core::InterlaceStrategy;
use lazyeye_net::Family;
use proptest::prelude::*;

fn arb_v6_list() -> impl Strategy<Value = Vec<IpAddr>> {
    proptest::collection::btree_set(any::<u128>(), 0..12).prop_map(|set| {
        set.into_iter()
            .map(|v| IpAddr::V6(std::net::Ipv6Addr::from(v)))
            .collect()
    })
}

fn arb_v4_list() -> impl Strategy<Value = Vec<IpAddr>> {
    proptest::collection::btree_set(any::<u32>(), 0..12).prop_map(|set| {
        set.into_iter()
            .map(|v| IpAddr::V4(std::net::Ipv4Addr::from(v)))
            .collect()
    })
}

fn arb_strategy() -> impl Strategy<Value = InterlaceStrategy> {
    prop_oneof![
        (1usize..4).prop_map(|n| InterlaceStrategy::Rfc8305 {
            first_family_count: n
        }),
        Just(InterlaceStrategy::SafariStyle),
        Just(InterlaceStrategy::Hev1SingleFallback),
        Just(InterlaceStrategy::NoFallback),
    ]
}

fn arb_family() -> impl Strategy<Value = Family> {
    prop_oneof![Just(Family::V6), Just(Family::V4)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// No strategy ever invents, duplicates, or misattributes addresses.
    #[test]
    fn output_is_a_subset_without_duplicates(
        v6 in arb_v6_list(),
        v4 in arb_v4_list(),
        pref in arb_family(),
        strat in arb_strategy(),
    ) {
        let out = interlace(&v6, &v4, pref, strat);
        let mut seen = std::collections::HashSet::new();
        for a in &out {
            prop_assert!(seen.insert(*a), "duplicate {a}");
            prop_assert!(v6.contains(a) || v4.contains(a), "invented {a}");
        }
    }

    /// Full strategies (RFC 8305, Safari) must use *every* address.
    #[test]
    fn full_strategies_are_exhaustive(
        v6 in arb_v6_list(),
        v4 in arb_v4_list(),
        pref in arb_family(),
        fafc in 1usize..4,
    ) {
        for strat in [
            InterlaceStrategy::Rfc8305 { first_family_count: fafc },
            InterlaceStrategy::SafariStyle,
        ] {
            let out = interlace(&v6, &v4, pref, strat);
            prop_assert_eq!(out.len(), v6.len() + v4.len());
        }
    }

    /// The first candidate is always of the preferred family when the
    /// preferred family has any address at all.
    #[test]
    fn preferred_family_goes_first(
        v6 in arb_v6_list(),
        v4 in arb_v4_list(),
        pref in arb_family(),
        strat in arb_strategy(),
    ) {
        let has_pref = match pref {
            Family::V6 => !v6.is_empty(),
            Family::V4 => !v4.is_empty(),
        };
        prop_assume!(has_pref);
        let out = interlace(&v6, &v4, pref, strat);
        prop_assert_eq!(Family::of(out[0]), pref);
    }

    /// RFC 8305: at most `first_family_count` preferred addresses before
    /// the first other-family address (when the other family is present).
    #[test]
    fn fafc_bounds_the_head(
        v6 in arb_v6_list(),
        v4 in arb_v4_list(),
        fafc in 1usize..4,
    ) {
        prop_assume!(!v6.is_empty() && !v4.is_empty());
        let out = interlace(
            &v6,
            &v4,
            Family::V6,
            InterlaceStrategy::Rfc8305 { first_family_count: fafc },
        );
        let head_v6 = out.iter().take_while(|a| Family::of(**a) == Family::V6).count();
        prop_assert!(head_v6 <= fafc.max(1));
    }

    /// RFC 8305 alternation: after the head, no two consecutive candidates
    /// share a family while both families still have remaining addresses.
    #[test]
    fn rfc8305_alternates_while_possible(
        v6 in arb_v6_list(),
        v4 in arb_v4_list(),
    ) {
        prop_assume!(!v6.is_empty() && !v4.is_empty());
        let out = interlace(
            &v6,
            &v4,
            Family::V6,
            InterlaceStrategy::Rfc8305 { first_family_count: 1 },
        );
        // Walk the list tracking remaining counts; consecutive same-family
        // pairs are only allowed once the other family is exhausted.
        let mut rem_v6 = v6.len();
        let mut rem_v4 = v4.len();
        let mut prev: Option<Family> = None;
        for (i, a) in out.iter().enumerate() {
            let fam = Family::of(*a);
            match fam {
                Family::V6 => rem_v6 -= 1,
                Family::V4 => rem_v4 -= 1,
            }
            if i > 0 && prev == Some(fam) {
                let other_remaining_before = match fam {
                    Family::V6 => rem_v4,
                    Family::V4 => rem_v6,
                };
                prop_assert_eq!(
                    other_remaining_before, 0,
                    "consecutive {:?} at {} while other family had addresses", fam, i
                );
            }
            prev = Some(fam);
        }
    }

    /// HEv1 single fallback never returns more than two candidates, one
    /// per family.
    #[test]
    fn hev1_at_most_one_per_family(
        v6 in arb_v6_list(),
        v4 in arb_v4_list(),
        pref in arb_family(),
    ) {
        let out = interlace(&v6, &v4, pref, InterlaceStrategy::Hev1SingleFallback);
        prop_assert!(out.len() <= 2);
        let v6_n = out.iter().filter(|a| Family::of(**a) == Family::V6).count();
        let v4_n = out.iter().filter(|a| Family::of(**a) == Family::V4).count();
        prop_assert!(v6_n <= 1 && v4_n <= 1);
    }

    /// NoFallback never touches the other family.
    #[test]
    fn nofallback_is_single_family(
        v6 in arb_v6_list(),
        v4 in arb_v4_list(),
        pref in arb_family(),
    ) {
        let out = interlace(&v6, &v4, pref, InterlaceStrategy::NoFallback);
        prop_assert!(out.iter().all(|a| Family::of(*a) == pref));
    }

    /// Safari style: positions 0-1 preferred (when available), position 2
    /// other (when available), and the tail is all-preferred then
    /// all-other.
    #[test]
    fn safari_shape(
        v6 in arb_v6_list(),
        v4 in arb_v4_list(),
    ) {
        prop_assume!(v6.len() >= 3 && v4.len() >= 2);
        let out = interlace(&v6, &v4, Family::V6, InterlaceStrategy::SafariStyle);
        prop_assert_eq!(Family::of(out[0]), Family::V6);
        prop_assert_eq!(Family::of(out[1]), Family::V6);
        prop_assert_eq!(Family::of(out[2]), Family::V4);
        // After the first three: v6 block then v4 block.
        let tail: Vec<Family> = out[3..].iter().map(|a| Family::of(*a)).collect();
        let first_v4 = tail.iter().position(|f| *f == Family::V4).unwrap_or(tail.len());
        prop_assert!(tail[..first_v4].iter().all(|f| *f == Family::V6));
        prop_assert!(tail[first_v4..].iter().all(|f| *f == Family::V4));
    }
}

//! Property-based driver for the sans-IO [`HeMachine`]: whatever valid
//! input ordering a driver produces, the machine must
//!
//! * never ask for a timer in the past (`Output::ArmTimer(t)` with
//!   `t < now` would deadlock or reorder a real driver), and
//! * never start a connection attempt after the procedure established
//!   (a driver would leak sockets it has no way to cancel).
//!
//! The test plays the role of a chaotic-but-correct driver: at every
//! [`Waiting`] state it picks one of the inputs a real driver could
//! legally produce (answers in arbitrary order, arbitrary handshake
//! outcomes and timings, channel closes, timer fires), advancing a
//! monotone clock as it goes.

use std::net::IpAddr;
use std::time::Duration;

use lazyeye_core::{
    CadMode, HeConfig, HeMachine, HeVersion, Input, InterlaceStrategy, Output, Quirks, Waiting,
};
use lazyeye_dns::{Name, RData, Record, RrType, SvcParam, SvcParams};
use lazyeye_net::Family;
use lazyeye_resolver::{AnswerOutcome, DnsAnswer};
use lazyeye_sim::SimTime;
use proptest::prelude::*;
use proptest::TestCaseError;

fn arb_cad() -> impl Strategy<Value = CadMode> {
    prop_oneof![
        (10u64..400).prop_map(|ms| CadMode::Fixed(Duration::from_millis(ms))),
        Just(CadMode::rfc_dynamic()),
    ]
}

fn arb_interlace() -> impl Strategy<Value = InterlaceStrategy> {
    prop_oneof![
        (1usize..3).prop_map(|n| InterlaceStrategy::Rfc8305 {
            first_family_count: n
        }),
        Just(InterlaceStrategy::SafariStyle),
        Just(InterlaceStrategy::Hev1SingleFallback),
        Just(InterlaceStrategy::NoFallback),
    ]
}

fn arb_config() -> impl Strategy<Value = HeConfig> {
    (
        prop_oneof![
            Just(HeVersion::V1),
            Just(HeVersion::V2),
            Just(HeVersion::V3)
        ],
        arb_cad(),
        proptest::option::of(0u64..200),
        arb_interlace(),
        prop_oneof![Just(Family::V6), Just(Family::V4)],
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        50u64..3000,
    )
        .prop_map(
            |(version, cad, rd_ms, interlace, prefer, use_quic, wait_all, stop_pair, overall)| {
                HeConfig {
                    version,
                    cad,
                    resolution_delay: rd_ms.map(Duration::from_millis),
                    interlace,
                    prefer,
                    attempt_timeout: Duration::from_millis(800),
                    overall_deadline: Duration::from_millis(overall),
                    cache_ttl: Duration::from_secs(600),
                    use_quic,
                    quirks: Quirks {
                        wait_for_all_answers: wait_all,
                        stop_after_first_pair: stop_pair,
                    },
                }
            },
        )
}

/// Per-qtype answer payload: address count and terminal outcome.
fn arb_payload() -> impl Strategy<Value = (usize, u8)> {
    (0usize..4, 0u8..4)
}

fn answer_for(qtype: RrType, payload: (usize, u8), at: SimTime) -> DnsAnswer {
    let (count, outcome) = payload;
    let outcome = match outcome {
        0 => AnswerOutcome::Ok,
        1 => AnswerOutcome::NxDomain,
        2 => AnswerOutcome::ServFail,
        _ => AnswerOutcome::Timeout,
    };
    let name = Name::parse("he.test").unwrap();
    let mut records = Vec::new();
    if outcome == AnswerOutcome::Ok {
        for i in 0..count {
            let rdata = match qtype {
                RrType::Aaaa => RData::Aaaa(format!("2001:db8::{}", i + 1).parse().unwrap()),
                RrType::A => RData::A(format!("192.0.2.{}", i + 1).parse().unwrap()),
                _ => RData::Https(
                    SvcParams::service(1, Name::root())
                        .with(SvcParam::Alpn(vec![b"h3".to_vec()]))
                        .with(SvcParam::Ipv6Hint(vec![format!("2001:db8::f{}", i + 1)
                            .parse()
                            .unwrap()])),
                ),
            };
            records.push(Record::new(name.clone(), 300, rdata));
        }
    }
    DnsAnswer {
        qtype,
        at,
        records,
        outcome,
    }
}

const ATTEMPT_ERRORS: [&str; 3] = ["refused", "timeout", "unreachable"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn valid_orderings_never_arm_past_timers_or_attempt_after_established(
        cfg in arb_config(),
        cached in proptest::option::of(proptest::bool::ANY),
        payloads in proptest::collection::vec(arb_payload(), 3),
        start_ms in 0u64..1000,
        script in proptest::collection::vec((any::<u16>(), 0u64..300), 0..250),
    ) {
        let qtypes: Vec<RrType> = if cfg.use_quic {
            vec![RrType::Https, RrType::Aaaa, RrType::A]
        } else {
            vec![RrType::Aaaa, RrType::A]
        };
        let start = SimTime::from_millis(start_ms);
        let deadline = start + cfg.overall_deadline;
        let mut machine = HeMachine::new(cfg, qtypes.clone(), deadline);

        // One pending answer per queried type; the script's choice value
        // picks which arrives next, so every arrival order is exercised.
        let mut pending: Vec<(RrType, (usize, u8))> = qtypes
            .iter()
            .zip(payloads)
            .map(|(&q, p)| (q, p))
            .collect();
        let mut dns_closed = false;

        let mut now = start;
        let mut established = false;
        let mut done = false;
        // Attempt indices started but not yet resolved.
        let mut outstanding: Vec<usize> = Vec::new();

        let cached_addr = cached.map(|v6| -> IpAddr {
            if v6 {
                "2001:db8::cc".parse().unwrap()
            } else {
                "192.0.2.204".parse().unwrap()
            }
        });

        let mut script = script.into_iter();
        let feed = |machine: &mut HeMachine,
                        input: Input,
                        now: SimTime,
                        established: &mut bool,
                        done: &mut bool,
                        outstanding: &mut Vec<usize>|
         -> Result<(), TestCaseError> {
            for out in machine.process(input, now) {
                match out {
                    Output::ArmTimer(t) => {
                        prop_assert!(
                            t >= now,
                            "timer armed in the past: {t:?} < now {now:?}"
                        );
                    }
                    Output::StartAttempt { index, .. } => {
                        prop_assert!(
                            !*established,
                            "attempt {index} started after Established"
                        );
                        outstanding.push(index);
                    }
                    Output::Established { .. } => {
                        *established = true;
                        *done = true;
                    }
                    Output::Failed(_) => {
                        *done = true;
                    }
                    _ => {}
                }
            }
            Ok(())
        };

        while !done {
            let Some((choice, delta_ms)) = script.next() else {
                // Script exhausted: a real run would eventually hit the
                // overall deadline; do exactly that.
                now = now.max(deadline);
                feed(&mut machine, Input::DeadlineExpired, now, &mut established, &mut done, &mut outstanding)?;
                break;
            };
            let choice = usize::from(choice);
            let delta = Duration::from_millis(delta_ms);

            match machine.waiting() {
                Waiting::Start => {
                    feed(&mut machine, Input::Start { cached: cached_addr }, now, &mut established, &mut done, &mut outstanding)?;
                }
                Waiting::CachedAttempt { .. } => {
                    now += delta;
                    let ok = choice % 2 == 0;
                    feed(&mut machine, Input::CachedResult { ok }, now, &mut established, &mut done, &mut outstanding)?;
                }
                Waiting::Cad { .. } => {
                    // Synchronous answer: no time passes.
                    let cad = Duration::from_millis((choice % 500) as u64);
                    feed(&mut machine, Input::Cad(cad), now, &mut established, &mut done, &mut outstanding)?;
                }
                Waiting::Dns => {
                    now += delta;
                    let input = if pending.is_empty() {
                        dns_closed = true;
                        Input::Dns(None)
                    } else {
                        let (qtype, payload) = pending.remove(choice % pending.len());
                        Input::Dns(Some(answer_for(qtype, payload, now)))
                    };
                    feed(&mut machine, input, now, &mut established, &mut done, &mut outstanding)?;
                }
                Waiting::DnsOrTimer { deadline: rd } => {
                    let arrival = now + delta;
                    if arrival >= rd || (pending.is_empty() && dns_closed) {
                        // The timer fires before the next DNS event.
                        now = now.max(rd);
                        feed(&mut machine, Input::Timer, now, &mut established, &mut done, &mut outstanding)?;
                    } else {
                        now = arrival;
                        let input = if pending.is_empty() {
                            dns_closed = true;
                            Input::Dns(None)
                        } else {
                            let (qtype, payload) = pending.remove(choice % pending.len());
                            Input::Dns(Some(answer_for(qtype, payload, now)))
                        };
                        feed(&mut machine, input, now, &mut established, &mut done, &mut outstanding)?;
                    }
                }
                Waiting::Race { next_start, dns_open } => {
                    // Candidate events a real driver could deliver next.
                    let mut options: Vec<u8> = Vec::new();
                    if !outstanding.is_empty() {
                        options.push(0); // an attempt resolves
                    }
                    if next_start.is_some() {
                        options.push(1); // the stagger timer fires
                    }
                    if dns_open && !dns_closed {
                        options.push(2); // a DNS event (answer or close)
                    }
                    if options.is_empty() {
                        // Nothing can happen any more: the attempt
                        // channel closes.
                        feed(&mut machine, Input::AttemptsClosed, now, &mut established, &mut done, &mut outstanding)?;
                        continue;
                    }
                    match options[choice % options.len()] {
                        0 => {
                            let arrival = now + delta;
                            if let Some(t) = next_start {
                                if arrival >= t {
                                    // Timer beats the result.
                                    now = now.max(t);
                                    feed(&mut machine, Input::Timer, now, &mut established, &mut done, &mut outstanding)?;
                                    continue;
                                }
                            }
                            now = arrival;
                            let slot = choice % outstanding.len();
                            let index = outstanding.remove(slot);
                            let result = if delta_ms % 3 == 0 {
                                Ok(Duration::from_millis(delta_ms))
                            } else {
                                Err(ATTEMPT_ERRORS[choice % ATTEMPT_ERRORS.len()])
                            };
                            feed(&mut machine, Input::AttemptResult { index, result }, now, &mut established, &mut done, &mut outstanding)?;
                        }
                        1 => {
                            let t = next_start.unwrap();
                            now = now.max(t);
                            feed(&mut machine, Input::Timer, now, &mut established, &mut done, &mut outstanding)?;
                        }
                        _ => {
                            now += delta;
                            let input = if pending.is_empty() {
                                dns_closed = true;
                                Input::Dns(None)
                            } else {
                                let (qtype, payload) = pending.remove(choice % pending.len());
                                Input::Dns(Some(answer_for(qtype, payload, now)))
                            };
                            feed(&mut machine, input, now, &mut established, &mut done, &mut outstanding)?;
                        }
                    }
                }
                Waiting::Done => break,
            }
        }

        if done {
            prop_assert!(machine.is_done());
            prop_assert_eq!(machine.waiting(), Waiting::Done);
        }
    }
}

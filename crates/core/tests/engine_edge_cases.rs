//! Engine edge cases beyond the happy paths: empty answer sets, inverted
//! family preference, QUIC fallback, cache expiry, deadline placement.

use std::net::SocketAddr;
use std::rc::Rc;
use std::time::Duration;

use lazyeye_authns::{serve, AuthConfig, AuthServer, TestDomain};
use lazyeye_core::{
    CadMode, HappyEyeballs, HeConfig, HeError, HeEventKind, HistoryStore, InterlaceStrategy,
};
use lazyeye_dns::{Name, RrType, Zone, ZoneSet};
use lazyeye_net::{quic_serve, Family, Host, Netem, NetemRule, Network, QuicServerConfig};
use lazyeye_resolver::{StubConfig, StubResolver};
use lazyeye_sim::{spawn, Sim};

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

struct Bed {
    sim: Sim,
    server: Host,
    client: Host,
}

fn bed_with(auth_cfg: AuthConfig, seed: u64) -> Bed {
    let sim = Sim::new(seed);
    let net = Network::new();
    let server = net.host("server").v4("192.0.2.1").v6("2001:db8::1").build();
    let client = net
        .host("client")
        .v4("192.0.2.100")
        .v6("2001:db8::100")
        .build();
    let auth = AuthServer::new(auth_cfg);
    sim.enter(|| {
        spawn(serve(server.udp_bind_any(53).unwrap(), auth));
        let listener = server.tcp_listen_any(80).unwrap();
        spawn(async move {
            loop {
                let Ok((s, _)) = listener.accept().await else {
                    break;
                };
                std::mem::forget(s);
            }
        });
    });
    Bed {
        sim,
        server,
        client,
    }
}

fn dual_stack_zone() -> AuthConfig {
    let mut zone = Zone::new(n("hetest"));
    zone.a(&n("www.hetest"), "192.0.2.1".parse().unwrap(), 300);
    zone.aaaa(&n("www.hetest"), "2001:db8::1".parse().unwrap(), 300);
    let mut zones = ZoneSet::new();
    zones.add(zone);
    AuthConfig {
        zones,
        ..AuthConfig::default()
    }
}

fn v4_only_zone() -> AuthConfig {
    let mut zone = Zone::new(n("hetest"));
    zone.a(&n("www.hetest"), "192.0.2.1".parse().unwrap(), 300);
    let mut zones = ZoneSet::new();
    zones.add(zone);
    AuthConfig {
        zones,
        ..AuthConfig::default()
    }
}

fn engine(bed: &Bed, cfg: HeConfig) -> HappyEyeballs {
    let stub = Rc::new(StubResolver::new(
        bed.client.clone(),
        StubConfig {
            servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 53)],
            ..StubConfig::default()
        },
    ));
    HappyEyeballs::new(cfg, bed.client.clone(), stub, Rc::new(HistoryStore::new()))
}

#[test]
fn v4_only_domain_connects_without_rd_penalty() {
    // AAAA is NODATA (terminal, not delayed): the engine must not sit out
    // the RD — both answers are terminal almost immediately.
    let mut bed = bed_with(v4_only_zone(), 1);
    let he = engine(&bed, HeConfig::rfc8305());
    let res = bed
        .sim
        .block_on(async move { he.connect(&n("www.hetest"), 80).await });
    assert_eq!(res.connection.unwrap().family(), Family::V4);
    let first = res.log.first_attempt(Family::V4).unwrap();
    assert!(
        first.as_millis() < 60,
        "NODATA AAAA must not add a long wait, got {} ms",
        first.as_millis()
    );
}

#[test]
fn v4_preference_flips_the_race() {
    let mut bed = bed_with(dual_stack_zone(), 2);
    let mut cfg = HeConfig::rfc8305();
    cfg.prefer = Family::V4;
    let he = engine(&bed, cfg);
    let res = bed
        .sim
        .block_on(async move { he.connect(&n("www.hetest"), 80).await });
    assert_eq!(res.connection.unwrap().family(), Family::V4);
    // And a broken v4 now falls back to v6 at the CAD.
    let mut bed2 = bed_with(dual_stack_zone(), 3);
    bed2.server
        .add_egress(NetemRule::family(Family::V4, Netem::delay_ms(1000)));
    let mut cfg2 = HeConfig::rfc8305();
    cfg2.prefer = Family::V4;
    let he2 = engine(&bed2, cfg2);
    let res2 = bed2
        .sim
        .block_on(async move { he2.connect(&n("www.hetest"), 80).await });
    assert_eq!(res2.connection.unwrap().family(), Family::V6);
}

#[test]
fn quic_unresponsive_falls_back_to_tcp_within_hev3() {
    // HTTPS RR advertises h3, but the QUIC endpoint never answers: the
    // race must settle on TCP.
    let mut zone = Zone::new(n("hetest"));
    zone.a(&n("www.hetest"), "192.0.2.1".parse().unwrap(), 300);
    zone.aaaa(&n("www.hetest"), "2001:db8::1".parse().unwrap(), 300);
    zone.add(lazyeye_dns::Record::new(
        n("www.hetest"),
        300,
        lazyeye_dns::RData::Https(
            lazyeye_dns::SvcParams::service(1, Name::root())
                .with(lazyeye_dns::SvcParam::Alpn(vec![b"h3".to_vec()])),
        ),
    ));
    let mut zones = ZoneSet::new();
    zones.add(zone);
    let mut bed = bed_with(
        AuthConfig {
            zones,
            ..AuthConfig::default()
        },
        4,
    );
    let server = bed.server.clone();
    bed.sim.enter(|| {
        let sock = server.udp_bind_any(80).unwrap();
        spawn(quic_serve(
            sock,
            QuicServerConfig {
                ech: false,
                respond: false, // dead QUIC
            },
        ));
    });
    let stub = Rc::new(StubResolver::new(
        bed.client.clone(),
        StubConfig {
            servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 53)],
            qtypes: vec![RrType::Https, RrType::Aaaa, RrType::A],
            ..StubConfig::default()
        },
    ));
    let he = HappyEyeballs::new(
        HeConfig::hev3_draft(),
        bed.client.clone(),
        stub,
        Rc::new(HistoryStore::new()),
    );
    let res = bed
        .sim
        .block_on(async move { he.connect(&n("www.hetest"), 80).await });
    let conn = res.connection.unwrap();
    assert_eq!(conn.proto(), lazyeye_core::CandidateProto::Tcp);
}

#[test]
fn outcome_cache_expires_after_ttl() {
    let mut bed = bed_with(dual_stack_zone(), 5);
    let stub = Rc::new(StubResolver::new(
        bed.client.clone(),
        StubConfig {
            servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 53)],
            ..StubConfig::default()
        },
    ));
    let mut cfg = HeConfig::rfc8305();
    cfg.cache_ttl = Duration::from_secs(10);
    let he = Rc::new(HappyEyeballs::new(
        cfg,
        bed.client.clone(),
        stub,
        Rc::new(HistoryStore::new()),
    ));
    let (second_cached, third_cached) = bed.sim.block_on(async move {
        let _ = he.connect(&n("www.hetest"), 80).await;
        let r2 = he.connect(&n("www.hetest"), 80).await;
        let c2 = r2
            .log
            .events
            .iter()
            .any(|e| matches!(e.kind, HeEventKind::UsedCachedOutcome { .. }));
        lazyeye_sim::sleep(Duration::from_secs(11)).await;
        let r3 = he.connect(&n("www.hetest"), 80).await;
        let c3 = r3
            .log
            .events
            .iter()
            .any(|e| matches!(e.kind, HeEventKind::UsedCachedOutcome { .. }));
        (c2, c3)
    });
    assert!(second_cached, "within TTL: cached outcome used");
    assert!(!third_cached, "after TTL: full procedure again");
}

#[test]
fn cached_outcome_failure_falls_back_to_full_procedure() {
    // Win over v6, then blackhole the v6 address: the next connect must
    // notice the cached address is dead and still succeed via v4.
    let mut bed = bed_with(dual_stack_zone(), 6);
    let stub = Rc::new(StubResolver::new(
        bed.client.clone(),
        StubConfig {
            servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 53)],
            ..StubConfig::default()
        },
    ));
    let mut cfg = HeConfig::rfc8305();
    cfg.attempt_timeout = Duration::from_secs(3);
    let he = Rc::new(HappyEyeballs::new(
        cfg,
        bed.client.clone(),
        stub,
        Rc::new(HistoryStore::new()),
    ));
    let server = bed.server.clone();
    let family = bed.sim.block_on(async move {
        let r1 = he.connect(&n("www.hetest"), 80).await;
        assert_eq!(r1.connection.unwrap().family(), Family::V6);
        server.blackhole("2001:db8::1".parse().unwrap());
        let r2 = he.connect(&n("www.hetest"), 80).await;
        r2.connection.unwrap().family()
    });
    assert_eq!(family, Family::V4);
}

#[test]
fn dynamic_cad_spread_varies_between_runs() {
    // With spread > 0 and warm history, two connects sample different
    // CADs (the Safari web behaviour).
    let mut bed = bed_with(dual_stack_zone(), 7);
    bed.server
        .add_egress(NetemRule::family(Family::V6, Netem::delay_ms(4000)));
    let stub = Rc::new(StubResolver::new(
        bed.client.clone(),
        StubConfig {
            servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 53)],
            ..StubConfig::default()
        },
    ));
    let history = Rc::new(HistoryStore::new());
    history.record_rtt("2001:db8::1".parse().unwrap(), Duration::from_millis(100));
    history.record_rtt("192.0.2.1".parse().unwrap(), Duration::from_millis(100));
    let mut cfg = HeConfig::rfc8305();
    cfg.cad = CadMode::Dynamic {
        min: Duration::from_millis(10),
        no_history: Duration::from_millis(2000),
        max: Duration::from_secs(5),
        spread: 1.6,
    };
    let he = Rc::new(HappyEyeballs::new(cfg, bed.client.clone(), stub, history));
    let cads = bed.sim.block_on(async move {
        let mut cads = Vec::new();
        for _ in 0..6 {
            let r = he.connect(&n("www.hetest"), 80).await;
            if let Some(c) = r.log.observed_cad() {
                cads.push(c.as_millis());
            }
            // New page visit: don't let the outcome cache pin the family.
            // (HistoryStore is shared; clear outcomes only.)
        }
        cads
    });
    // First run measures a CAD; later runs may use the outcome cache, so
    // just require at least one sample and sane bounds.
    assert!(!cads.is_empty());
    for c in &cads {
        assert!((10..=5000).contains(c), "CAD {c} out of clamp range");
    }
}

#[test]
fn hev1_quirkless_connects_when_preferred_dead() {
    // Plain RFC 6555: v6 dead (blackhole) -> v4 wins after CAD.
    let mut bed = bed_with(dual_stack_zone(), 8);
    bed.server.blackhole("2001:db8::1".parse().unwrap());
    let mut cfg = HeConfig::rfc6555();
    cfg.attempt_timeout = Duration::from_secs(5);
    let he = engine(&bed, cfg);
    let res = bed
        .sim
        .block_on(async move { he.connect(&n("www.hetest"), 80).await });
    assert_eq!(res.connection.unwrap().family(), Family::V4);
    assert_eq!(
        res.log.observed_cad().unwrap(),
        Duration::from_millis(250),
        "HEv1 CAD"
    );
}

#[test]
fn selection_with_asymmetric_counts() {
    // 3 v6 + 1 v4, all dead, RFC interlace: order must be 6 4 6 6.
    let td = TestDomain {
        apex: n("asym.test"),
        v4: vec!["203.0.113.1".parse().unwrap()],
        v6: (1..=3)
            .map(|i| format!("2001:db8:dead::{i}").parse().unwrap())
            .collect(),
        ttl: 60,
    };
    let mut bed = bed_with(
        AuthConfig {
            test_domains: vec![td],
            ..AuthConfig::default()
        },
        9,
    );
    let mut cfg = HeConfig::rfc8305();
    cfg.interlace = InterlaceStrategy::Rfc8305 {
        first_family_count: 1,
    };
    cfg.attempt_timeout = Duration::from_secs(2);
    cfg.overall_deadline = Duration::from_secs(60);
    let he = engine(&bed, cfg);
    let res = bed
        .sim
        .block_on(async move { he.connect(&n("d0-tnone-nx.asym.test"), 80).await });
    assert_eq!(res.connection.unwrap_err(), HeError::AllAttemptsFailed);
    assert_eq!(
        res.log.attempt_families(),
        vec![Family::V6, Family::V4, Family::V6, Family::V6]
    );
}

//! The Happy Eyeballs engine: resolution phase (with Resolution Delay),
//! address selection, and staggered connection racing with the Connection
//! Attempt Delay.
//!
//! The engine is configuration-driven ([`crate::HeConfig`]): the same code
//! runs RFC-faithful HEv1/v2/v3 *and* reproduces every client deviation
//! the paper observed (via [`crate::Quirks`]), which is what lets the
//! testbed re-measure published client behaviour.

use std::cell::RefCell;
use std::net::{IpAddr, SocketAddr};
use std::rc::Rc;
use std::time::Duration;

use lazyeye_dns::{Name, RData};
use lazyeye_net::{quic_connect, Family, Host, NetError, QuicConnectOpts, TcpStream};
use lazyeye_resolver::{AnswerOutcome, DnsAnswer, StubResolver};
use lazyeye_sim::sync::mpsc;
use lazyeye_sim::{now, race, sleep_until, spawn, timeout_at, Either, JoinHandle, SimTime};

use crate::event::{HeEventKind, HeLog};
use crate::history::HistoryStore;
use crate::params::HeConfig;
use crate::select::{expand_protocols, interlace, Candidate, CandidateProto};

/// Why a Happy Eyeballs connect failed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HeError {
    /// DNS produced no usable addresses.
    NoAddresses,
    /// Every connection attempt failed.
    AllAttemptsFailed,
    /// The overall deadline expired.
    Deadline,
}

impl std::fmt::Display for HeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HeError::NoAddresses => "name resolution yielded no addresses",
            HeError::AllAttemptsFailed => "all connection attempts failed",
            HeError::Deadline => "overall deadline exceeded",
        };
        f.write_str(s)
    }
}
impl std::error::Error for HeError {}

/// An established connection, whichever transport won the race.
pub enum HeConnection {
    /// TCP won.
    Tcp(TcpStream),
    /// QUIC won (HEv3).
    Quic(lazyeye_net::QuicConnection),
}

impl HeConnection {
    /// Remote endpoint.
    pub fn remote(&self) -> SocketAddr {
        match self {
            HeConnection::Tcp(s) => s.peer_addr(),
            HeConnection::Quic(q) => q.remote,
        }
    }

    /// Winning address family.
    pub fn family(&self) -> Family {
        Family::of(self.remote().ip())
    }

    /// Winning transport.
    pub fn proto(&self) -> CandidateProto {
        match self {
            HeConnection::Tcp(_) => CandidateProto::Tcp,
            HeConnection::Quic(_) => CandidateProto::Quic,
        }
    }

    /// The TCP stream, if TCP won (HTTP layers use this).
    pub fn tcp(&self) -> Option<&TcpStream> {
        match self {
            HeConnection::Tcp(s) => Some(s),
            HeConnection::Quic(_) => None,
        }
    }
}

impl std::fmt::Debug for HeConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HeConnection({:?} via {:?})",
            self.remote(),
            self.proto()
        )
    }
}

/// Result of one HE run: the connection (or error) plus the full event log.
pub struct HeResult {
    /// The outcome.
    pub connection: Result<HeConnection, HeError>,
    /// Everything that happened, timestamped.
    pub log: HeLog,
}

/// The engine, bound to a host, a stub resolver and a history store.
pub struct HappyEyeballs {
    cfg: HeConfig,
    host: Host,
    stub: Rc<StubResolver>,
    history: Rc<HistoryStore>,
}

#[derive(Default)]
struct Gathered {
    v6: Vec<IpAddr>,
    v4: Vec<IpAddr>,
    h3: bool,
    ech: bool,
    pending: usize,
}

impl Gathered {
    fn ingest(&mut self, ans: &DnsAnswer, log: &mut HeLog) {
        self.pending = self.pending.saturating_sub(1);
        let outcome = match ans.outcome {
            AnswerOutcome::Ok => "ok",
            AnswerOutcome::NxDomain => "nxdomain",
            AnswerOutcome::ServFail => "servfail",
            AnswerOutcome::Timeout => "timeout",
        };
        log.push(
            ans.at,
            HeEventKind::DnsAnswer {
                qtype: ans.qtype,
                records: ans.records.len(),
                outcome,
            },
        );
        for r in &ans.records {
            match &r.rdata {
                RData::Aaaa(a) => self.v6.push(IpAddr::V6(*a)),
                RData::A(a) => self.v4.push(IpAddr::V4(*a)),
                RData::Https(p) | RData::Svcb(p) => {
                    self.h3 |= p.supports_h3();
                    self.ech |= p.has_ech();
                    for a in p.ipv6_hints() {
                        self.v6.push(IpAddr::V6(a));
                    }
                    for a in p.ipv4_hints() {
                        self.v4.push(IpAddr::V4(a));
                    }
                }
                _ => {}
            }
        }
        dedup_preserving_order(&mut self.v6);
        dedup_preserving_order(&mut self.v4);
    }

    fn has_any(&self) -> bool {
        !self.v6.is_empty() || !self.v4.is_empty()
    }

    fn has_family(&self, f: Family) -> bool {
        match f {
            Family::V6 => !self.v6.is_empty(),
            Family::V4 => !self.v4.is_empty(),
        }
    }
}

fn dedup_preserving_order(v: &mut Vec<IpAddr>) {
    let mut seen = std::collections::HashSet::new();
    v.retain(|a| seen.insert(*a));
}

impl HappyEyeballs {
    /// Creates an engine.
    pub fn new(
        cfg: HeConfig,
        host: Host,
        stub: Rc<StubResolver>,
        history: Rc<HistoryStore>,
    ) -> HappyEyeballs {
        HappyEyeballs {
            cfg,
            host,
            stub,
            history,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HeConfig {
        &self.cfg
    }

    /// Resolves `name` and races connections to `port` per the configured
    /// Happy Eyeballs semantics. Always returns the event log.
    pub async fn connect(&self, name: &Name, port: u16) -> HeResult {
        let log = Rc::new(RefCell::new(HeLog::default()));
        let attempts: Rc<RefCell<Vec<JoinHandle<()>>>> = Rc::new(RefCell::new(Vec::new()));
        let deadline = now() + self.cfg.overall_deadline;

        let inner = self.run(name, port, Rc::clone(&log), Rc::clone(&attempts), deadline);
        let connection = match timeout_at(deadline, inner).await {
            Ok(result) => result,
            Err(lazyeye_sim::Elapsed) => {
                log.borrow_mut()
                    .push(now(), HeEventKind::Failed { reason: "deadline" });
                Err(HeError::Deadline)
            }
        };
        // Cancel any attempt still in flight.
        for h in attempts.borrow().iter() {
            h.abort();
        }
        let log = Rc::try_unwrap(log)
            .map(RefCell::into_inner)
            .unwrap_or_else(|rc| rc.borrow().clone());
        HeResult { connection, log }
    }

    async fn run(
        &self,
        name: &Name,
        port: u16,
        log: Rc<RefCell<HeLog>>,
        attempts: Rc<RefCell<Vec<JoinHandle<()>>>>,
        deadline: SimTime,
    ) -> Result<HeConnection, HeError> {
        // RFC 6555 §4.2: remember the winner for ~10 minutes and go
        // straight to it.
        if let Some(addr) = self.history.cached_outcome(now(), name) {
            log.borrow_mut()
                .push(now(), HeEventKind::UsedCachedOutcome { addr });
            if let Ok(conn) = self.direct_attempt(addr, port).await {
                log.borrow_mut().push(
                    now(),
                    HeEventKind::Established {
                        addr,
                        family: Family::of(addr),
                        proto: CandidateProto::Tcp,
                    },
                );
                return Ok(HeConnection::Tcp(conn));
            }
            self.history.invalidate_outcome(name);
        }

        // --- Resolution phase -------------------------------------------
        let mut rx = self.stub.resolve_streaming(name);
        let qtypes = self.stub.config().qtypes.clone();
        {
            let mut l = log.borrow_mut();
            for qt in &qtypes {
                l.push(now(), HeEventKind::DnsQuerySent { qtype: *qt });
            }
        }
        let mut gathered = Gathered {
            pending: qtypes.len(),
            ..Gathered::default()
        };

        if self.cfg.quirks.wait_for_all_answers {
            // Chrome/Firefox: nothing connects until every lookup is
            // terminal — the §5.2 stall.
            while gathered.pending > 0 {
                match rx.recv().await {
                    Some(ans) => gathered.ingest(&ans, &mut log.borrow_mut()),
                    None => break,
                }
            }
        } else {
            self.resolution_wait(&mut rx, &mut gathered, &log).await;
        }

        if !gathered.has_any() {
            log.borrow_mut().push(
                now(),
                HeEventKind::Failed {
                    reason: "no-addresses",
                },
            );
            return Err(HeError::NoAddresses);
        }

        // --- Address selection -------------------------------------------
        let mut candidates = self.build_candidates(&gathered);
        log.borrow_mut().push(
            now(),
            HeEventKind::CandidatesBuilt {
                families: candidates.iter().map(Candidate::family).collect(),
            },
        );

        // --- Staggered connection racing ---------------------------------
        let (res_tx, mut res_rx) =
            mpsc::unbounded::<(usize, Candidate, Result<Won, &'static str>)>();
        let mut next = 0usize;
        let mut failures = 0usize;
        let mut dns_done = false;

        self.start_attempt(&candidates, next, port, &res_tx, &log, &attempts);
        next += 1;
        let mut last_attempt_at = now();

        /// What woke the racing loop.
        enum Wake {
            Result(Option<(usize, Candidate, Result<Won, &'static str>)>),
            StartNext,
            Dns(Option<DnsAnswer>),
        }

        loop {
            let cad = self.history.cad_for(
                self.cfg.cad,
                candidates.get(next.saturating_sub(1)).map(|c| c.addr),
            );
            // The CAD stagger is anchored on the *previous attempt start*,
            // so intermediate wakeups (late DNS answers) never stretch it.
            let next_start = last_attempt_at + cad;

            let wake = match (next < candidates.len(), dns_done) {
                (true, false) => {
                    // Results vs CAD timer vs late DNS answers (RFC 8305
                    // §7: new addresses join the race).
                    match race(res_rx.recv(), race(sleep_until(next_start), rx.recv())).await {
                        Either::Left(r) => Wake::Result(r),
                        Either::Right(Either::Left(())) => Wake::StartNext,
                        Either::Right(Either::Right(ans)) => Wake::Dns(ans),
                    }
                }
                (true, true) => match race(res_rx.recv(), sleep_until(next_start)).await {
                    Either::Left(r) => Wake::Result(r),
                    Either::Right(()) => Wake::StartNext,
                },
                (false, false) => {
                    match race(timeout_at(deadline, res_rx.recv()), rx.recv()).await {
                        Either::Left(Ok(r)) => Wake::Result(r),
                        Either::Left(Err(lazyeye_sim::Elapsed)) => {
                            log.borrow_mut()
                                .push(now(), HeEventKind::Failed { reason: "deadline" });
                            return Err(HeError::Deadline);
                        }
                        Either::Right(ans) => Wake::Dns(ans),
                    }
                }
                (false, true) => match timeout_at(deadline, res_rx.recv()).await {
                    Ok(r) => Wake::Result(r),
                    Err(lazyeye_sim::Elapsed) => {
                        log.borrow_mut()
                            .push(now(), HeEventKind::Failed { reason: "deadline" });
                        return Err(HeError::Deadline);
                    }
                },
            };

            let got = match wake {
                Wake::StartNext => {
                    self.start_attempt(&candidates, next, port, &res_tx, &log, &attempts);
                    next += 1;
                    last_attempt_at = now();
                    continue;
                }
                Wake::Dns(Some(ans)) => {
                    gathered.ingest(&ans, &mut log.borrow_mut());
                    merge_candidates(&mut candidates, next, self.build_candidates(&gathered));
                    continue;
                }
                Wake::Dns(None) => {
                    dns_done = true;
                    continue;
                }
                Wake::Result(r) => r,
            };

            let Some((idx, cand, result)) = got else {
                return Err(HeError::AllAttemptsFailed);
            };
            match result {
                Ok(won) => {
                    log.borrow_mut().push(
                        now(),
                        HeEventKind::AttemptSucceeded {
                            index: idx,
                            addr: cand.addr,
                        },
                    );
                    // Cancel losers.
                    for h in attempts.borrow().iter() {
                        h.abort();
                    }
                    self.history.record_rtt(cand.addr, won.rtt);
                    self.history
                        .record_outcome(now(), name.clone(), cand.addr, self.cfg.cache_ttl);
                    log.borrow_mut().push(
                        now(),
                        HeEventKind::Established {
                            addr: cand.addr,
                            family: cand.family(),
                            proto: cand.proto,
                        },
                    );
                    return Ok(won.conn);
                }
                Err(error) => {
                    failures += 1;
                    log.borrow_mut().push(
                        now(),
                        HeEventKind::AttemptFailed {
                            index: idx,
                            addr: cand.addr,
                            error,
                        },
                    );
                    if next < candidates.len() {
                        // RFC 8305 §5: a failure starts the next attempt
                        // immediately, without waiting for the CAD.
                        self.start_attempt(&candidates, next, port, &res_tx, &log, &attempts);
                        next += 1;
                        last_attempt_at = now();
                    } else if failures >= candidates.len() {
                        log.borrow_mut().push(
                            now(),
                            HeEventKind::Failed {
                                reason: "all-attempts-failed",
                            },
                        );
                        return Err(HeError::AllAttemptsFailed);
                    }
                }
            }
        }
    }

    /// RFC 8305 §3 resolution handling: connect as soon as the preferred
    /// family answers; if the other family answers first, arm the
    /// Resolution Delay.
    async fn resolution_wait(
        &self,
        rx: &mut mpsc::Receiver<DnsAnswer>,
        gathered: &mut Gathered,
        log: &Rc<RefCell<HeLog>>,
    ) {
        loop {
            if gathered.has_family(self.cfg.prefer) {
                return;
            }
            if gathered.has_family(self.cfg.prefer.other()) {
                // Other family arrived first.
                match self.cfg.resolution_delay {
                    Some(rd) if gathered.pending > 0 => {
                        log.borrow_mut()
                            .push(now(), HeEventKind::ResolutionDelayStarted { delay: rd });
                        let rd_deadline = now() + rd;
                        loop {
                            match race(sleep_until(rd_deadline), rx.recv()).await {
                                Either::Left(()) => {
                                    log.borrow_mut()
                                        .push(now(), HeEventKind::ResolutionDelayExpired);
                                    return;
                                }
                                Either::Right(Some(ans)) => {
                                    gathered.ingest(&ans, &mut log.borrow_mut());
                                    if gathered.has_family(self.cfg.prefer) {
                                        return;
                                    }
                                    if gathered.pending == 0 {
                                        return;
                                    }
                                }
                                Either::Right(None) => return,
                            }
                        }
                    }
                    _ => return,
                }
            }
            if gathered.pending == 0 {
                return;
            }
            match rx.recv().await {
                Some(ans) => gathered.ingest(&ans, &mut log.borrow_mut()),
                None => return,
            }
        }
    }

    fn start_attempt(
        &self,
        candidates: &[Candidate],
        idx: usize,
        port: u16,
        res_tx: &mpsc::Sender<(usize, Candidate, Result<Won, &'static str>)>,
        log: &Rc<RefCell<HeLog>>,
        attempts: &Rc<RefCell<Vec<JoinHandle<()>>>>,
    ) {
        let Some(cand) = candidates.get(idx).copied() else {
            return;
        };
        log.borrow_mut().push(
            now(),
            HeEventKind::AttemptStarted {
                index: idx,
                addr: cand.addr,
                proto: cand.proto,
            },
        );
        let host = self.host.clone();
        let tx = res_tx.clone();
        let attempt_timeout = self.cfg.attempt_timeout;
        let handle = spawn(async move {
            let started = now();
            let dst = SocketAddr::new(cand.addr, port);
            let result: Result<Won, &'static str> = match cand.proto {
                CandidateProto::Tcp => {
                    match lazyeye_sim::timeout(attempt_timeout, host.tcp_connect(dst)).await {
                        Ok(Ok(stream)) => Ok(Won {
                            conn: HeConnection::Tcp(stream),
                            rtt: now() - started,
                        }),
                        Ok(Err(e)) => Err(net_err_label(e)),
                        Err(lazyeye_sim::Elapsed) => Err("timeout"),
                    }
                }
                CandidateProto::Quic => {
                    match lazyeye_sim::timeout(
                        attempt_timeout,
                        quic_connect(&host, dst, QuicConnectOpts::default()),
                    )
                    .await
                    {
                        Ok(Ok(q)) => Ok(Won {
                            conn: HeConnection::Quic(q),
                            rtt: now() - started,
                        }),
                        Ok(Err(e)) => Err(net_err_label(e)),
                        Err(lazyeye_sim::Elapsed) => Err("timeout"),
                    }
                }
            };
            let _ = tx.send((idx, cand, result));
        });
        attempts.borrow_mut().push(handle);
    }

    /// Builds the interlaced, protocol-expanded candidate list from the
    /// currently gathered answers.
    fn build_candidates(&self, gathered: &Gathered) -> Vec<Candidate> {
        let mut order = interlace(
            &gathered.v6,
            &gathered.v4,
            self.cfg.prefer,
            self.cfg.interlace,
        );
        if self.cfg.quirks.stop_after_first_pair {
            truncate_to_first_pair(&mut order);
        }
        expand_protocols(&order, gathered.h3, gathered.ech, self.cfg.use_quic)
    }

    /// One direct TCP attempt (cached-outcome path), bounded by the
    /// attempt timeout.
    async fn direct_attempt(&self, addr: IpAddr, port: u16) -> Result<TcpStream, ()> {
        let dst = SocketAddr::new(addr, port);
        match lazyeye_sim::timeout(self.cfg.attempt_timeout, self.host.tcp_connect(dst)).await {
            Ok(Ok(s)) => Ok(s),
            _ => Err(()),
        }
    }
}

struct Won {
    conn: HeConnection,
    rtt: Duration,
}

fn net_err_label(e: NetError) -> &'static str {
    e.label()
}

/// Replaces the un-attempted tail of `candidates` with the freshly rebuilt
/// order, keeping already-started attempts (indices `< started`) in place
/// and never re-adding a candidate that already ran.
fn merge_candidates(candidates: &mut Vec<Candidate>, started: usize, rebuilt: Vec<Candidate>) {
    let started_set: Vec<Candidate> = candidates[..started.min(candidates.len())].to_vec();
    candidates.truncate(started.min(candidates.len()));
    for c in rebuilt {
        if !started_set.contains(&c) {
            candidates.push(c);
        }
    }
}

fn truncate_to_first_pair(order: &mut Vec<IpAddr>) {
    let mut kept_v6 = false;
    let mut kept_v4 = false;
    order.retain(|a| match Family::of(*a) {
        Family::V6 if !kept_v6 => {
            kept_v6 = true;
            true
        }
        Family::V4 if !kept_v4 => {
            kept_v4 = true;
            true
        }
        _ => false,
    });
}

#[cfg(test)]
mod truncate_tests {
    use super::*;
    use lazyeye_net::addr::{v4, v6};

    #[test]
    fn keeps_first_of_each_family() {
        let mut order = vec![
            v6("2001:db8::1"),
            v4("192.0.2.1"),
            v6("2001:db8::2"),
            v4("192.0.2.2"),
        ];
        truncate_to_first_pair(&mut order);
        assert_eq!(order, vec![v6("2001:db8::1"), v4("192.0.2.1")]);
    }

    #[test]
    fn single_family_keeps_one() {
        let mut order = vec![v6("2001:db8::1"), v6("2001:db8::2")];
        truncate_to_first_pair(&mut order);
        assert_eq!(order, vec![v6("2001:db8::1")]);
    }
}

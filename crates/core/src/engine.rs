//! The simulator driver for the sans-IO Happy Eyeballs machine.
//!
//! [`HappyEyeballs`] owns the I/O half of a run — the stub resolver
//! channel, connection attempt tasks, timers, the RTT/outcome history —
//! and drives the pure [`HeMachine`] over the packet simulator. The
//! await structure mirrors the pre-extraction engine exactly (the same
//! `race`/`timeout_at` nesting, re-created per wakeup), so both the
//! `HeLog` traces and the scheduler counters (polls, timers, tasks)
//! pinned in BENCH.json are byte-identical to the legacy engine.

use std::net::{IpAddr, SocketAddr};
use std::rc::Rc;
use std::time::Duration;

use lazyeye_dns::Name;
use lazyeye_net::{quic_connect, Family, Host, NetError, QuicConnectOpts, TcpStream};
use lazyeye_resolver::{DnsAnswer, StubResolver};
use lazyeye_sim::sync::mpsc;
use lazyeye_sim::{now, race, sleep_until, spawn, timeout_at, Either, JoinHandle, SimTime};

use crate::event::HeLog;
use crate::history::HistoryStore;
use crate::machine::{HeError, HeMachine, Input, Output, Waiting};
use crate::params::HeConfig;
use crate::select::{Candidate, CandidateProto};

/// An established connection, whichever transport won the race.
pub enum HeConnection {
    /// TCP won.
    Tcp(TcpStream),
    /// QUIC won (HEv3).
    Quic(lazyeye_net::QuicConnection),
}

impl HeConnection {
    /// Remote endpoint.
    pub fn remote(&self) -> SocketAddr {
        match self {
            HeConnection::Tcp(s) => s.peer_addr(),
            HeConnection::Quic(q) => q.remote,
        }
    }

    /// Winning address family.
    pub fn family(&self) -> Family {
        Family::of(self.remote().ip())
    }

    /// Winning transport.
    pub fn proto(&self) -> CandidateProto {
        match self {
            HeConnection::Tcp(_) => CandidateProto::Tcp,
            HeConnection::Quic(_) => CandidateProto::Quic,
        }
    }

    /// The TCP stream, if TCP won (HTTP layers use this).
    pub fn tcp(&self) -> Option<&TcpStream> {
        match self {
            HeConnection::Tcp(s) => Some(s),
            HeConnection::Quic(_) => None,
        }
    }
}

impl std::fmt::Debug for HeConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HeConnection({:?} via {:?})",
            self.remote(),
            self.proto()
        )
    }
}

/// Result of one HE run: the connection (or error) plus the full event log.
pub struct HeResult {
    /// The outcome.
    pub connection: Result<HeConnection, HeError>,
    /// Everything that happened, timestamped.
    pub log: HeLog,
}

/// The sim driver, bound to a host, a stub resolver and a history store.
pub struct HappyEyeballs {
    cfg: HeConfig,
    host: Host,
    stub: Rc<StubResolver>,
    history: Rc<HistoryStore>,
}

impl HappyEyeballs {
    /// Creates an engine.
    pub fn new(
        cfg: HeConfig,
        host: Host,
        stub: Rc<StubResolver>,
        history: Rc<HistoryStore>,
    ) -> HappyEyeballs {
        HappyEyeballs {
            cfg,
            host,
            stub,
            history,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HeConfig {
        &self.cfg
    }

    /// Resolves `name` and races connections to `port` per the configured
    /// Happy Eyeballs semantics. Always returns the event log.
    pub async fn connect(&self, name: &Name, port: u16) -> HeResult {
        let mut log = HeLog::default();
        let mut attempts: Vec<JoinHandle<()>> = Vec::new();
        let deadline = now() + self.cfg.overall_deadline;
        let mut machine = HeMachine::new(
            self.cfg.clone(),
            self.stub.config().qtypes.clone(),
            deadline,
        );

        let r = timeout_at(
            deadline,
            self.drive(&mut machine, name, port, &mut log, &mut attempts, deadline),
        )
        .await;
        let connection = match r {
            Ok(result) => result,
            Err(lazyeye_sim::Elapsed) => {
                for out in machine.process(Input::DeadlineExpired, now()) {
                    if let Output::Trace(e) = out {
                        log.push(e.at, e.kind);
                    }
                }
                Err(HeError::Deadline)
            }
        };
        // Cancel any attempt still in flight.
        for h in &attempts {
            h.abort();
        }
        HeResult { connection, log }
    }

    /// Runs the machine to completion, performing its I/O on the
    /// simulator. Each [`Waiting`] state maps to the exact combinator
    /// nesting the legacy engine used at the equivalent point.
    async fn drive(
        &self,
        machine: &mut HeMachine,
        name: &Name,
        port: u16,
        log: &mut HeLog,
        attempts: &mut Vec<JoinHandle<()>>,
        deadline: SimTime,
    ) -> Result<HeConnection, HeError> {
        // RFC 6555 §4.2 winner cache: looked up here because the cache
        // (and its lazy expiry) is driver-side mutable state.
        let cached = self.history.cached_outcome(now(), name);
        let mut rx: Option<mpsc::Receiver<DnsAnswer>> = None;
        let (res_tx, mut res_rx) =
            mpsc::unbounded::<(usize, Candidate, Result<Won, &'static str>)>();
        let mut pending_conn: Option<HeConnection> = None;
        let mut input = Input::Start { cached };

        loop {
            let mut established = false;
            let mut failed: Option<HeError> = None;
            for out in machine.process(input, now()) {
                match out {
                    Output::Trace(e) => log.push(e.at, e.kind),
                    Output::SendQuery { .. } => {
                        // The stub resolver sends the whole configured
                        // query set in one streaming call.
                        if rx.is_none() {
                            rx = Some(self.stub.resolve_streaming(name));
                        }
                    }
                    Output::StartAttempt { index, candidate } => {
                        self.spawn_attempt(candidate, index, port, &res_tx, attempts);
                    }
                    Output::ArmTimer(_) => {} // timers live in the waits below
                    Output::RecordRtt { addr, rtt } => self.history.record_rtt(addr, rtt),
                    Output::RecordOutcome { addr } => {
                        self.history
                            .record_outcome(now(), name.clone(), addr, self.cfg.cache_ttl);
                    }
                    Output::InvalidateOutcome => self.history.invalidate_outcome(name),
                    Output::Established { .. } => established = true,
                    Output::Failed(e) => failed = Some(e),
                }
            }
            if established {
                // Cancel losers.
                for h in attempts.iter() {
                    h.abort();
                }
                return Ok(pending_conn.take().expect("established without connection"));
            }
            if let Some(e) = failed {
                return Err(e);
            }

            input = match machine.waiting() {
                Waiting::CachedAttempt { addr } => match self.direct_attempt(addr, port).await {
                    Ok(s) => {
                        pending_conn = Some(HeConnection::Tcp(s));
                        Input::CachedResult { ok: true }
                    }
                    Err(()) => Input::CachedResult { ok: false },
                },
                Waiting::Cad { dst } => Input::Cad(self.history.cad_for(self.cfg.cad, dst)),
                Waiting::Dns => {
                    let rx = rx.as_mut().expect("resolution not started");
                    Input::Dns(rx.recv().await)
                }
                Waiting::DnsOrTimer { deadline: rd } => {
                    let rx = rx.as_mut().expect("resolution not started");
                    match race(sleep_until(rd), rx.recv()).await {
                        Either::Left(()) => Input::Timer,
                        Either::Right(ans) => Input::Dns(ans),
                    }
                }
                Waiting::Race {
                    next_start,
                    dns_open,
                } => match (next_start, dns_open) {
                    (Some(t), true) => {
                        // Results vs CAD timer vs late DNS answers.
                        let rx = rx.as_mut().expect("resolution not started");
                        match race(res_rx.recv(), race(sleep_until(t), rx.recv())).await {
                            Either::Left(r) => result_input(r, &mut pending_conn),
                            Either::Right(Either::Left(())) => Input::Timer,
                            Either::Right(Either::Right(ans)) => Input::Dns(ans),
                        }
                    }
                    (Some(t), false) => match race(res_rx.recv(), sleep_until(t)).await {
                        Either::Left(r) => result_input(r, &mut pending_conn),
                        Either::Right(()) => Input::Timer,
                    },
                    (None, true) => {
                        let rx = rx.as_mut().expect("resolution not started");
                        match race(timeout_at(deadline, res_rx.recv()), rx.recv()).await {
                            Either::Left(Ok(r)) => result_input(r, &mut pending_conn),
                            Either::Left(Err(lazyeye_sim::Elapsed)) => Input::DeadlineExpired,
                            Either::Right(ans) => Input::Dns(ans),
                        }
                    }
                    (None, false) => match timeout_at(deadline, res_rx.recv()).await {
                        Ok(r) => result_input(r, &mut pending_conn),
                        Err(lazyeye_sim::Elapsed) => Input::DeadlineExpired,
                    },
                },
                Waiting::Start | Waiting::Done => {
                    unreachable!("machine stalled without output")
                }
            };
        }
    }

    /// Spawns one connection attempt task; the machine has already
    /// recorded the `AttemptStarted` trace for it.
    fn spawn_attempt(
        &self,
        cand: Candidate,
        idx: usize,
        port: u16,
        res_tx: &mpsc::Sender<(usize, Candidate, Result<Won, &'static str>)>,
        attempts: &mut Vec<JoinHandle<()>>,
    ) {
        let host = self.host.clone();
        let tx = res_tx.clone();
        let attempt_timeout = self.cfg.attempt_timeout;
        let handle = spawn(async move {
            let started = now();
            let dst = SocketAddr::new(cand.addr, port);
            let result: Result<Won, &'static str> = match cand.proto {
                CandidateProto::Tcp => {
                    match lazyeye_sim::timeout(attempt_timeout, host.tcp_connect(dst)).await {
                        Ok(Ok(stream)) => Ok(Won {
                            conn: HeConnection::Tcp(stream),
                            rtt: now() - started,
                        }),
                        Ok(Err(e)) => Err(net_err_label(e)),
                        Err(lazyeye_sim::Elapsed) => Err("timeout"),
                    }
                }
                CandidateProto::Quic => {
                    match lazyeye_sim::timeout(
                        attempt_timeout,
                        quic_connect(&host, dst, QuicConnectOpts::default()),
                    )
                    .await
                    {
                        Ok(Ok(q)) => Ok(Won {
                            conn: HeConnection::Quic(q),
                            rtt: now() - started,
                        }),
                        Ok(Err(e)) => Err(net_err_label(e)),
                        Err(lazyeye_sim::Elapsed) => Err("timeout"),
                    }
                }
            };
            let _ = tx.send((idx, cand, result));
        });
        attempts.push(handle);
    }

    /// One direct TCP attempt (cached-outcome path), bounded by the
    /// attempt timeout.
    async fn direct_attempt(&self, addr: IpAddr, port: u16) -> Result<TcpStream, ()> {
        let dst = SocketAddr::new(addr, port);
        match lazyeye_sim::timeout(self.cfg.attempt_timeout, self.host.tcp_connect(dst)).await {
            Ok(Ok(s)) => Ok(s),
            _ => Err(()),
        }
    }
}

/// Converts one attempt-channel message into a machine input, parking
/// the winning connection with the driver.
fn result_input(
    r: Option<(usize, Candidate, Result<Won, &'static str>)>,
    pending_conn: &mut Option<HeConnection>,
) -> Input {
    match r {
        None => Input::AttemptsClosed,
        Some((idx, _cand, Ok(won))) => {
            *pending_conn = Some(won.conn);
            Input::AttemptResult {
                index: idx,
                result: Ok(won.rtt),
            }
        }
        Some((idx, _cand, Err(e))) => Input::AttemptResult {
            index: idx,
            result: Err(e),
        },
    }
}

struct Won {
    conn: HeConnection,
    rtt: Duration,
}

fn net_err_label(e: NetError) -> &'static str {
    e.label()
}

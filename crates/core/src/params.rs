//! Happy Eyeballs versions and their standardized parameters (paper
//! Table 1), plus the engine configuration type.

use std::time::Duration;

use lazyeye_net::Family;

/// The three Happy Eyeballs generations.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HeVersion {
    /// RFC 6555 (2012): connection racing only.
    V1,
    /// RFC 8305 (2017): adds DNS (AAAA/A ordering, Resolution Delay) and
    /// address selection/interlacing.
    V2,
    /// draft-ietf-happy-happyeyeballs-v3: adds SVCB/HTTPS processing and
    /// protocol preference (ECH > QUIC > TCP).
    V3,
}

impl std::fmt::Display for HeVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeVersion::V1 => write!(f, "HEv1 (RFC 6555)"),
            HeVersion::V2 => write!(f, "HEv2 (RFC 8305)"),
            HeVersion::V3 => write!(f, "HEv3 (draft)"),
        }
    }
}

/// The standardized parameter set of one HE version — one column of the
/// paper's Table 1.
#[derive(Clone, Debug)]
pub struct VersionParams {
    /// Which version.
    pub version: HeVersion,
    /// Protocols the version considers.
    pub considered_protocols: &'static str,
    /// DNS record types processed.
    pub dns_records: &'static str,
    /// Resolution Delay (waiting for AAAA after A), if defined.
    pub resolution_delay: Option<Duration>,
    /// Address selection description.
    pub address_selection: &'static str,
    /// Fixed Connection Attempt Delay recommendation (min, max of the
    /// recommended range; equal when a single value is recommended).
    pub fixed_cad: (Duration, Duration),
    /// (absolute minimum, recommended minimum, maximum) for dynamic CAD.
    pub dynamic_cad: Option<(Duration, Duration, Duration)>,
}

/// The rows of Table 1: parameters of HEv1, HEv2 and the HEv3 draft.
pub fn version_params() -> [VersionParams; 3] {
    [
        VersionParams {
            version: HeVersion::V1,
            considered_protocols: "IPv4, IPv6",
            dns_records: "-",
            resolution_delay: None,
            address_selection: "IPv6 once, then IPv4",
            fixed_cad: (Duration::from_millis(150), Duration::from_millis(250)),
            dynamic_cad: None,
        },
        VersionParams {
            version: HeVersion::V2,
            considered_protocols: "IPv4, IPv6, DNS",
            dns_records: "AAAA, A",
            resolution_delay: Some(Duration::from_millis(50)),
            address_selection: "alternating IP family",
            fixed_cad: (Duration::from_millis(250), Duration::from_millis(250)),
            dynamic_cad: Some((
                Duration::from_millis(10),
                Duration::from_millis(100),
                Duration::from_secs(2),
            )),
        },
        VersionParams {
            version: HeVersion::V3,
            considered_protocols: "IPv4, IPv6, DNS, QUIC",
            dns_records: "SVCB, HTTPS, AAAA, A",
            resolution_delay: Some(Duration::from_millis(50)),
            address_selection: "alternating IP family and L4 protocol",
            fixed_cad: (Duration::from_millis(250), Duration::from_millis(250)),
            dynamic_cad: Some((
                Duration::from_millis(10),
                Duration::from_millis(100),
                Duration::from_secs(2),
            )),
        },
    ]
}

/// How the Connection Attempt Delay is chosen.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum CadMode {
    /// Fixed delay between staggered attempts.
    Fixed(Duration),
    /// History-based: `2 × smoothed RTT` to the destination, clamped to
    /// `[min, max]`; `no_history` applies when no RTT sample exists (a
    /// fresh client state — Safari's local-testbed 2 s).
    Dynamic {
        /// Absolute minimum (RFC 8305: 10 ms).
        min: Duration,
        /// Value used without history.
        no_history: Duration,
        /// Maximum (RFC 8305: 2 s; Safari has been observed beyond it).
        max: Duration,
        /// Log-uniform spread on the history estimate: each connect
        /// multiplies the estimate by `exp(U(-spread, spread))`. Zero for
        /// a deterministic dynamic CAD. Models the paper's §5.1 Safari
        /// finding — a "dynamic, unpredictable" web CAD whose variance no
        /// controlled condition explained.
        spread: f64,
    },
}

impl CadMode {
    /// RFC 8305 recommended fixed CAD.
    pub fn rfc_fixed() -> CadMode {
        CadMode::Fixed(Duration::from_millis(250))
    }

    /// RFC 8305 dynamic CAD bounds (deterministic).
    pub fn rfc_dynamic() -> CadMode {
        CadMode::Dynamic {
            min: Duration::from_millis(10),
            no_history: Duration::from_millis(100),
            max: Duration::from_secs(2),
            spread: 0.0,
        }
    }
}

/// How the sorted candidate addresses are interlaced.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InterlaceStrategy {
    /// RFC 8305 §4: `first_family_count` preferred-family addresses, then
    /// strictly alternating families.
    Rfc8305 {
        /// Number of preferred-family addresses at the head (1 or 2).
        first_family_count: usize,
    },
    /// Safari's observed strategy (paper App. D): two preferred-family
    /// addresses, one of the other family, then all remaining preferred,
    /// then all remaining other.
    SafariStyle,
    /// HEv1: one address of the preferred family, one of the other, stop.
    Hev1SingleFallback,
    /// No fallback at all: preferred family only (wget).
    NoFallback,
}

/// Client deviations from the RFCs that the paper observed and this engine
/// reproduces when asked to.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Quirks {
    /// Delay *all* connecting until every address query reached a terminal
    /// state (answer or resolver timeout). This is the Chrome/Firefox
    /// behaviour behind the paper's §5.2 finding: a slow **A** lookup
    /// stalls even IPv6 connections.
    pub wait_for_all_answers: bool,
    /// The client never consults addresses beyond the first of each family
    /// in its list (observed for everything but Safari in Figure 5).
    pub stop_after_first_pair: bool,
}

/// Complete engine configuration.
#[derive(Clone, Debug)]
pub struct HeConfig {
    /// Which version's semantics to run.
    pub version: HeVersion,
    /// Connection Attempt Delay policy.
    pub cad: CadMode,
    /// Resolution Delay (wait for AAAA after A); `None` disables it.
    pub resolution_delay: Option<Duration>,
    /// Candidate interlacing.
    pub interlace: InterlaceStrategy,
    /// Preferred address family.
    pub prefer: Family,
    /// Hard cap on one connection attempt (handshake give-up).
    pub attempt_timeout: Duration,
    /// Overall deadline for the whole `connect`.
    pub overall_deadline: Duration,
    /// Lifetime of cached outcomes (RFC 6555: "on the order of 10 min").
    pub cache_ttl: Duration,
    /// Race QUIC where SVCB/HTTPS advertises h3 (HEv3).
    pub use_quic: bool,
    /// Observed deviations to reproduce.
    pub quirks: Quirks,
}

// --- JSON conversions (see the lazyeye-json crate for the macro set). ---

lazyeye_json::impl_json_unit_enum!(HeVersion { V1, V2, V3 });
lazyeye_json::impl_json_struct!(Quirks {
    wait_for_all_answers,
    stop_after_first_pair,
});
lazyeye_json::impl_json_struct!(HeConfig {
    version,
    cad,
    resolution_delay,
    interlace,
    prefer,
    attempt_timeout,
    overall_deadline,
    cache_ttl,
    use_quic,
    quirks,
});

impl lazyeye_json::ToJson for CadMode {
    /// Externally tagged, serde style: `{"Fixed": {...}}` /
    /// `{"Dynamic": {...}}`.
    fn to_json(&self) -> lazyeye_json::Json {
        use lazyeye_json::Json;
        match self {
            CadMode::Fixed(d) => Json::obj(vec![("Fixed", d.to_json())]),
            CadMode::Dynamic {
                min,
                no_history,
                max,
                spread,
            } => Json::obj(vec![(
                "Dynamic",
                Json::obj(vec![
                    ("min", min.to_json()),
                    ("no_history", no_history.to_json()),
                    ("max", max.to_json()),
                    ("spread", spread.to_json()),
                ]),
            )]),
        }
    }
}

impl lazyeye_json::FromJson for CadMode {
    fn from_json(v: &lazyeye_json::Json) -> Result<CadMode, lazyeye_json::JsonError> {
        use lazyeye_json::JsonError;
        if let Some(d) = v.get("Fixed") {
            return Ok(CadMode::Fixed(Duration::from_json(d)?));
        }
        if let Some(dynamic) = v.get("Dynamic") {
            return Ok(CadMode::Dynamic {
                min: Duration::from_json(&dynamic["min"])?,
                no_history: Duration::from_json(&dynamic["no_history"])?,
                max: Duration::from_json(&dynamic["max"])?,
                spread: f64::from_json(&dynamic["spread"])?,
            });
        }
        Err(JsonError::new(format!("expected CadMode, got {v}")))
    }
}

impl lazyeye_json::ToJson for InterlaceStrategy {
    /// Unit variants as strings, `Rfc8305` externally tagged.
    fn to_json(&self) -> lazyeye_json::Json {
        use lazyeye_json::Json;
        match self {
            InterlaceStrategy::Rfc8305 { first_family_count } => Json::obj(vec![(
                "Rfc8305",
                Json::obj(vec![("first_family_count", first_family_count.to_json())]),
            )]),
            InterlaceStrategy::SafariStyle => Json::Str("SafariStyle".into()),
            InterlaceStrategy::Hev1SingleFallback => Json::Str("Hev1SingleFallback".into()),
            InterlaceStrategy::NoFallback => Json::Str("NoFallback".into()),
        }
    }
}

impl lazyeye_json::FromJson for InterlaceStrategy {
    fn from_json(v: &lazyeye_json::Json) -> Result<InterlaceStrategy, lazyeye_json::JsonError> {
        use lazyeye_json::JsonError;
        match v.as_str() {
            Some("SafariStyle") => return Ok(InterlaceStrategy::SafariStyle),
            Some("Hev1SingleFallback") => return Ok(InterlaceStrategy::Hev1SingleFallback),
            Some("NoFallback") => return Ok(InterlaceStrategy::NoFallback),
            _ => {}
        }
        if let Some(tagged) = v.get("Rfc8305") {
            return Ok(InterlaceStrategy::Rfc8305 {
                first_family_count: usize::from_json(&tagged["first_family_count"])?,
            });
        }
        Err(JsonError::new(format!(
            "expected InterlaceStrategy, got {v}"
        )))
    }
}

impl HeConfig {
    /// Straight-from-the-RFC HEv2 configuration.
    pub fn rfc8305() -> HeConfig {
        HeConfig {
            version: HeVersion::V2,
            cad: CadMode::rfc_fixed(),
            resolution_delay: Some(Duration::from_millis(50)),
            interlace: InterlaceStrategy::Rfc8305 {
                first_family_count: 1,
            },
            prefer: Family::V6,
            attempt_timeout: Duration::from_secs(10),
            overall_deadline: Duration::from_secs(30),
            cache_ttl: Duration::from_secs(600),
            use_quic: false,
            quirks: Quirks::default(),
        }
    }

    /// Straight-from-the-RFC HEv1 configuration.
    pub fn rfc6555() -> HeConfig {
        HeConfig {
            version: HeVersion::V1,
            cad: CadMode::Fixed(Duration::from_millis(250)),
            resolution_delay: None,
            interlace: InterlaceStrategy::Hev1SingleFallback,
            quirks: Quirks {
                wait_for_all_answers: true, // getaddrinfo() blocks for both
                stop_after_first_pair: true,
            },
            ..HeConfig::rfc8305()
        }
    }

    /// HEv3-draft configuration (SVCB/HTTPS + QUIC racing).
    pub fn hev3_draft() -> HeConfig {
        HeConfig {
            version: HeVersion::V3,
            use_quic: true,
            ..HeConfig::rfc8305()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let rows = version_params();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].resolution_delay, None, "HEv1 has no RD");
        assert_eq!(
            rows[1].resolution_delay,
            Some(Duration::from_millis(50)),
            "HEv2 RD = 50 ms"
        );
        assert_eq!(rows[2].dns_records, "SVCB, HTTPS, AAAA, A");
        assert_eq!(
            rows[0].fixed_cad,
            (Duration::from_millis(150), Duration::from_millis(250))
        );
        let dyn2 = rows[1].dynamic_cad.unwrap();
        assert_eq!(dyn2.0, Duration::from_millis(10));
        assert_eq!(dyn2.1, Duration::from_millis(100));
        assert_eq!(dyn2.2, Duration::from_secs(2));
        // v3 keeps v2's parameters (per the paper: "currently similar").
        assert_eq!(rows[1].dynamic_cad, rows[2].dynamic_cad);
        assert_eq!(rows[1].fixed_cad, rows[2].fixed_cad);
    }

    #[test]
    fn rfc_configs() {
        let v2 = HeConfig::rfc8305();
        assert_eq!(v2.cad, CadMode::Fixed(Duration::from_millis(250)));
        assert_eq!(v2.prefer, Family::V6);
        assert_eq!(v2.cache_ttl, Duration::from_secs(600));
        let v1 = HeConfig::rfc6555();
        assert!(v1.quirks.wait_for_all_answers);
        assert_eq!(v1.interlace, InterlaceStrategy::Hev1SingleFallback);
        let v3 = HeConfig::hev3_draft();
        assert!(v3.use_quic);
    }

    #[test]
    fn config_roundtrips_through_json() {
        use lazyeye_json::{FromJson, Json, ToJson};
        let cfg = HeConfig::rfc8305();
        let json = cfg.to_json().to_string_compact();
        let back = HeConfig::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.cad, cfg.cad);
        assert_eq!(back.interlace, cfg.interlace);
        assert_eq!(back.prefer, cfg.prefer);

        // The tagged variants roundtrip too.
        let dynamic = HeConfig {
            cad: CadMode::rfc_dynamic(),
            interlace: InterlaceStrategy::SafariStyle,
            ..cfg
        };
        let json = dynamic.to_json().to_string_pretty();
        let back = HeConfig::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.cad, dynamic.cad);
        assert_eq!(back.interlace, dynamic.interlace);
    }
}

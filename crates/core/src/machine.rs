//! The sans-IO Happy Eyeballs state machine.
//!
//! [`HeMachine`] is the pure protocol core: it owns no clock, no sockets,
//! no RNG and no shared-interior-mutability state. Drivers feed it
//! [`Input`]s (DNS answers, connect results, timer fires) together with
//! the current virtual time, and drain [`Output`]s (queries to send,
//! attempts to start, timers to arm, history updates to apply, trace
//! events to record, and the final establishment/failure). What to wait
//! for next is exposed via [`HeMachine::waiting`].
//!
//! Two drivers ship in this workspace:
//!
//! * the **sim driver** ([`crate::HappyEyeballs`]) runs the machine over
//!   the packet simulator and reproduces the legacy engine's `HeLog`
//!   byte for byte (including its scheduler-visible combinator
//!   structure, which the golden BENCH counters pin);
//! * the **fast-path driver** ([`crate::fastpath`]) drives the machine
//!   as a pure function from an analytically-computed event timeline,
//!   skipping packet simulation for statically-known sweep topologies.
//!
//! Timing policy that inherently lives outside the core — the Connection
//! Attempt Delay, which may consult RTT history and (for Safari-style
//! dynamic CAD) a random spread — is injected: the machine asks for it
//! via [`Waiting::Cad`] and receives it as [`Input::Cad`].

use std::collections::VecDeque;
use std::net::IpAddr;
use std::time::Duration;

use lazyeye_dns::{RData, RrType};
use lazyeye_net::Family;
use lazyeye_resolver::{AnswerOutcome, DnsAnswer};
use lazyeye_sim::SimTime;

use crate::event::{HeEvent, HeEventKind};
use crate::params::HeConfig;
use crate::select::{expand_protocols, interlace, Candidate, CandidateProto};

/// Why a Happy Eyeballs connect failed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HeError {
    /// DNS produced no usable addresses.
    NoAddresses,
    /// Every connection attempt failed.
    AllAttemptsFailed,
    /// The overall deadline expired.
    Deadline,
}

impl std::fmt::Display for HeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HeError::NoAddresses => "name resolution yielded no addresses",
            HeError::AllAttemptsFailed => "all connection attempts failed",
            HeError::Deadline => "overall deadline exceeded",
        };
        f.write_str(s)
    }
}
impl std::error::Error for HeError {}

/// An event fed into the machine by a driver.
#[derive(Clone, Debug)]
pub enum Input {
    /// Begin the procedure. `cached` is the RFC 6555 §4.2 remembered
    /// winner, looked up by the driver (the outcome cache is driver-side
    /// state).
    Start {
        /// Cached winning address for this name, if still fresh.
        cached: Option<IpAddr>,
    },
    /// Result of the direct attempt to the cached address.
    CachedResult {
        /// Whether the handshake completed.
        ok: bool,
    },
    /// The Connection Attempt Delay for the pending [`Waiting::Cad`]
    /// request, computed by the driver (history + optional spread).
    Cad(Duration),
    /// A DNS answer from the streaming resolver channel; `None` means
    /// the channel closed (every query reached a terminal state).
    Dns(Option<DnsAnswer>),
    /// The armed timer fired (Resolution Delay or CAD stagger,
    /// whichever the machine is waiting on).
    Timer,
    /// A connection attempt completed.
    AttemptResult {
        /// Attempt index (as given in [`Output::StartAttempt`]).
        index: usize,
        /// Handshake RTT on success, error label on failure.
        result: Result<Duration, &'static str>,
    },
    /// The attempt-result channel closed with no winner.
    AttemptsClosed,
    /// The overall deadline expired.
    DeadlineExpired,
}

/// An effect or fact the machine asks the driver to act on.
#[derive(Clone, Debug)]
pub enum Output {
    /// Record a trace event (already timestamped: DNS answers carry
    /// their arrival time, everything else the `now` of the input).
    Trace(HeEvent),
    /// Send one DNS query. Emitted once per configured record type;
    /// drivers with a batching stub resolver may treat the first as
    /// "resolve everything" and ignore the rest.
    SendQuery {
        /// Record type to query.
        qtype: RrType,
    },
    /// Start a connection attempt to `candidate`.
    StartAttempt {
        /// Attempt index (echoed back in [`Input::AttemptResult`]).
        index: usize,
        /// Address + transport to try.
        candidate: Candidate,
    },
    /// Ensure a timer fires at the given instant (never in the past:
    /// overdue deadlines are clamped to the `now` of the arming input,
    /// i.e. "fire as soon as possible").
    ArmTimer(SimTime),
    /// Record a handshake RTT sample into connection history.
    RecordRtt {
        /// Destination that completed.
        addr: IpAddr,
        /// Measured handshake RTT.
        rtt: Duration,
    },
    /// Cache `addr` as this name's winner (RFC 6555 §4.2).
    RecordOutcome {
        /// Winning address.
        addr: IpAddr,
    },
    /// Drop the cached winner (it failed to connect).
    InvalidateOutcome,
    /// The procedure succeeded; the driver holds the winning connection.
    Established {
        /// Winning address.
        addr: IpAddr,
        /// Winning family.
        family: Family,
        /// Winning transport.
        proto: CandidateProto,
    },
    /// The procedure failed.
    Failed(HeError),
}

/// What the machine is waiting for — the driver's cue for which I/O (or
/// synchronous answer) to perform next.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Waiting {
    /// Not started: feed [`Input::Start`].
    Start,
    /// Attempt the cached address directly, then feed
    /// [`Input::CachedResult`].
    CachedAttempt {
        /// The remembered address.
        addr: IpAddr,
    },
    /// Compute the Connection Attempt Delay for `dst` (the most recently
    /// started attempt) and feed [`Input::Cad`].
    Cad {
        /// Anchor destination for history-based CAD, if any.
        dst: Option<IpAddr>,
    },
    /// Wait for the next DNS answer only.
    Dns,
    /// Wait for a DNS answer or the Resolution Delay timer.
    DnsOrTimer {
        /// Absolute RD expiry.
        deadline: SimTime,
    },
    /// Racing: wait for an attempt result, plus the CAD stagger timer
    /// (when more candidates remain) and/or DNS answers (while the
    /// resolver channel is open).
    Race {
        /// Absolute start time of the next staggered attempt; `None`
        /// when every candidate has been started.
        next_start: Option<SimTime>,
        /// Whether the DNS channel may still produce events.
        dns_open: bool,
    },
    /// Terminal: [`Output::Established`] or [`Output::Failed`] was
    /// emitted.
    Done,
}

/// Addresses gathered from DNS answers so far.
#[derive(Default)]
struct Gathered {
    v6: Vec<IpAddr>,
    v4: Vec<IpAddr>,
    h3: bool,
    ech: bool,
    pending: usize,
}

impl Gathered {
    fn ingest(&mut self, ans: &DnsAnswer, out: &mut VecDeque<Output>) {
        self.pending = self.pending.saturating_sub(1);
        let outcome = match ans.outcome {
            AnswerOutcome::Ok => "ok",
            AnswerOutcome::NxDomain => "nxdomain",
            AnswerOutcome::ServFail => "servfail",
            AnswerOutcome::Timeout => "timeout",
        };
        out.push_back(Output::Trace(HeEvent {
            at: ans.at,
            kind: HeEventKind::DnsAnswer {
                qtype: ans.qtype,
                records: ans.records.len(),
                outcome,
            },
        }));
        for r in &ans.records {
            match &r.rdata {
                RData::Aaaa(a) => self.v6.push(IpAddr::V6(*a)),
                RData::A(a) => self.v4.push(IpAddr::V4(*a)),
                RData::Https(p) | RData::Svcb(p) => {
                    self.h3 |= p.supports_h3();
                    self.ech |= p.has_ech();
                    for a in p.ipv6_hints() {
                        self.v6.push(IpAddr::V6(a));
                    }
                    for a in p.ipv4_hints() {
                        self.v4.push(IpAddr::V4(a));
                    }
                }
                _ => {}
            }
        }
        dedup_preserving_order(&mut self.v6);
        dedup_preserving_order(&mut self.v4);
    }

    fn has_any(&self) -> bool {
        !self.v6.is_empty() || !self.v4.is_empty()
    }

    fn has_family(&self, f: Family) -> bool {
        match f {
            Family::V6 => !self.v6.is_empty(),
            Family::V4 => !self.v4.is_empty(),
        }
    }
}

fn dedup_preserving_order(v: &mut Vec<IpAddr>) {
    let mut seen = std::collections::HashSet::new();
    v.retain(|a| seen.insert(*a));
}

#[derive(Copy, Clone)]
enum Phase {
    Idle,
    Cached {
        addr: IpAddr,
    },
    /// `wait_for_all_answers` quirk: drain every lookup before
    /// connecting (the §5.2 stall).
    WaitAll,
    /// RFC 8305 §3 resolution: waiting for any answer.
    ResOuter,
    /// Resolution Delay armed; waiting for AAAA or expiry.
    ResRd {
        rd_deadline: SimTime,
    },
    /// Racing loop head: CAD requested from the driver.
    RaceCad,
    /// Racing: waiting on results / stagger timer / late answers.
    RaceWait {
        next_start: Option<SimTime>,
    },
    Done,
}

/// The pure Happy Eyeballs state machine. See the module docs.
pub struct HeMachine {
    cfg: HeConfig,
    qtypes: Vec<RrType>,
    deadline: SimTime,
    gathered: Gathered,
    candidates: Vec<Candidate>,
    next: usize,
    failures: usize,
    dns_done: bool,
    last_attempt_at: SimTime,
    phase: Phase,
    out: VecDeque<Output>,
}

impl HeMachine {
    /// Creates a machine for one connect procedure. `qtypes` is the
    /// resolver's configured query set (in log order) and `deadline` the
    /// absolute overall deadline.
    pub fn new(cfg: HeConfig, qtypes: Vec<RrType>, deadline: SimTime) -> HeMachine {
        HeMachine {
            cfg,
            qtypes,
            deadline,
            gathered: Gathered::default(),
            candidates: Vec::new(),
            next: 0,
            failures: 0,
            dns_done: false,
            last_attempt_at: SimTime::ZERO,
            phase: Phase::Idle,
            out: VecDeque::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HeConfig {
        &self.cfg
    }

    /// What the machine needs next.
    pub fn waiting(&self) -> Waiting {
        match self.phase {
            Phase::Idle => Waiting::Start,
            Phase::Cached { addr } => Waiting::CachedAttempt { addr },
            Phase::WaitAll | Phase::ResOuter => Waiting::Dns,
            Phase::ResRd { rd_deadline } => Waiting::DnsOrTimer {
                deadline: rd_deadline,
            },
            Phase::RaceCad => Waiting::Cad {
                dst: self
                    .candidates
                    .get(self.next.saturating_sub(1))
                    .map(|c| c.addr),
            },
            Phase::RaceWait { next_start } => Waiting::Race {
                next_start,
                dns_open: !self.dns_done,
            },
            Phase::Done => Waiting::Done,
        }
    }

    /// Whether the procedure reached a terminal state.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// Feeds one input at virtual time `now` and returns the resulting
    /// outputs, in order. Inputs that do not match the current
    /// [`Waiting`] state are ignored (stale timer fires and the like).
    pub fn process(&mut self, input: Input, now: SimTime) -> impl Iterator<Item = Output> + '_ {
        self.step(input, now);
        self.out.drain(..)
    }

    fn trace(&mut self, at: SimTime, kind: HeEventKind) {
        self.out.push_back(Output::Trace(HeEvent { at, kind }));
    }

    fn step(&mut self, input: Input, now: SimTime) {
        // The overall deadline cuts through every phase.
        if let Input::DeadlineExpired = input {
            if !self.is_done() {
                self.trace(now, HeEventKind::Failed { reason: "deadline" });
                self.out.push_back(Output::Failed(HeError::Deadline));
                self.phase = Phase::Done;
            }
            return;
        }
        match self.phase {
            Phase::Idle => {
                if let Input::Start { cached } = input {
                    match cached {
                        Some(addr) => {
                            self.trace(now, HeEventKind::UsedCachedOutcome { addr });
                            self.phase = Phase::Cached { addr };
                        }
                        None => self.begin_resolution(now),
                    }
                }
            }
            Phase::Cached { addr } => {
                if let Input::CachedResult { ok } = input {
                    if ok {
                        self.trace(
                            now,
                            HeEventKind::Established {
                                addr,
                                family: Family::of(addr),
                                proto: CandidateProto::Tcp,
                            },
                        );
                        self.out.push_back(Output::Established {
                            addr,
                            family: Family::of(addr),
                            proto: CandidateProto::Tcp,
                        });
                        self.phase = Phase::Done;
                    } else {
                        self.out.push_back(Output::InvalidateOutcome);
                        self.begin_resolution(now);
                    }
                }
            }
            Phase::WaitAll => match input {
                Input::Dns(Some(ans)) => {
                    let mut out = std::mem::take(&mut self.out);
                    self.gathered.ingest(&ans, &mut out);
                    self.out = out;
                    if self.gathered.pending == 0 {
                        self.finish_resolution(now);
                    }
                }
                Input::Dns(None) => self.finish_resolution(now),
                _ => {}
            },
            Phase::ResOuter => match input {
                Input::Dns(Some(ans)) => {
                    let mut out = std::mem::take(&mut self.out);
                    self.gathered.ingest(&ans, &mut out);
                    self.out = out;
                    self.res_outer_eval(now);
                }
                Input::Dns(None) => self.finish_resolution(now),
                _ => {}
            },
            Phase::ResRd { rd_deadline } => match input {
                Input::Timer => {
                    self.trace(now, HeEventKind::ResolutionDelayExpired);
                    self.finish_resolution(now);
                }
                Input::Dns(Some(ans)) => {
                    let mut out = std::mem::take(&mut self.out);
                    self.gathered.ingest(&ans, &mut out);
                    self.out = out;
                    if self.gathered.has_family(self.cfg.prefer) || self.gathered.pending == 0 {
                        self.finish_resolution(now);
                    } else {
                        // Stay armed on the same absolute expiry.
                        self.out.push_back(Output::ArmTimer(rd_deadline.max(now)));
                    }
                }
                Input::Dns(None) => self.finish_resolution(now),
                _ => {}
            },
            Phase::RaceCad => {
                if let Input::Cad(cad) = input {
                    // Anchored on the previous attempt start, so
                    // intermediate wakeups never stretch the stagger.
                    let next_start = self.last_attempt_at + cad;
                    if self.next < self.candidates.len() {
                        self.out.push_back(Output::ArmTimer(next_start.max(now)));
                        self.phase = Phase::RaceWait {
                            next_start: Some(next_start),
                        };
                    } else {
                        self.out.push_back(Output::ArmTimer(self.deadline.max(now)));
                        self.phase = Phase::RaceWait { next_start: None };
                    }
                }
            }
            Phase::RaceWait { .. } => match input {
                Input::Timer => {
                    self.start_attempt(now);
                    self.race_head();
                }
                Input::Dns(Some(ans)) => {
                    let mut out = std::mem::take(&mut self.out);
                    self.gathered.ingest(&ans, &mut out);
                    self.out = out;
                    // RFC 8305 §7: new addresses join the race.
                    let rebuilt = self.build_candidates();
                    merge_candidates(&mut self.candidates, self.next, rebuilt);
                    self.race_head();
                }
                Input::Dns(None) => {
                    self.dns_done = true;
                    self.race_head();
                }
                Input::AttemptsClosed => {
                    self.out
                        .push_back(Output::Failed(HeError::AllAttemptsFailed));
                    self.phase = Phase::Done;
                }
                Input::AttemptResult { index, result } => {
                    let Some(cand) = self.candidates.get(index).copied() else {
                        return;
                    };
                    match result {
                        Ok(rtt) => {
                            self.trace(
                                now,
                                HeEventKind::AttemptSucceeded {
                                    index,
                                    addr: cand.addr,
                                },
                            );
                            self.out.push_back(Output::RecordRtt {
                                addr: cand.addr,
                                rtt,
                            });
                            self.out
                                .push_back(Output::RecordOutcome { addr: cand.addr });
                            self.trace(
                                now,
                                HeEventKind::Established {
                                    addr: cand.addr,
                                    family: cand.family(),
                                    proto: cand.proto,
                                },
                            );
                            self.out.push_back(Output::Established {
                                addr: cand.addr,
                                family: cand.family(),
                                proto: cand.proto,
                            });
                            self.phase = Phase::Done;
                        }
                        Err(error) => {
                            self.failures += 1;
                            self.trace(
                                now,
                                HeEventKind::AttemptFailed {
                                    index,
                                    addr: cand.addr,
                                    error,
                                },
                            );
                            if self.next < self.candidates.len() {
                                // RFC 8305 §5: a failure starts the next
                                // attempt immediately.
                                self.start_attempt(now);
                            } else if self.failures >= self.candidates.len() {
                                self.trace(
                                    now,
                                    HeEventKind::Failed {
                                        reason: "all-attempts-failed",
                                    },
                                );
                                self.out
                                    .push_back(Output::Failed(HeError::AllAttemptsFailed));
                                self.phase = Phase::Done;
                                return;
                            }
                            self.race_head();
                        }
                    }
                }
                _ => {}
            },
            Phase::Done => {}
        }
    }

    fn begin_resolution(&mut self, now: SimTime) {
        self.gathered = Gathered {
            pending: self.qtypes.len(),
            ..Gathered::default()
        };
        for qt in &self.qtypes {
            self.out.push_back(Output::SendQuery { qtype: *qt });
        }
        for i in 0..self.qtypes.len() {
            let qt = self.qtypes[i];
            self.trace(now, HeEventKind::DnsQuerySent { qtype: qt });
        }
        if self.cfg.quirks.wait_for_all_answers {
            if self.gathered.pending > 0 {
                self.phase = Phase::WaitAll;
            } else {
                self.finish_resolution(now);
            }
        } else {
            self.res_outer_eval(now);
        }
    }

    /// RFC 8305 §3: connect as soon as the preferred family answers; if
    /// the other family answers first, arm the Resolution Delay.
    fn res_outer_eval(&mut self, now: SimTime) {
        if self.gathered.has_family(self.cfg.prefer) {
            return self.finish_resolution(now);
        }
        if self.gathered.has_family(self.cfg.prefer.other()) {
            match self.cfg.resolution_delay {
                Some(rd) if self.gathered.pending > 0 => {
                    self.trace(now, HeEventKind::ResolutionDelayStarted { delay: rd });
                    let rd_deadline = now + rd;
                    self.out.push_back(Output::ArmTimer(rd_deadline));
                    self.phase = Phase::ResRd { rd_deadline };
                    return;
                }
                _ => return self.finish_resolution(now),
            }
        }
        if self.gathered.pending == 0 {
            return self.finish_resolution(now);
        }
        self.phase = Phase::ResOuter;
    }

    fn finish_resolution(&mut self, now: SimTime) {
        if !self.gathered.has_any() {
            self.trace(
                now,
                HeEventKind::Failed {
                    reason: "no-addresses",
                },
            );
            self.out.push_back(Output::Failed(HeError::NoAddresses));
            self.phase = Phase::Done;
            return;
        }
        self.candidates = self.build_candidates();
        self.trace(
            now,
            HeEventKind::CandidatesBuilt {
                families: self.candidates.iter().map(Candidate::family).collect(),
            },
        );
        self.start_attempt(now);
        self.race_head();
    }

    /// Starts the next staggered attempt (`self.next`), advancing the
    /// counter and the CAD anchor even when the index is out of range
    /// (matching the legacy engine's no-op start).
    fn start_attempt(&mut self, now: SimTime) {
        let idx = self.next;
        self.next += 1;
        self.last_attempt_at = now;
        let Some(cand) = self.candidates.get(idx).copied() else {
            return;
        };
        self.trace(
            now,
            HeEventKind::AttemptStarted {
                index: idx,
                addr: cand.addr,
                proto: cand.proto,
            },
        );
        self.out.push_back(Output::StartAttempt {
            index: idx,
            candidate: cand,
        });
    }

    fn race_head(&mut self) {
        self.phase = Phase::RaceCad;
    }

    fn build_candidates(&self) -> Vec<Candidate> {
        let mut order = interlace(
            &self.gathered.v6,
            &self.gathered.v4,
            self.cfg.prefer,
            self.cfg.interlace,
        );
        if self.cfg.quirks.stop_after_first_pair {
            truncate_to_first_pair(&mut order);
        }
        expand_protocols(
            &order,
            self.gathered.h3,
            self.gathered.ech,
            self.cfg.use_quic,
        )
    }
}

/// Replaces the un-attempted tail of `candidates` with the freshly rebuilt
/// order, keeping already-started attempts (indices `< started`) in place
/// and never re-adding a candidate that already ran.
fn merge_candidates(candidates: &mut Vec<Candidate>, started: usize, rebuilt: Vec<Candidate>) {
    let started_set: Vec<Candidate> = candidates[..started.min(candidates.len())].to_vec();
    candidates.truncate(started.min(candidates.len()));
    for c in rebuilt {
        if !started_set.contains(&c) {
            candidates.push(c);
        }
    }
}

fn truncate_to_first_pair(order: &mut Vec<IpAddr>) {
    let mut kept_v6 = false;
    let mut kept_v4 = false;
    order.retain(|a| match Family::of(*a) {
        Family::V6 if !kept_v6 => {
            kept_v6 = true;
            true
        }
        Family::V4 if !kept_v4 => {
            kept_v4 = true;
            true
        }
        _ => false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_net::addr::{v4, v6};

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn answer(at: SimTime, qtype: RrType, addr: IpAddr) -> DnsAnswer {
        use lazyeye_dns::Record;
        let rdata = match addr {
            IpAddr::V6(a) => RData::Aaaa(a),
            IpAddr::V4(a) => RData::A(a),
        };
        DnsAnswer {
            at,
            qtype,
            records: vec![Record::new(
                lazyeye_dns::Name::parse("www.hetest").unwrap(),
                300,
                rdata,
            )],
            outcome: AnswerOutcome::Ok,
        }
    }

    fn drain(m: &mut HeMachine, input: Input, now: SimTime) -> Vec<Output> {
        m.process(input, now).collect()
    }

    #[test]
    fn healthy_run_walks_to_established() {
        let cfg = HeConfig::rfc8305();
        let mut m = HeMachine::new(
            cfg,
            vec![RrType::Aaaa, RrType::A],
            SimTime::ZERO + Duration::from_secs(30),
        );
        assert_eq!(m.waiting(), Waiting::Start);
        let out = drain(&mut m, Input::Start { cached: None }, SimTime::ZERO);
        assert!(matches!(out[0], Output::SendQuery { .. }));
        assert_eq!(m.waiting(), Waiting::Dns);
        let t = SimTime::from_millis(1);
        drain(
            &mut m,
            Input::Dns(Some(answer(t, RrType::Aaaa, v6("2001:db8::1")))),
            t,
        );
        // Preferred family answered: candidates built, first attempt out.
        assert!(matches!(m.waiting(), Waiting::Cad { dst: Some(_) }));
        drain(&mut m, Input::Cad(ms(250)), t);
        match m.waiting() {
            Waiting::Race {
                next_start,
                dns_open,
            } => {
                // Single candidate so far: deadline-bounded wait.
                assert_eq!(next_start, None);
                assert!(dns_open);
            }
            w => panic!("unexpected wait {w:?}"),
        }
        let t2 = SimTime::from_millis(2);
        let out = drain(
            &mut m,
            Input::AttemptResult {
                index: 0,
                result: Ok(ms(1)),
            },
            t2,
        );
        assert!(out.iter().any(|o| matches!(
            o,
            Output::Established {
                family: Family::V6,
                ..
            }
        )));
        assert!(m.is_done());
    }

    #[test]
    fn cached_failure_falls_back_to_resolution() {
        let cfg = HeConfig::rfc8305();
        let mut m = HeMachine::new(
            cfg,
            vec![RrType::Aaaa, RrType::A],
            SimTime::ZERO + Duration::from_secs(30),
        );
        drain(
            &mut m,
            Input::Start {
                cached: Some(v6("2001:db8::1")),
            },
            SimTime::ZERO,
        );
        assert!(matches!(m.waiting(), Waiting::CachedAttempt { .. }));
        let out = drain(&mut m, Input::CachedResult { ok: false }, SimTime::ZERO);
        assert!(out.iter().any(|o| matches!(o, Output::InvalidateOutcome)));
        assert!(out.iter().any(|o| matches!(o, Output::SendQuery { .. })));
        assert_eq!(m.waiting(), Waiting::Dns);
    }

    #[test]
    fn rd_armed_when_other_family_first() {
        let cfg = HeConfig::rfc8305();
        let mut m = HeMachine::new(
            cfg,
            vec![RrType::Aaaa, RrType::A],
            SimTime::ZERO + Duration::from_secs(30),
        );
        drain(&mut m, Input::Start { cached: None }, SimTime::ZERO);
        let t = SimTime::from_millis(1);
        let out = drain(
            &mut m,
            Input::Dns(Some(answer(t, RrType::A, v4("192.0.2.1")))),
            t,
        );
        assert!(out.iter().any(|o| matches!(
            o,
            Output::Trace(HeEvent {
                kind: HeEventKind::ResolutionDelayStarted { .. },
                ..
            })
        )));
        assert_eq!(
            m.waiting(),
            Waiting::DnsOrTimer {
                deadline: t + ms(50)
            }
        );
        // Timer expiry proceeds with IPv4.
        let t2 = t + ms(50);
        drain(&mut m, Input::Timer, t2);
        assert!(matches!(m.waiting(), Waiting::Cad { .. }));
    }

    #[test]
    fn truncate_keeps_first_of_each_family() {
        let mut order = vec![
            v6("2001:db8::1"),
            v4("192.0.2.1"),
            v6("2001:db8::2"),
            v4("192.0.2.2"),
        ];
        truncate_to_first_pair(&mut order);
        assert_eq!(order, vec![v6("2001:db8::1"), v4("192.0.2.1")]);
    }

    #[test]
    fn truncate_single_family_keeps_one() {
        let mut order = vec![v6("2001:db8::1"), v6("2001:db8::2")];
        truncate_to_first_pair(&mut order);
        assert_eq!(order, vec![v6("2001:db8::1")]);
    }

    #[test]
    fn deadline_cuts_any_phase() {
        let cfg = HeConfig::rfc8305();
        let mut m = HeMachine::new(
            cfg,
            vec![RrType::Aaaa, RrType::A],
            SimTime::ZERO + Duration::from_secs(30),
        );
        drain(&mut m, Input::Start { cached: None }, SimTime::ZERO);
        let out = drain(&mut m, Input::DeadlineExpired, SimTime::from_secs(30));
        assert!(out
            .iter()
            .any(|o| matches!(o, Output::Failed(HeError::Deadline))));
        assert!(m.is_done());
    }
}

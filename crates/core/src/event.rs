//! The structured event log a Happy Eyeballs run produces — the
//! client-side observable every analyzer and the web tool consume.

use std::net::IpAddr;
use std::time::Duration;

use lazyeye_dns::RrType;
use lazyeye_net::Family;
use lazyeye_sim::SimTime;

use crate::select::CandidateProto;

/// What happened.
#[derive(Clone, Debug, PartialEq)]
pub enum HeEventKind {
    /// A DNS query hit the wire.
    DnsQuerySent {
        /// Record type queried.
        qtype: RrType,
    },
    /// A DNS answer arrived (or terminally failed).
    DnsAnswer {
        /// Record type answered.
        qtype: RrType,
        /// How many usable records it carried.
        records: usize,
        /// Stub-level outcome label ("ok", "nxdomain", "timeout", ...).
        outcome: &'static str,
    },
    /// The Resolution Delay timer was armed (A arrived before AAAA).
    ResolutionDelayStarted {
        /// Configured RD.
        delay: Duration,
    },
    /// The RD expired without a AAAA answer; proceeding with IPv4.
    ResolutionDelayExpired,
    /// The candidate list was (re)built.
    CandidatesBuilt {
        /// Interlaced order, as families (the Figure 5 observable).
        families: Vec<Family>,
    },
    /// A connection attempt started.
    AttemptStarted {
        /// Attempt index in the candidate order.
        index: usize,
        /// Destination address.
        addr: IpAddr,
        /// Transport.
        proto: CandidateProto,
    },
    /// An attempt completed the handshake.
    AttemptSucceeded {
        /// Attempt index.
        index: usize,
        /// Destination address.
        addr: IpAddr,
    },
    /// An attempt failed (refused/timeout/unreachable).
    AttemptFailed {
        /// Attempt index.
        index: usize,
        /// Destination address.
        addr: IpAddr,
        /// Error label.
        error: &'static str,
    },
    /// A still-pending attempt was cancelled because another won.
    AttemptCancelled {
        /// Attempt index.
        index: usize,
        /// Destination address.
        addr: IpAddr,
    },
    /// The winning connection was established.
    Established {
        /// Winning address.
        addr: IpAddr,
        /// Its family — the headline Happy Eyeballs outcome.
        family: Family,
        /// Transport that won.
        proto: CandidateProto,
    },
    /// A cached outcome short-circuited the procedure (RFC 6555 §4.2).
    UsedCachedOutcome {
        /// The remembered address.
        addr: IpAddr,
    },
    /// The whole procedure failed.
    Failed {
        /// Reason label.
        reason: &'static str,
    },
}

/// A timestamped event.
#[derive(Clone, Debug, PartialEq)]
pub struct HeEvent {
    /// When it happened (virtual time).
    pub at: SimTime,
    /// What happened.
    pub kind: HeEventKind,
}

/// The full log of one `connect` run, with query helpers.
#[derive(Clone, Debug, Default)]
pub struct HeLog {
    /// Events in chronological order.
    pub events: Vec<HeEvent>,
}

impl HeLog {
    /// Appends an event stamped `at`.
    pub fn push(&mut self, at: SimTime, kind: HeEventKind) {
        self.events.push(HeEvent { at, kind });
    }

    /// Time of the first attempt towards the given family.
    pub fn first_attempt(&self, family: Family) -> Option<SimTime> {
        self.events.iter().find_map(|e| match &e.kind {
            HeEventKind::AttemptStarted { addr, .. } if Family::of(*addr) == family => Some(e.at),
            _ => None,
        })
    }

    /// The client-visible CAD: first IPv4 attempt − first IPv6 attempt.
    pub fn observed_cad(&self) -> Option<Duration> {
        let v6 = self.first_attempt(Family::V6)?;
        let v4 = self.first_attempt(Family::V4)?;
        v4.checked_duration_since(v6)
    }

    /// Family sequence of distinct attempted addresses (Figure 5 row).
    pub fn attempt_families(&self) -> Vec<Family> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for e in &self.events {
            if let HeEventKind::AttemptStarted { addr, .. } = &e.kind {
                if seen.insert(*addr) {
                    out.push(Family::of(*addr));
                }
            }
        }
        out
    }

    /// Distinct addresses attempted, per family (Table 2's "Addrs. Used").
    pub fn addrs_used(&self, family: Family) -> usize {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                HeEventKind::AttemptStarted { addr, .. } if Family::of(*addr) == family => {
                    Some(*addr)
                }
                _ => None,
            })
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// The established family, if any.
    pub fn established_family(&self) -> Option<Family> {
        self.events.iter().find_map(|e| match &e.kind {
            HeEventKind::Established { family, .. } => Some(*family),
            _ => None,
        })
    }

    /// Whether a Resolution Delay was armed during this run.
    pub fn used_resolution_delay(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, HeEventKind::ResolutionDelayStarted { .. }))
    }

    /// Time from start to establishment.
    pub fn time_to_connect(&self) -> Option<Duration> {
        let start = self.events.first()?.at;
        self.events.iter().find_map(|e| match &e.kind {
            HeEventKind::Established { .. } => Some(e.at - start),
            _ => None,
        })
    }

    /// Pretty one-line-per-event rendering for debugging.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(s, "{:>14}  {:?}", e.at.to_string(), e.kind);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_net::addr::{v4, v6};

    fn log_with_attempts() -> HeLog {
        let mut log = HeLog::default();
        log.push(
            SimTime::ZERO,
            HeEventKind::DnsQuerySent {
                qtype: RrType::Aaaa,
            },
        );
        log.push(
            SimTime::from_millis(1),
            HeEventKind::AttemptStarted {
                index: 0,
                addr: v6("2001:db8::1"),
                proto: CandidateProto::Tcp,
            },
        );
        log.push(
            SimTime::from_millis(301),
            HeEventKind::AttemptStarted {
                index: 1,
                addr: v4("192.0.2.1"),
                proto: CandidateProto::Tcp,
            },
        );
        log.push(
            SimTime::from_millis(302),
            HeEventKind::Established {
                addr: v4("192.0.2.1"),
                family: Family::V4,
                proto: CandidateProto::Tcp,
            },
        );
        log
    }

    #[test]
    fn observed_cad() {
        let log = log_with_attempts();
        assert_eq!(log.observed_cad(), Some(Duration::from_millis(300)));
    }

    #[test]
    fn attempt_families_dedup() {
        let mut log = log_with_attempts();
        // Re-attempting the same v6 address must not add a row.
        log.push(
            SimTime::from_millis(400),
            HeEventKind::AttemptStarted {
                index: 2,
                addr: v6("2001:db8::1"),
                proto: CandidateProto::Tcp,
            },
        );
        assert_eq!(log.attempt_families(), vec![Family::V6, Family::V4]);
        assert_eq!(log.addrs_used(Family::V6), 1);
        assert_eq!(log.addrs_used(Family::V4), 1);
    }

    #[test]
    fn established_family_and_ttc() {
        let log = log_with_attempts();
        assert_eq!(log.established_family(), Some(Family::V4));
        assert_eq!(log.time_to_connect(), Some(Duration::from_millis(302)));
    }

    #[test]
    fn no_cad_without_v4_attempt() {
        let mut log = HeLog::default();
        log.push(
            SimTime::ZERO,
            HeEventKind::AttemptStarted {
                index: 0,
                addr: v6("2001:db8::1"),
                proto: CandidateProto::Tcp,
            },
        );
        assert_eq!(log.observed_cad(), None);
        assert_eq!(log.established_family(), None);
    }

    #[test]
    fn rd_flag() {
        let mut log = HeLog::default();
        assert!(!log.used_resolution_delay());
        log.push(
            SimTime::ZERO,
            HeEventKind::ResolutionDelayStarted {
                delay: Duration::from_millis(50),
            },
        );
        assert!(log.used_resolution_delay());
    }
}

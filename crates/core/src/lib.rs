//! # lazyeye-core — the Happy Eyeballs engine
//!
//! A complete, configuration-driven implementation of Happy Eyeballs:
//!
//! * **HEv1** (RFC 6555): race one IPv6 against one IPv4 connection with a
//!   Connection Attempt Delay, remember the winner for ~10 minutes;
//! * **HEv2** (RFC 8305): AAAA-then-A queries, the 50 ms Resolution Delay,
//!   address sorting with First-Address-Family-Count and interlacing,
//!   staggered attempts where a failure immediately starts the next;
//! * **HEv3** (draft): SVCB/HTTPS processing, ECH > QUIC > TCP protocol
//!   preference, QUIC racing.
//!
//! The same engine reproduces the *deviations* the paper measured via
//! [`Quirks`] — most importantly `wait_for_all_answers`, the
//! Chrome/Firefox behaviour where a slow **A** lookup stalls even IPv6
//! connections (§5.2), and the interlacing differences of Figure 5.
//!
//! Every run returns an [`HeLog`]: the timestamped client-side observable
//! (DNS events, attempt starts, establishment) that the testbed's
//! analyzers and the web tool evaluate.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod event;
pub mod fastpath;
mod history;
pub mod machine;
mod params;
pub mod select;

pub use engine::{HappyEyeballs, HeConnection, HeResult};
pub use event::{HeEvent, HeEventKind, HeLog};
pub use history::HistoryStore;
pub use machine::{HeError, HeMachine, Input, Output, Waiting};
pub use params::{
    version_params, CadMode, HeConfig, HeVersion, InterlaceStrategy, Quirks, VersionParams,
};
pub use select::{Candidate, CandidateProto};

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_authns::{serve, AuthConfig, AuthServer, TestDomain};
    use lazyeye_dns::{Name, RrType, Zone, ZoneSet};
    use lazyeye_net::{quic_serve, Family, Host, Netem, NetemRule, Network, QuicServerConfig};
    use lazyeye_resolver::{QueryOrder, StubConfig, StubResolver};
    use lazyeye_sim::{spawn, Sim};
    use std::net::SocketAddr;
    use std::rc::Rc;
    use std::time::Duration;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    struct Bed {
        sim: Sim,
        server: Host,
        client: Host,
        auth: AuthServer,
    }

    /// Dual-stack server with www.hetest A+AAAA; DNS and HTTP on the same
    /// server host (like the paper's single server node).
    fn build_bed(seed: u64) -> Bed {
        let sim = Sim::new(seed);
        let net = Network::new();
        let server = net.host("server").v4("192.0.2.1").v6("2001:db8::1").build();
        let client = net
            .host("client")
            .v4("192.0.2.100")
            .v6("2001:db8::100")
            .build();
        let mut zone = Zone::new(n("hetest"));
        zone.a(&n("www.hetest"), "192.0.2.1".parse().unwrap(), 300);
        zone.aaaa(&n("www.hetest"), "2001:db8::1".parse().unwrap(), 300);
        let mut zones = ZoneSet::new();
        zones.add(zone);
        let auth = AuthServer::new(AuthConfig {
            zones,
            ..AuthConfig::default()
        });
        sim.enter(|| {
            spawn(serve(server.udp_bind_any(53).unwrap(), auth.clone()));
            let listener = server.tcp_listen_any(80).unwrap();
            spawn(async move {
                loop {
                    let Ok((s, _)) = listener.accept().await else {
                        break;
                    };
                    // Accept and hold; HE only needs the handshake.
                    std::mem::forget(s);
                }
            });
        });
        Bed {
            sim,
            server,
            client,
            auth,
        }
    }

    fn engine_on(bed: &Bed, cfg: HeConfig) -> HappyEyeballs {
        engine_with_stub(
            bed,
            cfg,
            StubConfig {
                servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 53)],
                ..StubConfig::default()
            },
        )
    }

    fn engine_with_stub(bed: &Bed, cfg: HeConfig, stub_cfg: StubConfig) -> HappyEyeballs {
        let stub = Rc::new(StubResolver::new(bed.client.clone(), stub_cfg));
        HappyEyeballs::new(cfg, bed.client.clone(), stub, Rc::new(HistoryStore::new()))
    }

    #[test]
    fn healthy_dual_stack_prefers_ipv6() {
        let mut bed = build_bed(1);
        let he = engine_on(&bed, HeConfig::rfc8305());
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        let conn = res.connection.unwrap();
        assert_eq!(conn.family(), Family::V6);
        assert_eq!(res.log.established_family(), Some(Family::V6));
        assert_eq!(res.log.observed_cad(), None, "no IPv4 attempt needed");
    }

    #[test]
    fn delayed_v6_falls_back_at_cad() {
        let mut bed = build_bed(1);
        bed.server
            .add_egress(NetemRule::family(Family::V6, Netem::delay_ms(400)));
        let he = engine_on(&bed, HeConfig::rfc8305());
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        let conn = res.connection.unwrap();
        assert_eq!(conn.family(), Family::V4);
        let cad = res.log.observed_cad().unwrap();
        assert_eq!(cad, Duration::from_millis(250), "RFC CAD of 250 ms");
    }

    #[test]
    fn mildly_delayed_v6_still_wins() {
        let mut bed = build_bed(1);
        bed.server
            .add_egress(NetemRule::family(Family::V6, Netem::delay_ms(100)));
        let he = engine_on(&bed, HeConfig::rfc8305());
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        assert_eq!(res.connection.unwrap().family(), Family::V6);
        assert_eq!(res.log.observed_cad(), None);
    }

    #[test]
    fn custom_cad_shifts_the_crossover() {
        // Chromium's 300 ms CAD: a 280 ms IPv6 delay stays on IPv6; with
        // the RFC's 250 ms it would have fallen back.
        let mut bed = build_bed(1);
        bed.server
            .add_egress(NetemRule::family(Family::V6, Netem::delay_ms(280)));
        let mut cfg = HeConfig::rfc8305();
        cfg.cad = CadMode::Fixed(Duration::from_millis(300));
        let he = engine_on(&bed, cfg);
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        assert_eq!(res.connection.unwrap().family(), Family::V6);
    }

    #[test]
    fn rd_waits_50ms_for_aaaa_then_uses_v4() {
        // AAAA delayed far beyond the RD: after A arrives the engine waits
        // exactly 50 ms, then connects over IPv4.
        let mut bed = build_bed(1);
        let mut cfg_auth = AuthConfig::default();
        let mut zone = Zone::new(n("hetest"));
        zone.a(&n("www.hetest"), "192.0.2.1".parse().unwrap(), 300);
        zone.aaaa(&n("www.hetest"), "2001:db8::1".parse().unwrap(), 300);
        let mut zones = ZoneSet::new();
        zones.add(zone);
        cfg_auth.zones = zones;
        cfg_auth.qtype_delays = vec![(RrType::Aaaa, Duration::from_millis(1000))];
        // Spawn a second auth server (with the AAAA delay) on port 5353.
        let auth = AuthServer::new(cfg_auth);
        let server = bed.server.clone();
        bed.sim.enter(|| {
            spawn(serve(server.udp_bind_any(5353).unwrap(), auth));
        });
        let he = engine_with_stub(
            &bed,
            HeConfig::rfc8305(),
            StubConfig {
                servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 5353)],
                ..StubConfig::default()
            },
        );
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        assert_eq!(res.connection.unwrap().family(), Family::V4);
        assert!(res.log.used_resolution_delay());
        // First v4 attempt ≈ A arrival + 50 ms RD.
        let a_at = res
            .log
            .events
            .iter()
            .find_map(|e| match &e.kind {
                HeEventKind::DnsAnswer { qtype, .. } if *qtype == RrType::A => Some(e.at),
                _ => None,
            })
            .unwrap();
        let v4_at = res.log.first_attempt(Family::V4).unwrap();
        assert_eq!((v4_at - a_at).as_millis(), 50);
    }

    #[test]
    fn aaaa_arriving_within_rd_goes_v6_immediately() {
        let mut bed = build_bed(1);
        bed.auth.clear_log();
        // AAAA 20 ms slower than A — inside the 50 ms RD.
        let auth = AuthServer::new({
            let mut zone = Zone::new(n("hetest"));
            zone.a(&n("www.hetest"), "192.0.2.1".parse().unwrap(), 300);
            zone.aaaa(&n("www.hetest"), "2001:db8::1".parse().unwrap(), 300);
            let mut zones = ZoneSet::new();
            zones.add(zone);
            AuthConfig {
                zones,
                qtype_delays: vec![(RrType::Aaaa, Duration::from_millis(20))],
                ..AuthConfig::default()
            }
        });
        let server = bed.server.clone();
        bed.sim.enter(|| {
            spawn(serve(server.udp_bind_any(5353).unwrap(), auth));
        });
        let he = engine_with_stub(
            &bed,
            HeConfig::rfc8305(),
            StubConfig {
                servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 5353)],
                ..StubConfig::default()
            },
        );
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        assert_eq!(res.connection.unwrap().family(), Family::V6);
        assert!(res.log.used_resolution_delay());
        assert!(
            !res.log
                .events
                .iter()
                .any(|e| matches!(e.kind, HeEventKind::ResolutionDelayExpired)),
            "RD must not expire when AAAA arrives in time"
        );
    }

    #[test]
    fn chrome_quirk_slow_a_stalls_ipv6() {
        // The paper's §5.2 headline: with `wait_for_all_answers`, a slow A
        // lookup delays the IPv6 connection although AAAA answered
        // instantly.
        let mut bed = build_bed(1);
        let auth = AuthServer::new({
            let mut zone = Zone::new(n("hetest"));
            zone.a(&n("www.hetest"), "192.0.2.1".parse().unwrap(), 300);
            zone.aaaa(&n("www.hetest"), "2001:db8::1".parse().unwrap(), 300);
            let mut zones = ZoneSet::new();
            zones.add(zone);
            AuthConfig {
                zones,
                qtype_delays: vec![(RrType::A, Duration::from_millis(800))],
                ..AuthConfig::default()
            }
        });
        let server = bed.server.clone();
        bed.sim.enter(|| {
            spawn(serve(server.udp_bind_any(5353).unwrap(), auth));
        });
        let mut cfg = HeConfig::rfc8305();
        cfg.resolution_delay = None;
        cfg.quirks.wait_for_all_answers = true;
        let he = engine_with_stub(
            &bed,
            cfg,
            StubConfig {
                servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 5353)],
                ..StubConfig::default()
            },
        );
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        assert_eq!(
            res.connection.unwrap().family(),
            Family::V6,
            "still prefers v6"
        );
        let v6_at = res.log.first_attempt(Family::V6).unwrap();
        assert!(
            v6_at.as_millis() >= 800,
            "IPv6 attempt stalled until the A answer ({} ms)",
            v6_at.as_millis()
        );
    }

    #[test]
    fn rfc_engine_does_not_stall_on_slow_a() {
        // Same scenario, RFC-conformant config: IPv6 connects immediately.
        let mut bed = build_bed(1);
        let auth = AuthServer::new({
            let mut zone = Zone::new(n("hetest"));
            zone.a(&n("www.hetest"), "192.0.2.1".parse().unwrap(), 300);
            zone.aaaa(&n("www.hetest"), "2001:db8::1".parse().unwrap(), 300);
            let mut zones = ZoneSet::new();
            zones.add(zone);
            AuthConfig {
                zones,
                qtype_delays: vec![(RrType::A, Duration::from_millis(800))],
                ..AuthConfig::default()
            }
        });
        let server = bed.server.clone();
        bed.sim.enter(|| {
            spawn(serve(server.udp_bind_any(5353).unwrap(), auth));
        });
        let he = engine_with_stub(
            &bed,
            HeConfig::rfc8305(),
            StubConfig {
                servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 5353)],
                ..StubConfig::default()
            },
        );
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        assert_eq!(res.connection.unwrap().family(), Family::V6);
        let v6_at = res.log.first_attempt(Family::V6).unwrap();
        assert!(
            v6_at.as_millis() < 50,
            "v6 attempt at {} ms",
            v6_at.as_millis()
        );
    }

    #[test]
    fn wget_no_fallback_fails_when_v6_dead() {
        let mut bed = build_bed(1);
        bed.server.blackhole("2001:db8::1".parse().unwrap());
        let mut cfg = HeConfig::rfc8305();
        cfg.interlace = InterlaceStrategy::NoFallback;
        cfg.quirks.wait_for_all_answers = true;
        cfg.attempt_timeout = Duration::from_secs(5);
        cfg.overall_deadline = Duration::from_secs(60);
        let he = engine_on(&bed, cfg);
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        assert_eq!(res.connection.unwrap_err(), HeError::AllAttemptsFailed);
        assert_eq!(res.log.addrs_used(Family::V4), 0, "wget never touches IPv4");
        assert_eq!(res.log.addrs_used(Family::V6), 1);
    }

    fn selection_bed(seed: u64) -> (Sim, Host, HappyEyeballs) {
        // 10 AAAA + 10 A records, all pointing at unassigned (blackholed)
        // addresses — the paper's address-selection experiment.
        let sim = Sim::new(seed);
        let net = Network::new();
        let dns = net.host("dns").v4("192.0.2.53").v6("2001:db8::53").build();
        let client = net
            .host("client")
            .v4("192.0.2.100")
            .v6("2001:db8::100")
            .build();
        let td = TestDomain {
            apex: n("sel.test"),
            v4: (1..=10)
                .map(|i| format!("203.0.113.{i}").parse().unwrap())
                .collect(),
            v6: (1..=10)
                .map(|i| format!("2001:db8:dead::{i}").parse().unwrap())
                .collect(),
            ttl: 60,
        };
        let auth = AuthServer::new(AuthConfig {
            test_domains: vec![td],
            ..AuthConfig::default()
        });
        sim.enter(|| {
            spawn(serve(dns.udp_bind_any(53).unwrap(), auth));
        });
        let stub = Rc::new(StubResolver::new(
            client.clone(),
            StubConfig {
                servers: vec![SocketAddr::new("192.0.2.53".parse().unwrap(), 53)],
                ..StubConfig::default()
            },
        ));
        let mut cfg = HeConfig::rfc8305();
        cfg.interlace = InterlaceStrategy::SafariStyle;
        cfg.attempt_timeout = Duration::from_secs(3);
        cfg.overall_deadline = Duration::from_secs(120);
        let he = HappyEyeballs::new(cfg, client.clone(), stub, Rc::new(HistoryStore::new()));
        (sim, client, he)
    }

    #[test]
    fn safari_selection_uses_all_20_addresses() {
        let (mut sim, _client, he) = selection_bed(1);
        let qname = n("d0-tnone-nsel1.sel.test");
        let res = sim.block_on(async move { he.connect(&qname, 80).await });
        assert!(res.connection.is_err());
        let fams = res.log.attempt_families();
        assert_eq!(fams.len(), 20, "all 10+10 addresses attempted");
        // Safari pattern: v6 v6 v4, then the paper's remaining order.
        assert_eq!(fams[0], Family::V6);
        assert_eq!(fams[1], Family::V6);
        assert_eq!(fams[2], Family::V4);
        assert!(fams[3..11].iter().all(|f| *f == Family::V6));
        assert!(fams[11..].iter().all(|f| *f == Family::V4));
        assert_eq!(res.log.addrs_used(Family::V6), 10);
        assert_eq!(res.log.addrs_used(Family::V4), 10);
    }

    #[test]
    fn hev1_clients_stop_after_one_of_each() {
        let (mut sim3, client3, _) = selection_bed(3);
        let stub = Rc::new(StubResolver::new(
            client3.clone(),
            StubConfig {
                servers: vec![SocketAddr::new("192.0.2.53".parse().unwrap(), 53)],
                ..StubConfig::default()
            },
        ));
        let mut cfg = HeConfig::rfc6555();
        cfg.attempt_timeout = Duration::from_secs(3);
        cfg.overall_deadline = Duration::from_secs(60);
        let he = HappyEyeballs::new(cfg, client3, stub, Rc::new(HistoryStore::new()));
        let qname = n("d0-tnone-nsel2.sel.test");
        let res = sim3.block_on(async move { he.connect(&qname, 80).await });
        assert!(res.connection.is_err());
        assert_eq!(res.log.attempt_families(), vec![Family::V6, Family::V4]);
    }

    #[test]
    fn outcome_cache_short_circuits_second_connect() {
        let mut bed = build_bed(1);
        let stub = Rc::new(StubResolver::new(
            bed.client.clone(),
            StubConfig {
                servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 53)],
                ..StubConfig::default()
            },
        ));
        let history = Rc::new(HistoryStore::new());
        let he = Rc::new(HappyEyeballs::new(
            HeConfig::rfc8305(),
            bed.client.clone(),
            stub,
            history,
        ));
        let auth = bed.auth.clone();
        let (first_family, cached_used, dns_queries_after_first) = bed.sim.block_on(async move {
            let r1 = he.connect(&n("www.hetest"), 80).await;
            let f1 = r1.connection.unwrap().family();
            let queries_after_first = auth.query_log().len();
            let r2 = he.connect(&n("www.hetest"), 80).await;
            let cached = r2
                .log
                .events
                .iter()
                .any(|e| matches!(e.kind, HeEventKind::UsedCachedOutcome { .. }));
            assert!(r2.connection.is_ok());
            (f1, cached, auth.query_log().len() - queries_after_first)
        });
        assert_eq!(first_family, Family::V6);
        assert!(cached_used, "second connect must use the 10-minute cache");
        assert_eq!(dns_queries_after_first, 0, "no new DNS for cached outcome");
    }

    #[test]
    fn dynamic_cad_uses_history() {
        let mut bed = build_bed(1);
        bed.server
            .add_egress(NetemRule::family(Family::V6, Netem::delay_ms(400)));
        let history = Rc::new(HistoryStore::new());
        // Teach the history a 30 ms RTT: dynamic CAD = 60 ms.
        history.record_rtt("2001:db8::1".parse().unwrap(), Duration::from_millis(30));
        let stub = Rc::new(StubResolver::new(
            bed.client.clone(),
            StubConfig {
                servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 53)],
                ..StubConfig::default()
            },
        ));
        let mut cfg = HeConfig::rfc8305();
        cfg.cad = CadMode::rfc_dynamic();
        let he = HappyEyeballs::new(cfg, bed.client.clone(), stub, history);
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        assert_eq!(res.connection.unwrap().family(), Family::V4);
        let cad = res.log.observed_cad().unwrap();
        assert_eq!(cad, Duration::from_millis(60), "2 x 30 ms srtt");
    }

    #[test]
    fn hev3_races_quic_and_wins() {
        let mut bed = build_bed(1);
        // QUIC endpoint on 443 with ECH; HTTPS RR advertises h3.
        let auth = AuthServer::new({
            let mut zone = Zone::new(n("hetest"));
            zone.a(&n("www.hetest"), "192.0.2.1".parse().unwrap(), 300);
            zone.aaaa(&n("www.hetest"), "2001:db8::1".parse().unwrap(), 300);
            zone.add(lazyeye_dns::Record::new(
                n("www.hetest"),
                300,
                lazyeye_dns::RData::Https(
                    lazyeye_dns::SvcParams::service(1, Name::root())
                        .with(lazyeye_dns::SvcParam::Alpn(vec![
                            b"h3".to_vec(),
                            b"h2".to_vec(),
                        ]))
                        .with(lazyeye_dns::SvcParam::Ech(vec![1, 2, 3])),
                ),
            ));
            let mut zones = ZoneSet::new();
            zones.add(zone);
            AuthConfig {
                zones,
                ..AuthConfig::default()
            }
        });
        let server = bed.server.clone();
        bed.sim.enter(|| {
            spawn(serve(server.udp_bind_any(5353).unwrap(), auth));
            let qsock = server.udp_bind_any(443).unwrap();
            spawn(quic_serve(
                qsock,
                QuicServerConfig {
                    ech: true,
                    respond: true,
                },
            ));
        });
        let stub = Rc::new(StubResolver::new(
            bed.client.clone(),
            StubConfig {
                servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 5353)],
                qtypes: vec![RrType::Https, RrType::Aaaa, RrType::A],
                ..StubConfig::default()
            },
        ));
        let he = HappyEyeballs::new(
            HeConfig::hev3_draft(),
            bed.client.clone(),
            stub,
            Rc::new(HistoryStore::new()),
        );
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 443).await });
        let conn = res.connection.unwrap();
        assert_eq!(
            conn.proto(),
            CandidateProto::Quic,
            "QUIC preferred per HEv3"
        );
        assert_eq!(conn.family(), Family::V6);
    }

    #[test]
    fn refused_connection_starts_next_attempt_immediately() {
        let mut bed = build_bed(1);
        // Remove the listener by using a port nobody listens on: the v6
        // attempt is refused instantly, so v4 must start well before CAD.
        let he = engine_on(&bed, HeConfig::rfc8305());
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 81).await });
        // Both refused -> AllAttemptsFailed, but the key observable is the
        // gap between attempts being ≈ RTT, not the 250 ms CAD.
        assert_eq!(res.connection.unwrap_err(), HeError::AllAttemptsFailed);
        let cad = res.log.observed_cad().unwrap();
        assert!(
            cad < Duration::from_millis(50),
            "failure must trigger the next attempt early (got {cad:?})"
        );
    }

    #[test]
    fn legacy_stub_order_still_prefers_v6_family() {
        // A-then-AAAA stub (Firefox-style ordering) with RFC engine: the
        // RD still gives IPv6 its chance.
        let mut bed = build_bed(1);
        let he = engine_with_stub(
            &bed,
            HeConfig::rfc8305(),
            StubConfig {
                servers: vec![SocketAddr::new("192.0.2.1".parse().unwrap(), 53)],
                order: QueryOrder::AThenAaaa,
                ..StubConfig::default()
            },
        );
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        assert_eq!(res.connection.unwrap().family(), Family::V6);
    }

    #[test]
    fn nxdomain_fails_with_no_addresses() {
        let mut bed = build_bed(1);
        let he = engine_on(&bed, HeConfig::rfc8305());
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("missing.hetest"), 80).await });
        assert_eq!(res.connection.unwrap_err(), HeError::NoAddresses);
    }

    #[test]
    fn deadline_bounds_the_whole_run() {
        let mut bed = build_bed(1);
        bed.server.blackhole("2001:db8::1".parse().unwrap());
        bed.server.blackhole("192.0.2.1".parse().unwrap());
        let mut cfg = HeConfig::rfc8305();
        cfg.overall_deadline = Duration::from_secs(2);
        cfg.attempt_timeout = Duration::from_secs(30);
        let he = engine_on(&bed, cfg);
        let res = bed
            .sim
            .block_on(async move { he.connect(&n("www.hetest"), 80).await });
        assert_eq!(res.connection.unwrap_err(), HeError::Deadline);
        assert!(bed.sim.now() <= lazyeye_sim::SimTime::from_millis(2100));
    }
}

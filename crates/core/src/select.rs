//! Address selection: sorting and interlacing candidate endpoints
//! (RFC 8305 §4, plus the observed client strategies).

use std::net::IpAddr;

use lazyeye_net::Family;

use crate::params::InterlaceStrategy;

/// A connection candidate: an address plus the transport to try.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Candidate {
    /// Destination address.
    pub addr: IpAddr,
    /// Transport protocol for the attempt.
    pub proto: CandidateProto,
    /// Whether SVCB/HTTPS advertised ECH for this endpoint (HEv3 sorts
    /// these to the very front).
    pub ech: bool,
}

/// Transport of a candidate.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CandidateProto {
    /// Plain TCP.
    Tcp,
    /// QUIC (HEv3, where h3 support is advertised).
    Quic,
}

impl Candidate {
    /// TCP candidate.
    pub fn tcp(addr: IpAddr) -> Candidate {
        Candidate {
            addr,
            proto: CandidateProto::Tcp,
            ech: false,
        }
    }

    /// QUIC candidate.
    pub fn quic(addr: IpAddr) -> Candidate {
        Candidate {
            addr,
            proto: CandidateProto::Quic,
            ech: false,
        }
    }

    /// Family of the candidate address.
    pub fn family(&self) -> Family {
        Family::of(self.addr)
    }
}

/// Interlaces address candidates per the configured strategy. `preferred`
/// is the family the client favours (IPv6 for every client the paper
/// measured). Input order within each family is preserved (it encodes the
/// resolver's ordering, which RFC 8305 §4 says to respect).
pub fn interlace(
    v6: &[IpAddr],
    v4: &[IpAddr],
    preferred: Family,
    strategy: InterlaceStrategy,
) -> Vec<IpAddr> {
    let (pref, other): (&[IpAddr], &[IpAddr]) = match preferred {
        Family::V6 => (v6, v4),
        Family::V4 => (v4, v6),
    };
    match strategy {
        InterlaceStrategy::NoFallback => pref.to_vec(),
        InterlaceStrategy::Hev1SingleFallback => {
            let mut out = Vec::with_capacity(2);
            if let Some(a) = pref.first() {
                out.push(*a);
            }
            if let Some(a) = other.first() {
                out.push(*a);
            }
            out
        }
        InterlaceStrategy::Rfc8305 { first_family_count } => {
            let fafc = first_family_count.max(1);
            let mut out = Vec::with_capacity(pref.len() + other.len());
            let mut pi = 0;
            let mut oi = 0;
            // Head: up to FAFC preferred addresses.
            while pi < fafc.min(pref.len()) {
                out.push(pref[pi]);
                pi += 1;
            }
            // Then strictly alternate, starting with the other family.
            let mut take_other = true;
            while pi < pref.len() || oi < other.len() {
                if take_other {
                    if oi < other.len() {
                        out.push(other[oi]);
                        oi += 1;
                    } else {
                        out.push(pref[pi]);
                        pi += 1;
                    }
                } else if pi < pref.len() {
                    out.push(pref[pi]);
                    pi += 1;
                } else {
                    out.push(other[oi]);
                    oi += 1;
                }
                take_other = !take_other;
            }
            out
        }
        InterlaceStrategy::SafariStyle => {
            // Two preferred, one other, remaining preferred, remaining
            // other (paper App. D: "Safari does use a First Address Family
            // Count of two ... attempt one IPv4 address after the two IPv6
            // addresses. Then it continues with all remaining IPv6 ...
            // and only after, the remaining IPv4").
            let mut out = Vec::with_capacity(pref.len() + other.len());
            let head = 2.min(pref.len());
            out.extend_from_slice(&pref[..head]);
            if let Some(a) = other.first() {
                out.push(*a);
            }
            out.extend_from_slice(&pref[head..]);
            if other.len() > 1 {
                out.extend_from_slice(&other[1..]);
            }
            out
        }
    }
}

/// Expands interlaced addresses into protocol candidates for HEv3:
/// endpoints advertising h3 get a QUIC candidate ahead of their TCP one,
/// and ECH-capable endpoints sort to the front (draft: favour ECH over
/// QUIC over TCP).
pub fn expand_protocols(
    addrs: &[IpAddr],
    h3_capable: bool,
    ech_capable: bool,
    use_quic: bool,
) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(addrs.len() * 2);
    if use_quic && h3_capable {
        for a in addrs {
            out.push(Candidate {
                addr: *a,
                proto: CandidateProto::Quic,
                ech: ech_capable,
            });
        }
        for a in addrs {
            out.push(Candidate::tcp(*a));
        }
        // ECH front-sorting is stable: QUIC+ECH candidates already lead.
    } else {
        for a in addrs {
            out.push(Candidate::tcp(*a));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_net::addr::{v4, v6};

    fn v6s(n: usize) -> Vec<IpAddr> {
        (1..=n).map(|i| v6(&format!("2001:db8::{i}"))).collect()
    }

    fn v4s(n: usize) -> Vec<IpAddr> {
        (1..=n).map(|i| v4(&format!("192.0.2.{i}"))).collect()
    }

    fn fams(addrs: &[IpAddr]) -> Vec<Family> {
        addrs.iter().map(|a| Family::of(*a)).collect()
    }

    #[test]
    fn rfc8305_fafc1_alternates() {
        let order = interlace(
            &v6s(3),
            &v4s(3),
            Family::V6,
            InterlaceStrategy::Rfc8305 {
                first_family_count: 1,
            },
        );
        assert_eq!(
            fams(&order),
            [
                Family::V6,
                Family::V4,
                Family::V6,
                Family::V4,
                Family::V6,
                Family::V4
            ]
        );
    }

    #[test]
    fn rfc8305_fafc2_head() {
        let order = interlace(
            &v6s(3),
            &v4s(3),
            Family::V6,
            InterlaceStrategy::Rfc8305 {
                first_family_count: 2,
            },
        );
        assert_eq!(
            fams(&order),
            [
                Family::V6,
                Family::V6,
                Family::V4,
                Family::V6,
                Family::V4,
                Family::V4
            ]
        );
    }

    #[test]
    fn rfc8305_exhausted_family_appends_rest() {
        let order = interlace(
            &v6s(4),
            &v4s(1),
            Family::V6,
            InterlaceStrategy::Rfc8305 {
                first_family_count: 1,
            },
        );
        assert_eq!(
            fams(&order),
            [Family::V6, Family::V4, Family::V6, Family::V6, Family::V6]
        );
    }

    #[test]
    fn safari_style_pattern_matches_figure5() {
        // 10 + 10 addresses: v6 v6 v4 then v6×8 then v4×9 — exactly the
        // paper's Figure 5 row for Safari.
        let order = interlace(
            &v6s(10),
            &v4s(10),
            Family::V6,
            InterlaceStrategy::SafariStyle,
        );
        let f = fams(&order);
        assert_eq!(f.len(), 20);
        assert_eq!(f[0], Family::V6);
        assert_eq!(f[1], Family::V6);
        assert_eq!(f[2], Family::V4);
        assert!(f[3..11].iter().all(|x| *x == Family::V6));
        assert!(f[11..].iter().all(|x| *x == Family::V4));
    }

    #[test]
    fn hev1_takes_one_of_each() {
        let order = interlace(
            &v6s(10),
            &v4s(10),
            Family::V6,
            InterlaceStrategy::Hev1SingleFallback,
        );
        assert_eq!(fams(&order), [Family::V6, Family::V4]);
    }

    #[test]
    fn no_fallback_ignores_other_family() {
        let order = interlace(&v6s(3), &v4s(3), Family::V6, InterlaceStrategy::NoFallback);
        assert_eq!(fams(&order), [Family::V6, Family::V6, Family::V6]);
    }

    #[test]
    fn v4_preference_flips_roles() {
        let order = interlace(
            &v6s(2),
            &v4s(2),
            Family::V4,
            InterlaceStrategy::Rfc8305 {
                first_family_count: 1,
            },
        );
        assert_eq!(
            fams(&order),
            [Family::V4, Family::V6, Family::V4, Family::V6]
        );
    }

    #[test]
    fn empty_inputs() {
        for strat in [
            InterlaceStrategy::Rfc8305 {
                first_family_count: 1,
            },
            InterlaceStrategy::SafariStyle,
            InterlaceStrategy::Hev1SingleFallback,
            InterlaceStrategy::NoFallback,
        ] {
            assert!(interlace(&[], &[], Family::V6, strat).is_empty());
        }
        let only_v4 = interlace(
            &[],
            &v4s(2),
            Family::V6,
            InterlaceStrategy::Rfc8305 {
                first_family_count: 1,
            },
        );
        assert_eq!(fams(&only_v4), [Family::V4, Family::V4]);
    }

    #[test]
    fn input_order_preserved_within_family() {
        let my_v6 = vec![v6("2001:db8::b"), v6("2001:db8::a")];
        let order = interlace(
            &my_v6,
            &[],
            Family::V6,
            InterlaceStrategy::Rfc8305 {
                first_family_count: 1,
            },
        );
        assert_eq!(order, my_v6, "resolver order must be respected");
    }

    #[test]
    fn protocol_expansion_quic_first() {
        let addrs = v6s(2);
        let cands = expand_protocols(&addrs, true, true, true);
        assert_eq!(cands.len(), 4);
        assert_eq!(cands[0].proto, CandidateProto::Quic);
        assert!(cands[0].ech);
        assert_eq!(cands[2].proto, CandidateProto::Tcp);
    }

    #[test]
    fn protocol_expansion_tcp_only_without_h3() {
        let addrs = v6s(2);
        let cands = expand_protocols(&addrs, false, false, true);
        assert!(cands.iter().all(|c| c.proto == CandidateProto::Tcp));
        let cands2 = expand_protocols(&addrs, true, false, false);
        assert!(cands2.iter().all(|c| c.proto == CandidateProto::Tcp));
    }
}

//! The compiled fast-path driver: runs [`HeMachine`] as a pure function
//! over an analytically-computed event timeline, skipping packet
//! simulation entirely.
//!
//! The caller (see `lazyeye_testbed::fastpath`) knows the sweep topology
//! statically, so it can precompute when each DNS answer arrives on the
//! resolver channel and how long each connection handshake takes. This
//! driver then replays the machine against that [`Timeline`], producing
//! the same `HeLog` the simulator driver would — provided no two event
//! sources coincide. Whenever the outcome would depend on simulator
//! scheduling minutiae (two sources ready at the same instant), the
//! drive **refuses** with [`Refusal::Tie`] instead of guessing, and the
//! caller falls back to full simulation. That refusal discipline is what
//! keeps fast-path campaign reports byte-identical to simulated ones.

use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Duration;

use lazyeye_net::Family;
use lazyeye_resolver::DnsAnswer;
use lazyeye_sim::SimTime;

use crate::event::HeLog;
use crate::history::HistoryStore;
use crate::machine::{HeError, HeMachine, Input, Output, Waiting};
use crate::params::HeConfig;
use crate::select::CandidateProto;

/// Precomputed handshake behaviour of one candidate endpoint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AttemptOutcome {
    /// Time from attempt start to the handshake completing (or
    /// terminally failing). The attempt timeout is applied by the
    /// driver, not baked in here.
    pub duration: Duration,
    /// `Ok(())` for an established handshake, or the error label the
    /// network layer would report.
    pub result: Result<(), &'static str>,
}

/// The precomputed event timeline of one run.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Terminal DNS answers in resolver-channel order, with absolute
    /// arrival times (non-decreasing). The channel closes after the
    /// last one.
    pub dns: Vec<(SimTime, DnsAnswer)>,
    /// Handshake outcome per candidate endpoint the machine may try.
    pub connect: HashMap<(IpAddr, CandidateProto), AttemptOutcome>,
}

/// Why the analytic drive declined to produce a result.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// Two event sources were ready at the same instant; resolving the
    /// order would require replaying simulator scheduling.
    Tie,
    /// The machine started an attempt the timeline has no entry for.
    UnknownCandidate,
    /// The run would take the cached-outcome path (stateful history),
    /// which the fast path does not model.
    CachedPath,
}

impl Refusal {
    /// Stable label used for metrics (`fastpath.fallbacks{reason=..}`)
    /// and flight-recorder events.
    pub fn label(self) -> &'static str {
        match self {
            Refusal::Tie => "tie",
            Refusal::UnknownCandidate => "unknown_candidate",
            Refusal::CachedPath => "cached_path",
        }
    }
}

/// The winning endpoint of a fast-path run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Winner {
    /// Established address.
    pub addr: IpAddr,
    /// Established family.
    pub family: Family,
    /// Established transport.
    pub proto: CandidateProto,
}

/// Everything a fast-path run produces.
pub struct FastRun {
    /// The event log, byte-compatible with the sim driver's.
    pub log: HeLog,
    /// Outcome: winner or failure.
    pub result: Result<Winner, HeError>,
    /// Virtual time at which the run finished.
    pub finished_at: SimTime,
}

struct InFlight {
    ready_at: SimTime,
    index: usize,
    result: Result<Duration, &'static str>,
}

/// Drives a fresh [`HeMachine`] against `timeline`, starting at virtual
/// time `start`. Pure: no clock, sockets, RNG, or shared state. Uses a
/// fresh [`HistoryStore`] for CAD computation (matching the testbed's
/// per-run reset), so dynamic-CAD profiles take their deterministic
/// no-history value exactly as they do under full simulation.
pub fn drive(
    cfg: &HeConfig,
    qtypes: Vec<lazyeye_dns::RrType>,
    start: SimTime,
    timeline: &Timeline,
) -> Result<FastRun, Refusal> {
    let result = drive_inner(cfg, qtypes, start, timeline);
    if let Err(refusal) = &result {
        lazyeye_obs::recorder::record(
            lazyeye_obs::Clock::Virtual,
            "core.fastpath.refusal",
            refusal.label(),
        );
    }
    result
}

fn drive_inner(
    cfg: &HeConfig,
    qtypes: Vec<lazyeye_dns::RrType>,
    start: SimTime,
    timeline: &Timeline,
) -> Result<FastRun, Refusal> {
    let deadline = start + cfg.overall_deadline;
    let mut machine = HeMachine::new(cfg.clone(), qtypes, deadline);
    let history = HistoryStore::new();
    let mut log = HeLog::default();

    let mut t = start;
    let mut dns_i = 0usize;
    let mut in_flight: Vec<InFlight> = Vec::new();
    let mut input = Input::Start { cached: None };
    loop {
        let mut result: Option<Result<Winner, HeError>> = None;
        for out in machine.process(input, t) {
            match out {
                Output::Trace(e) => log.push(e.at, e.kind),
                Output::SendQuery { .. } => {}
                Output::StartAttempt { index, candidate } => {
                    let Some(o) = timeline.connect.get(&(candidate.addr, candidate.proto)) else {
                        return Err(Refusal::UnknownCandidate);
                    };
                    // `timeout(attempt_timeout, connect)` polls the inner
                    // future first, so an exact tie goes to the handshake.
                    let (ready_at, res) = if o.duration <= cfg.attempt_timeout {
                        (
                            t + o.duration,
                            match o.result {
                                Ok(()) => Ok(o.duration),
                                Err(label) => Err(label),
                            },
                        )
                    } else {
                        (t + cfg.attempt_timeout, Err("timeout"))
                    };
                    in_flight.push(InFlight {
                        ready_at,
                        index,
                        result: res,
                    });
                }
                Output::ArmTimer(_) => {}
                Output::RecordRtt { addr, rtt } => history.record_rtt(addr, rtt),
                Output::RecordOutcome { .. } | Output::InvalidateOutcome => {}
                Output::Established {
                    addr,
                    family,
                    proto,
                } => {
                    result = Some(Ok(Winner {
                        addr,
                        family,
                        proto,
                    }));
                }
                Output::Failed(e) => result = Some(Err(e)),
            }
        }
        if let Some(result) = result {
            return Ok(FastRun {
                log,
                result,
                finished_at: t,
            });
        }

        input = match machine.waiting() {
            Waiting::CachedAttempt { .. } => return Err(Refusal::CachedPath),
            Waiting::Cad { dst } => Input::Cad(history.cad_for(cfg.cad, dst)),
            Waiting::Dns => match timeline.dns.get(dns_i) {
                Some((at, ans)) => {
                    t = t.max(*at);
                    dns_i += 1;
                    Input::Dns(Some(ans.clone()))
                }
                // All senders done: the channel yields `None` at the
                // current instant.
                None => Input::Dns(None),
            },
            Waiting::DnsOrTimer { deadline: rd } => match timeline.dns.get(dns_i) {
                // A closed channel is ready on the very first poll,
                // before any timer can fire.
                None => Input::Dns(None),
                Some((at, ans)) => {
                    let eff = (*at).max(t);
                    if eff < rd {
                        t = eff;
                        dns_i += 1;
                        Input::Dns(Some(ans.clone()))
                    } else if rd < eff {
                        t = rd;
                        Input::Timer
                    } else {
                        return Err(Refusal::Tie);
                    }
                }
            },
            Waiting::Race {
                next_start,
                dns_open,
            } => {
                // Earliest unprocessed attempt completion, if any.
                let mut comp: Option<(SimTime, usize)> = None; // (eff time, in_flight idx)
                let mut comp_tied = false;
                for (i, f) in in_flight.iter().enumerate() {
                    let eff = f.ready_at.max(t);
                    match comp {
                        Some((best, _)) if eff > best => {}
                        Some((best, _)) if eff == best => comp_tied = true,
                        _ => {
                            comp = Some((eff, i));
                            comp_tied = false;
                        }
                    }
                }
                if comp_tied {
                    return Err(Refusal::Tie);
                }
                let timer = next_start.map(|s| s.max(t));
                let dns_next = if dns_open {
                    match timeline.dns.get(dns_i) {
                        Some((at, _)) => Some((*at).max(t)),
                        None => {
                            // Channel closed: ready immediately on first
                            // poll — unless a completion is also ready
                            // right now, which would race it.
                            if comp.is_some_and(|(eff, _)| eff == t) {
                                return Err(Refusal::Tie);
                            }
                            let _ = timer; // close wins even over a due timer
                            input = Input::Dns(None);
                            continue;
                        }
                    }
                } else {
                    None
                };

                // Strictly earliest source wins; any cross-source tie is
                // a refusal.
                let mut best: Option<(SimTime, u8)> = None; // (time, source)
                let mut tie = false;
                for (time, src) in [
                    comp.map(|(e, _)| (e, 0u8)),
                    timer.map(|e| (e, 1u8)),
                    dns_next.map(|e| (e, 2u8)),
                ]
                .into_iter()
                .flatten()
                {
                    match best {
                        Some((b, _)) if time > b => {}
                        Some((b, _)) if time == b => tie = true,
                        _ => {
                            best = Some((time, src));
                            tie = false;
                        }
                    }
                }
                if tie {
                    return Err(Refusal::Tie);
                }
                match best {
                    Some((time, 0)) => {
                        let (_, i) = comp.expect("completion source");
                        let f = in_flight.remove(i);
                        t = time;
                        Input::AttemptResult {
                            index: f.index,
                            result: f.result,
                        }
                    }
                    Some((time, 1)) => {
                        t = time;
                        Input::Timer
                    }
                    Some((time, _)) => {
                        t = time;
                        dns_i += 1;
                        Input::Dns(Some(timeline.dns[dns_i - 1].1.clone()))
                    }
                    // No sources at all: the run can only end via the
                    // overall deadline.
                    None => {
                        t = deadline;
                        Input::DeadlineExpired
                    }
                }
            }
            Waiting::Start | Waiting::Done => unreachable!("machine stalled"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_dns::{Name, RData, Record, RrType};
    use lazyeye_net::addr::{v4, v6};
    use lazyeye_resolver::AnswerOutcome;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn answer(at: SimTime, qtype: RrType, addr: IpAddr) -> (SimTime, DnsAnswer) {
        let rdata = match addr {
            IpAddr::V6(a) => RData::Aaaa(a),
            IpAddr::V4(a) => RData::A(a),
        };
        (
            at,
            DnsAnswer {
                at,
                qtype,
                records: vec![Record::new(Name::parse("www.hetest").unwrap(), 300, rdata)],
                outcome: AnswerOutcome::Ok,
            },
        )
    }

    fn tcp(addr: IpAddr, dur: Duration) -> ((IpAddr, CandidateProto), AttemptOutcome) {
        (
            (addr, CandidateProto::Tcp),
            AttemptOutcome {
                duration: dur,
                result: Ok(()),
            },
        )
    }

    #[test]
    fn cad_fallback_timeline() {
        // v6 answer + v4 answer at 400 µs, v6 handshake slowed by 350 ms,
        // fixed 300 ms CAD: v4 should win right after the stagger.
        let cfg = HeConfig {
            cad: crate::CadMode::Fixed(ms(300)),
            quirks: crate::Quirks {
                wait_for_all_answers: true,
                stop_after_first_pair: true,
            },
            ..HeConfig::rfc8305()
        };
        let t0 = SimTime::ZERO + Duration::from_micros(400);
        let timeline = Timeline {
            dns: vec![
                answer(t0, RrType::Aaaa, v6("2001:db8::1")),
                answer(t0, RrType::A, v4("192.0.2.1")),
            ],
            connect: [
                tcp(v6("2001:db8::1"), ms(350) + Duration::from_micros(400)),
                tcp(v4("192.0.2.1"), Duration::from_micros(400)),
            ]
            .into_iter()
            .collect(),
        };
        let run = drive(
            &cfg,
            vec![RrType::Aaaa, RrType::A],
            SimTime::ZERO,
            &timeline,
        )
        .expect("no ties in this timeline");
        let winner = run.result.expect("connects");
        assert_eq!(winner.family, Family::V4);
        let cad = run.log.observed_cad().expect("both families attempted");
        assert_eq!(cad, ms(300));
    }

    #[test]
    fn tie_refuses() {
        // CAD timer and v6 handshake completion at the same instant.
        let cfg = HeConfig {
            cad: crate::CadMode::Fixed(ms(300)),
            quirks: crate::Quirks {
                wait_for_all_answers: true,
                stop_after_first_pair: true,
            },
            ..HeConfig::rfc8305()
        };
        let t0 = SimTime::ZERO;
        let timeline = Timeline {
            dns: vec![
                answer(t0, RrType::Aaaa, v6("2001:db8::1")),
                answer(t0, RrType::A, v4("192.0.2.1")),
            ],
            connect: [tcp(v6("2001:db8::1"), ms(300)), tcp(v4("192.0.2.1"), ms(1))]
                .into_iter()
                .collect(),
        };
        let r = drive(
            &cfg,
            vec![RrType::Aaaa, RrType::A],
            SimTime::ZERO,
            &timeline,
        );
        assert!(matches!(r, Err(Refusal::Tie)));
    }

    #[test]
    fn unknown_candidate_refuses() {
        let cfg = HeConfig::rfc8305();
        let t0 = SimTime::ZERO;
        let timeline = Timeline {
            dns: vec![answer(t0, RrType::Aaaa, v6("2001:db8::1"))],
            connect: HashMap::new(),
        };
        let r = drive(
            &cfg,
            vec![RrType::Aaaa, RrType::A],
            SimTime::ZERO,
            &timeline,
        );
        assert!(matches!(r, Err(Refusal::UnknownCandidate)));
    }
}

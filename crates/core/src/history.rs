//! Connection history: RTT estimates for dynamic CAD, and the RFC 6555
//! outcome cache ("the order of 10 minutes").

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Duration;

use lazyeye_dns::Name;
use lazyeye_net::Family;
use lazyeye_sim::SimTime;

use crate::params::CadMode;

/// Smoothed-RTT store keyed by destination address, with an aggregate
/// estimate for the dynamic Connection Attempt Delay (RFC 8305 §5 allows
/// CAD to be based on "historical RTT data").
#[derive(Default)]
pub struct HistoryStore {
    srtt: RefCell<HashMap<IpAddr, Duration>>,
    outcomes: RefCell<HashMap<Name, OutcomeEntry>>,
}

#[derive(Clone)]
struct OutcomeEntry {
    addr: IpAddr,
    expires: SimTime,
}

impl HistoryStore {
    /// Empty history (a freshly reset client).
    pub fn new() -> HistoryStore {
        HistoryStore::default()
    }

    /// Records an RTT sample (EWMA with α = 1/8, the TCP classic).
    pub fn record_rtt(&self, addr: IpAddr, sample: Duration) {
        let mut map = self.srtt.borrow_mut();
        let entry = map.entry(addr).or_insert(sample);
        let old = entry.as_nanos() as f64;
        let new = sample.as_nanos() as f64;
        *entry = Duration::from_nanos((old * 0.875 + new * 0.125) as u64);
    }

    /// Smoothed RTT towards `addr`, if known.
    pub fn srtt(&self, addr: IpAddr) -> Option<Duration> {
        self.srtt.borrow().get(&addr).copied()
    }

    /// Aggregate RTT estimate: the mean of all samples (a stand-in for
    /// per-network history when the exact address is new).
    pub fn aggregate_rtt(&self) -> Option<Duration> {
        let map = self.srtt.borrow();
        if map.is_empty() {
            return None;
        }
        let total: u128 = map.values().map(|d| d.as_nanos()).sum();
        Some(Duration::from_nanos((total / map.len() as u128) as u64))
    }

    /// Computes the CAD for a destination per the configured mode.
    pub fn cad_for(&self, mode: CadMode, dst: Option<IpAddr>) -> Duration {
        match mode {
            CadMode::Fixed(d) => d,
            CadMode::Dynamic {
                min,
                no_history,
                max,
                spread,
            } => {
                let est = dst
                    .and_then(|a| self.srtt(a))
                    .or_else(|| self.aggregate_rtt());
                match est {
                    Some(rtt) => {
                        let mut cad = rtt * 2;
                        if spread > 0.0 && lazyeye_sim::has_current() {
                            let factor = lazyeye_sim::with_rng(|r| {
                                use rand::Rng;
                                (r.gen_range(-spread..=spread)).exp()
                            });
                            cad = Duration::from_nanos((cad.as_nanos() as f64 * factor) as u64);
                        }
                        cad.clamp(min, max)
                    }
                    None => no_history,
                }
            }
        }
    }

    /// Caches the winning address for a name.
    pub fn record_outcome(&self, now: SimTime, name: Name, addr: IpAddr, ttl: Duration) {
        self.outcomes.borrow_mut().insert(
            name,
            OutcomeEntry {
                addr,
                expires: now + ttl,
            },
        );
    }

    /// Returns the cached winner if still fresh.
    pub fn cached_outcome(&self, now: SimTime, name: &Name) -> Option<IpAddr> {
        let mut map = self.outcomes.borrow_mut();
        match map.get(name) {
            Some(e) if e.expires > now => Some(e.addr),
            Some(_) => {
                map.remove(name);
                None
            }
            None => None,
        }
    }

    /// Drops a cached outcome (after it failed to connect).
    pub fn invalidate_outcome(&self, name: &Name) {
        self.outcomes.borrow_mut().remove(name);
    }

    /// Share of cached outcomes that favour the given family (diagnostic).
    pub fn outcome_family_share(&self, family: Family) -> f64 {
        let map = self.outcomes.borrow();
        if map.is_empty() {
            return 0.0;
        }
        let n = map
            .values()
            .filter(|e| Family::of(e.addr) == family)
            .count();
        n as f64 / map.len() as f64
    }

    /// Clears everything (container reset between runs, as in the paper).
    pub fn clear(&self) {
        self.srtt.borrow_mut().clear();
        self.outcomes.borrow_mut().clear();
    }

    /// Clears only the outcome cache, keeping RTT history — a fresh page
    /// visit in the same browser session (the web tool's repetition unit).
    pub fn clear_outcomes(&self) {
        self.outcomes.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_net::addr::{v4, v6};

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn ewma_converges_toward_samples() {
        let h = HistoryStore::new();
        let a = v6("2001:db8::1");
        h.record_rtt(a, ms(100));
        assert_eq!(h.srtt(a), Some(ms(100)), "first sample initialises");
        for _ in 0..50 {
            h.record_rtt(a, ms(20));
        }
        let s = h.srtt(a).unwrap();
        assert!(s < ms(30), "srtt {s:?} should approach 20 ms");
    }

    #[test]
    fn fixed_cad_ignores_history() {
        let h = HistoryStore::new();
        h.record_rtt(v4("192.0.2.1"), ms(500));
        assert_eq!(h.cad_for(CadMode::Fixed(ms(250)), None), ms(250));
    }

    #[test]
    fn dynamic_cad_without_history_uses_default() {
        let h = HistoryStore::new();
        let mode = CadMode::Dynamic {
            min: ms(10),
            no_history: ms(2000),
            max: ms(5000),
            spread: 0.0,
        };
        // Safari on a fresh container: no history → 2 s, the paper's
        // local-testbed observation.
        assert_eq!(h.cad_for(mode, Some(v6("2001:db8::9"))), ms(2000));
    }

    #[test]
    fn dynamic_cad_is_2x_srtt_clamped() {
        let h = HistoryStore::new();
        let a = v6("2001:db8::1");
        let mode = CadMode::Dynamic {
            min: ms(10),
            no_history: ms(100),
            max: ms(2000),
            spread: 0.0,
        };
        h.record_rtt(a, ms(40));
        assert_eq!(h.cad_for(mode, Some(a)), ms(80), "2x srtt");
        let h2 = HistoryStore::new();
        h2.record_rtt(a, ms(2));
        assert_eq!(h2.cad_for(mode, Some(a)), ms(10), "clamped to min");
        let h3 = HistoryStore::new();
        h3.record_rtt(a, ms(30_000));
        assert_eq!(h3.cad_for(mode, Some(a)), ms(2000), "clamped to max");
    }

    #[test]
    fn dynamic_cad_falls_back_to_aggregate() {
        let h = HistoryStore::new();
        h.record_rtt(v4("192.0.2.1"), ms(50));
        h.record_rtt(v4("192.0.2.2"), ms(150));
        let mode = CadMode::rfc_dynamic();
        // Unknown destination: aggregate (100 ms) × 2 = 200 ms.
        assert_eq!(h.cad_for(mode, Some(v6("2001:db8::dead"))), ms(200));
    }

    #[test]
    fn outcome_cache_expires() {
        let h = HistoryStore::new();
        let name = Name::parse("www.example.com").unwrap();
        h.record_outcome(SimTime::ZERO, name.clone(), v6("2001:db8::1"), ms(600_000));
        assert_eq!(
            h.cached_outcome(SimTime::from_secs(599), &name),
            Some(v6("2001:db8::1"))
        );
        assert_eq!(h.cached_outcome(SimTime::from_secs(601), &name), None);
    }

    #[test]
    fn outcome_invalidation() {
        let h = HistoryStore::new();
        let name = Name::parse("x.example").unwrap();
        h.record_outcome(SimTime::ZERO, name.clone(), v4("192.0.2.1"), ms(1000));
        h.invalidate_outcome(&name);
        assert_eq!(h.cached_outcome(SimTime::ZERO, &name), None);
    }

    #[test]
    fn family_share() {
        let h = HistoryStore::new();
        h.record_outcome(
            SimTime::ZERO,
            Name::parse("a.example").unwrap(),
            v6("2001:db8::1"),
            ms(1000),
        );
        h.record_outcome(
            SimTime::ZERO,
            Name::parse("b.example").unwrap(),
            v4("192.0.2.1"),
            ms(1000),
        );
        assert!((h.outcome_family_share(Family::V6) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clear_resets_everything() {
        let h = HistoryStore::new();
        h.record_rtt(v4("192.0.2.1"), ms(10));
        h.record_outcome(
            SimTime::ZERO,
            Name::parse("a.example").unwrap(),
            v4("192.0.2.1"),
            ms(1000),
        );
        h.clear();
        assert_eq!(h.srtt(v4("192.0.2.1")), None);
        assert_eq!(h.aggregate_rtt(), None);
    }
}

//! Client-side measurement sessions: what happens when a user opens the
//! web tool in their browser.
//!
//! Everything is evaluated from the client side (§4.3(ii)): each tier's
//! endpoint returns the source address the server saw, so the page can
//! tell which family Happy Eyeballs picked per tier — without resetting
//! any state between fetches, exactly like the real deployment.

use lazyeye_authns::{DelayTarget, TestParams};
use lazyeye_clients::{Client, ClientProfile};
use lazyeye_net::{Family, Host};

use crate::deploy::{rd_apex, tier_domain, web_resolver_addr, TIERS_MS};

/// Per-tier outcome: the family observed in each repetition (None when the
/// fetch failed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierObservation {
    /// Configured tier delay (ms).
    pub delay_ms: u64,
    /// Family per repetition, from the echoed source address.
    pub families: Vec<Option<Family>>,
    /// Fetch duration per repetition in **virtual** microseconds (page
    /// `performance.now()` deltas in the real tool). This is what exposes
    /// the §5.2 wait-for-all-answers stall from the population side: a
    /// client that delays its first connection attempt until a withheld A
    /// answer arrives still connects over IPv6 — the family grid looks
    /// clean — but its fetch time tracks the configured DNS delay.
    pub fetch_us: Vec<u64>,
}

impl TierObservation {
    /// Largest fetch duration across this tier's repetitions (µs).
    pub fn max_fetch_us(&self) -> u64 {
        self.fetch_us.iter().copied().max().unwrap_or(0)
    }
    /// Majority family of this tier, if any fetch succeeded.
    pub fn majority(&self) -> Option<Family> {
        let v6 = self
            .families
            .iter()
            .filter(|f| **f == Some(Family::V6))
            .count();
        let v4 = self
            .families
            .iter()
            .filter(|f| **f == Some(Family::V4))
            .count();
        match (v6, v4) {
            (0, 0) => None,
            (a, b) if a >= b => Some(Family::V6),
            _ => Some(Family::V4),
        }
    }

    /// Whether the repetitions disagree (the Safari "inconsistency" of
    /// §5.1).
    pub fn is_mixed(&self) -> bool {
        let distinct: std::collections::HashSet<_> = self.families.iter().flatten().collect();
        distinct.len() > 1
    }
}

/// The result of a full CAD web session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WebSessionResult {
    /// Per-tier observations (ascending delay).
    pub tiers: Vec<TierObservation>,
}

impl WebSessionResult {
    /// The CAD interval the web tool reports: `(last majority-IPv6 delay,
    /// first majority-IPv4 delay]` — e.g. Safari's `(200, 250]` in the
    /// paper's App. Figure 4a.
    pub fn cad_interval(&self) -> (Option<u64>, Option<u64>) {
        let last_v6 = self
            .tiers
            .iter()
            .filter(|t| t.majority() == Some(Family::V6))
            .map(|t| t.delay_ms)
            .max();
        let first_v4 = self
            .tiers
            .iter()
            .filter(|t| t.majority() == Some(Family::V4))
            .map(|t| t.delay_ms)
            .min();
        (last_v6, first_v4)
    }

    /// Number of tiers with mixed (inconsistent) repetitions.
    pub fn mixed_tiers(&self) -> usize {
        self.tiers.iter().filter(|t| t.is_mixed()).count()
    }

    /// ASCII grid like the web tool's result page: one row per tier, one
    /// cell per repetition (`6`, `4` or `x`).
    pub fn grid(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for t in &self.tiers {
            let cells: String = t
                .families
                .iter()
                .map(|f| match f {
                    Some(Family::V6) => '6',
                    Some(Family::V4) => '4',
                    None => 'x',
                })
                .collect();
            let _ = writeln!(out, "{:>5} ms  {}", t.delay_ms, cells);
        }
        out
    }
}

fn family_of_response(fetched: &lazyeye_clients::FetchResult) -> Option<Family> {
    fetched
        .response
        .as_ref()
        .filter(|r| r.status == 200)
        .and_then(|r| r.text().parse::<std::net::IpAddr>().ok())
        .map(Family::of)
}

/// Runs a CAD web session: the client visits every tier domain
/// `repetitions` times. Client state persists across fetches (no reset —
/// this is one browser visiting one page), so history-based CADs drift
/// exactly as the paper observed for Safari in the wild.
pub async fn cad_session(
    client_host: Host,
    profile: ClientProfile,
    repetitions: u32,
) -> WebSessionResult {
    let client = Client::new(profile, client_host, vec![web_resolver_addr()]);
    let mut tiers = Vec::new();
    for &ms in TIERS_MS.iter() {
        let mut families = Vec::new();
        let mut fetch_us = Vec::new();
        for _rep in 0..repetitions {
            // Each repetition is a fresh page visit: the HE outcome cache
            // does not pin it, but RTT history carries over.
            client.new_page_visit();
            let started_us = lazyeye_sim::now().as_nanos() / 1_000;
            let fetched = client.fetch(&tier_domain(ms), 80, "/ip").await;
            fetch_us.push(lazyeye_sim::now().as_nanos() / 1_000 - started_us);
            families.push(family_of_response(&fetched));
        }
        tiers.push(TierObservation {
            delay_ms: ms,
            families,
            fetch_us,
        });
    }
    WebSessionResult { tiers }
}

/// Runs an RD web session: per DNS-delay tier, the client fetches a
/// parameter-encoded name whose AAAA (or A) answer is delayed.
pub async fn rd_session(
    client_host: Host,
    profile: ClientProfile,
    repetitions: u32,
    delayed: DelayTarget,
) -> WebSessionResult {
    let client = Client::new(profile, client_host, vec![web_resolver_addr()]);
    let mut tiers = Vec::new();
    for &ms in TIERS_MS.iter() {
        let mut families = Vec::new();
        let mut fetch_us = Vec::new();
        for rep in 0..repetitions {
            client.new_page_visit();
            let params = TestParams::delay(ms, delayed, format!("w{rep}"));
            let qname = lazyeye_dns::Name::parse(&format!(
                "{}.{}",
                params.to_label(),
                rd_apex().to_string().trim_end_matches('.')
            ))
            .unwrap();
            let started_us = lazyeye_sim::now().as_nanos() / 1_000;
            let fetched = client.fetch(&qname, 80, "/ip").await;
            fetch_us.push(lazyeye_sim::now().as_nanos() / 1_000 - started_us);
            families.push(family_of_response(&fetched));
        }
        tiers.push(TierObservation {
            delay_ms: ms,
            families,
            fetch_us,
        });
    }
    WebSessionResult { tiers }
}

/// A submitted measurement: what the tool stores when a user opts in
/// (user agent + AS attribution + results; cf. the paper's ethics
/// appendix).
#[derive(Clone, Debug)]
pub struct Submission {
    /// Raw user-agent string.
    pub user_agent: String,
    /// The client network's AS number (the field that made the iCPR
    /// attribution possible).
    pub asn: u32,
    /// CAD session result.
    pub result: WebSessionResult,
}

//! The web-based tool's server deployment (§4.3(ii)): 18 fixed delay
//! tiers between 0 and 5 s, each with dedicated IPv4/IPv6 addresses and a
//! dedicated domain, IPv6 shaped per tier, and HTTP endpoints that return
//! the client's source address.

use std::net::{IpAddr, SocketAddr};
use std::rc::Rc;

use lazyeye_authns::{serve as serve_dns, AuthConfig, AuthServer, TestDomain};
use lazyeye_clients::http::{serve_http, Handler, HttpRequest, HttpResponse};
use lazyeye_dns::{Name, Zone, ZoneSet};
use lazyeye_net::{Host, IpPrefix, Netem, NetemRule, Network};
use lazyeye_sim::{spawn, spawn_detached, Sim};
use std::time::Duration;

/// The web tool's fixed delay tiers (ms): 18 values between 0 and 5 s, as
/// in the paper ("a fixed set of 18 delays between 0 and 5 s").
pub const TIERS_MS: [u64; 18] = [
    0, 50, 100, 150, 200, 250, 300, 350, 400, 500, 750, 1000, 1250, 1500, 2000, 3000, 4000, 5000,
];

/// Emulated real-world network conditions between the user and the
/// deployment (the web tool measures through actual networks, unlike the
/// clean local testbed).
#[derive(Clone, Copy, Debug)]
pub struct WebConditions {
    /// Base one-way propagation delay.
    pub base_delay: Duration,
    /// Uniform jitter applied to every packet.
    pub jitter: Duration,
}

impl Default for WebConditions {
    fn default() -> Self {
        WebConditions {
            base_delay: Duration::from_millis(8),
            jitter: Duration::from_millis(3),
        }
    }
}

/// A deployed web tool instance.
pub struct WebToolDeployment {
    /// The simulation.
    pub sim: Sim,
    /// The fabric.
    pub net: Network,
    /// The deployment host (carries all tier addresses).
    pub server: Host,
    /// The user's machine.
    pub client: Host,
    /// Per-tier (delay_ms, v4 address, v6 address, domain).
    pub tiers: Vec<(u64, IpAddr, IpAddr, Name)>,
}

/// The tier's IPv4 address.
pub fn tier_v4(i: usize) -> IpAddr {
    format!("198.51.100.{}", i + 1).parse().unwrap()
}

/// The tier's IPv6 address.
pub fn tier_v6(i: usize) -> IpAddr {
    format!("2001:db8:77::{:x}", i + 1).parse().unwrap()
}

/// The tier's dedicated domain (`d<ms>.wt.test`).
pub fn tier_domain(delay_ms: u64) -> Name {
    Name::parse(&format!("d{delay_ms}.wt.test")).unwrap()
}

/// The resolver address the web tool's clients use.
pub fn web_resolver_addr() -> SocketAddr {
    SocketAddr::new("198.51.100.53".parse().unwrap(), 53)
}

/// The RD test domain apex served by the deployment.
pub fn rd_apex() -> Name {
    Name::parse("rd.wt.test").unwrap()
}

/// Deploys the web tool: DNS for every tier domain, shaped per-address
/// IPv6 delays, HTTP on every address answering `/ip` with the source
/// address, and the RD test domain (parameter-encoded names resolving to
/// the tier-0 addresses).
pub fn deploy(seed: u64, conditions: WebConditions) -> WebToolDeployment {
    let sim = lazyeye_sim::pooled(seed);
    let net = Network::new();

    let mut server_builder = net
        .host("webtool")
        .v4("198.51.100.53")
        .v6("2001:db8:77::53");
    for i in 0..TIERS_MS.len() {
        server_builder = server_builder.addr(tier_v4(i)).addr(tier_v6(i));
    }
    let server = server_builder.build();
    let client = net
        .host("user")
        .v4("203.0.113.77")
        .v6("2001:db8:aaaa::77")
        .build();

    // Real-world-ish conditions on the user's uplink.
    client.add_egress(NetemRule::all(
        Netem::delay(conditions.base_delay).with_jitter(conditions.jitter),
    ));
    client.add_ingress(NetemRule::all(
        Netem::delay(conditions.base_delay).with_jitter(conditions.jitter),
    ));

    // Per-tier IPv6 shaping: delay traffic *from* the tier's v6 address.
    for (i, &ms) in TIERS_MS.iter().enumerate() {
        if ms > 0 {
            server.add_egress(
                NetemRule::family(lazyeye_net::Family::V6, Netem::delay_ms(ms))
                    .with_src(IpPrefix::host(tier_v6(i))),
            );
        }
    }

    // DNS: one domain per tier + the RD test domain.
    let mut zone = Zone::new(Name::parse("wt.test").unwrap());
    let mut tiers = Vec::new();
    for (i, &ms) in TIERS_MS.iter().enumerate() {
        let domain = tier_domain(ms);
        let (IpAddr::V4(v4), IpAddr::V6(v6)) = (tier_v4(i), tier_v6(i)) else {
            unreachable!()
        };
        zone.a(&domain, v4, 60);
        zone.aaaa(&domain, v6, 60);
        tiers.push((ms, tier_v4(i), tier_v6(i), domain));
    }
    let mut zones = ZoneSet::new();
    zones.add(zone);
    let auth = AuthServer::new(AuthConfig {
        zones,
        test_domains: vec![TestDomain {
            apex: rd_apex(),
            v4: match tier_v4(0) {
                IpAddr::V4(a) => vec![a],
                _ => unreachable!(),
            },
            v6: match tier_v6(0) {
                IpAddr::V6(a) => vec![a],
                _ => unreachable!(),
            },
            ttl: 60,
        }],
        ..AuthConfig::default()
    });

    sim.enter(|| {
        spawn_detached(serve_dns(server.udp_bind_any(53).unwrap(), auth));
        let listener = server.tcp_listen_any(80).unwrap();
        let handler: Handler =
            Rc::new(
                |req: &HttpRequest, peer: SocketAddr| match req.path.as_str() {
                    "/ip" => HttpResponse::ok(format!("{}", peer.ip())),
                    "/ua" => HttpResponse::ok(req.header("user-agent").unwrap_or("").to_string()),
                    _ => HttpResponse::not_found(),
                },
            );
        spawn(serve_http(listener, handler));
    });

    WebToolDeployment {
        sim,
        net,
        server,
        client,
        tiers,
    }
}

impl WebToolDeployment {
    /// Runs a CAD session for one client profile and returns the result.
    pub fn run_cad_session(
        &mut self,
        profile: &lazyeye_clients::ClientProfile,
        repetitions: u32,
    ) -> crate::session::WebSessionResult {
        let host = self.client.clone();
        let profile = profile.clone();
        self.sim
            .block_on(async move { crate::session::cad_session(host, profile, repetitions).await })
    }

    /// Runs an RD session (delaying `delayed` answers) for one profile.
    pub fn run_rd_session(
        &mut self,
        profile: &lazyeye_clients::ClientProfile,
        repetitions: u32,
        delayed: lazyeye_authns::DelayTarget,
    ) -> crate::session::WebSessionResult {
        let host = self.client.clone();
        let profile = profile.clone();
        self.sim.block_on(async move {
            crate::session::rd_session(host, profile, repetitions, delayed).await
        })
    }

    /// Runs the campaign over a population of profiles, producing
    /// submissions (the Table 5 inventory source).
    pub fn run_campaign(
        &mut self,
        population: &[lazyeye_clients::ClientProfile],
        repetitions: u32,
    ) -> Vec<crate::session::Submission> {
        let mut out = Vec::new();
        for (i, profile) in population.iter().enumerate() {
            let result = self.run_cad_session(profile, repetitions);
            out.push(crate::session::Submission {
                user_agent: profile.user_agent(),
                asn: 64500 + (i as u32 % 7), // documentation-range ASNs
                result,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_tiers_up_to_5s() {
        assert_eq!(TIERS_MS.len(), 18);
        assert_eq!(TIERS_MS[0], 0);
        assert_eq!(*TIERS_MS.last().unwrap(), 5000);
        let mut sorted = TIERS_MS;
        sorted.sort_unstable();
        assert_eq!(sorted, TIERS_MS, "tiers ascend");
    }

    #[test]
    fn deployment_addresses_are_distinct() {
        let d = deploy(1, WebConditions::default());
        let mut seen = std::collections::HashSet::new();
        for (_, v4, v6, _) in &d.tiers {
            assert!(seen.insert(*v4));
            assert!(seen.insert(*v6));
        }
        assert_eq!(d.tiers.len(), 18);
    }

    #[test]
    fn tier_domains_resolve_to_tier_addresses() {
        let mut d = deploy(2, WebConditions::default());
        let client = d.client.clone();
        let (a, aaaa) = d.sim.block_on(async move {
            let sock = client.udp_bind_any(0).unwrap();
            let q = lazyeye_dns::Message::query(1, tier_domain(250), lazyeye_dns::RrType::A);
            sock.send_to(q.encode().into(), web_resolver_addr())
                .unwrap();
            let (p, _) = sock.recv_from().await.unwrap();
            let a = lazyeye_dns::Message::decode(&p).unwrap();
            let q6 = lazyeye_dns::Message::query(2, tier_domain(250), lazyeye_dns::RrType::Aaaa);
            sock.send_to(q6.encode().into(), web_resolver_addr())
                .unwrap();
            let (p6, _) = sock.recv_from().await.unwrap();
            (a, lazyeye_dns::Message::decode(&p6).unwrap())
        });
        assert_eq!(a.answers.len(), 1);
        assert_eq!(aaaa.answers.len(), 1);
    }
}

//! # lazyeye-webtool — the web-based Happy Eyeballs testing tool
//!
//! The paper's second measurement setup (§4.3(ii)), rebuilt on the
//! simulator: a deployment with 18 fixed delay tiers (0–5 s), dedicated
//! dual-stack addresses and domains per tier, per-address IPv6 shaping and
//! HTTP endpoints echoing the client's source address. Measurement
//! sessions are evaluated purely client-side; client state persists across
//! fetches within a session (no reset is possible on the public web),
//! which is exactly what exposes Safari's dynamic, history-driven CAD.
//!
//! The CAD can only be bracketed to an interval here — e.g. Safari's
//! `CAD ∈ (200, 250]` in the paper's App. Figure 4a — which is the
//! fundamental resolution limit of the web-based method the paper
//! discusses.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod deploy;
mod resolver_check;
mod session;

pub use deploy::{
    deploy, rd_apex, tier_domain, tier_v4, tier_v6, web_resolver_addr, WebConditions,
    WebToolDeployment, TIERS_MS,
};
pub use resolver_check::{check_resolver, ResolverCheckResult, ResolverStack};
pub use session::{cad_session, rd_session, Submission, TierObservation, WebSessionResult};

#[cfg(test)]
mod tests {
    use super::*;
    use lazyeye_authns::DelayTarget;
    use lazyeye_clients::{figure2_clients, safari_clients, table5_population, ua};
    use lazyeye_net::Family;

    fn chrome() -> lazyeye_clients::ClientProfile {
        figure2_clients()
            .into_iter()
            .find(|c| c.name == "Chrome" && c.version == "130.0")
            .unwrap()
    }

    fn safari_desktop() -> lazyeye_clients::ClientProfile {
        safari_clients().into_iter().find(|c| !c.mobile).unwrap()
    }

    #[test]
    fn chromium_web_interval_brackets_300ms() {
        let mut d = deploy(1, WebConditions::default());
        let result = d.run_cad_session(&chrome(), 3);
        let (last_v6, first_v4) = result.cad_interval();
        // On a real path the handshake pays ~RTT on top of the configured
        // tier delay, so the tier matching the CAD exactly is a race tie:
        // the web tool brackets Chromium's 300 ms CAD with neighbouring
        // tiers — the interval semantics of the paper's App. Figure 4a.
        let last_v6 = last_v6.unwrap();
        let first_v4 = first_v4.unwrap();
        assert!(
            (250..=300).contains(&last_v6) && (300..=350).contains(&first_v4) && last_v6 < first_v4,
            "interval ({last_v6}, {first_v4}] must bracket 300 ms; grid:\n{}",
            result.grid()
        );
    }

    #[test]
    fn safari_web_interval_is_dynamic_and_inconsistent() {
        let mut d = deploy(2, WebConditions::default());
        let result = d.run_cad_session(&safari_desktop(), 5);
        let (last_v6, first_v4) = result.cad_interval();
        // Fresh state starts at a 2 s CAD, but history from early tiers
        // drags the dynamic CAD down — the web interval lands well below
        // the local testbed's 2 s and repetitions disagree (mixed tiers),
        // the paper's §5.1 Safari finding.
        assert!(first_v4.is_some(), "grid:\n{}", result.grid());
        assert!(
            last_v6.unwrap() < 2000,
            "dynamic CAD < fresh-state 2 s, got {last_v6:?}; grid:\n{}",
            result.grid()
        );
        // Whether a specific deployment seed shows tier disagreement is a
        // coin-flip sequence; the paper's claim is that *some* repetitions
        // disagree, so scan a handful of seeds for the effect.
        let mixed_somewhere = (2..10).any(|seed| {
            let mut d = deploy(seed, WebConditions::default());
            d.run_cad_session(&safari_desktop(), 5).mixed_tiers() >= 1
        });
        assert!(mixed_somewhere, "Safari shows inconsistent tiers");
    }

    #[test]
    fn safari_cad_bracket_drifts_as_state_persists_between_fetches() {
        // Within one session the client is never reset: every fetch adds
        // RTT history, and Safari's CAD is a function of that history. So
        // the per-repetition switchover tier must *drift across the
        // session* — the first-IPv4 tier seen by later repetitions (more
        // history) differs from the first repetition's — and not just
        // flip at one boundary tier.
        let last_v6_of_rep = |result: &WebSessionResult, rep: usize| {
            result
                .tiers
                .iter()
                .filter(|t| t.families.get(rep).copied().flatten() == Some(Family::V6))
                .map(|t| t.delay_ms)
                .max()
        };
        let tier_pos = |ms: u64| TIERS_MS.iter().position(|&t| t == ms).unwrap();
        let drifted = (1..10).any(|seed| {
            let mut d = deploy(seed, WebConditions::default());
            let result = d.run_cad_session(&safari_desktop(), 3);
            match (last_v6_of_rep(&result, 0), last_v6_of_rep(&result, 2)) {
                (Some(a), Some(b)) => tier_pos(a).abs_diff(tier_pos(b)) > 1,
                _ => false,
            }
        });
        assert!(
            drifted,
            "Safari's per-repetition CAD bracket drifts beyond boundary flips"
        );

        // A fixed-CAD client shows no such drift under the same seeds:
        // whatever history accumulates, the bracket stays within one
        // boundary tier of the configured 300 ms.
        for seed in 1..10 {
            let mut d = deploy(seed, WebConditions::default());
            let result = d.run_cad_session(&chrome(), 3);
            if let (Some(a), Some(b)) = (last_v6_of_rep(&result, 0), last_v6_of_rep(&result, 2)) {
                assert!(
                    tier_pos(a).abs_diff(tier_pos(b)) <= 1,
                    "fixed CAD must not drift (seed {seed}): rep0 {a} ms vs rep2 {b} ms\n{}",
                    result.grid()
                );
            }
        }
    }

    #[test]
    fn chromium_web_results_are_consistent() {
        let mut d = deploy(3, WebConditions::default());
        let result = d.run_cad_session(&chrome(), 5);
        // Fixed-CAD clients show at most a couple of boundary-tier flips.
        assert!(
            result.mixed_tiers() <= 2,
            "Chromium is consistent; grid:\n{}",
            result.grid()
        );
    }

    #[test]
    fn rd_web_session_shows_safari_rd_and_chromium_stall() {
        // Delay the AAAA answer: Safari switches to v4 past its 50 ms RD;
        // Chromium waits for the AAAA answer (stall) and still uses v6.
        let mut d = deploy(4, WebConditions::default());
        let safari = d.run_rd_session(&safari_desktop(), 3, DelayTarget::Aaaa);
        let (s_last_v6, s_first_v4) = safari.cad_interval();
        assert!(
            s_first_v4.unwrap() <= 100,
            "Safari falls to v4 once AAAA misses the 50 ms RD; grid:\n{}",
            safari.grid()
        );
        let _ = s_last_v6;

        let mut d2 = deploy(5, WebConditions::default());
        let chromium = d2.run_rd_session(&chrome(), 3, DelayTarget::Aaaa);
        let (c_last_v6, c_first_v4) = chromium.cad_interval();
        // Chromium has no RD: it waits out the AAAA delay and keeps using
        // IPv6 — until the delay reaches the stub resolver's 5 s timeout,
        // at which point (and only then) IPv4 is used. That is the §5.2
        // "delegation of timeouts to resolvers" in one grid.
        assert!(
            c_last_v6.unwrap() >= 4000,
            "Chromium keeps v6 through multi-second AAAA delays; grid:\n{}",
            chromium.grid()
        );
        assert!(
            c_first_v4.is_none() || c_first_v4.unwrap() >= 5000,
            "IPv4 only once the resolver timeout is hit; grid:\n{}",
            chromium.grid()
        );
    }

    #[test]
    fn campaign_produces_parsable_submissions() {
        let mut d = deploy(6, WebConditions::default());
        let population: Vec<_> = table5_population().into_iter().take(4).collect();
        let subs = d.run_campaign(&population, 1);
        assert_eq!(subs.len(), 4);
        for (sub, profile) in subs.iter().zip(&population) {
            let parsed = ua::parse_user_agent(&sub.user_agent);
            assert_eq!(parsed.browser, profile.name);
            assert_eq!(parsed.os_name, profile.os);
            assert!(!sub.result.tiers.is_empty());
        }
    }

    #[test]
    fn tier_majority_and_mixed() {
        let t = TierObservation {
            delay_ms: 100,
            families: vec![Some(Family::V6), Some(Family::V4), Some(Family::V6)],
            fetch_us: vec![400, 90_000, 700],
        };
        assert_eq!(t.majority(), Some(Family::V6));
        assert!(t.is_mixed());
        assert_eq!(t.max_fetch_us(), 90_000);
        let clean = TierObservation {
            delay_ms: 100,
            families: vec![Some(Family::V4); 3],
            fetch_us: Vec::new(),
        };
        assert!(!clean.is_mixed());
        assert_eq!(clean.max_fetch_us(), 0);
        let dead = TierObservation {
            delay_ms: 100,
            families: vec![None, None],
            fetch_us: vec![5_000_000, 5_000_000],
        };
        assert_eq!(dead.majority(), None);
    }

    #[test]
    fn delayed_a_session_exposes_the_stall_only_through_timing() {
        // Delay the A answer: wait-for-all-answers clients (Chromium)
        // postpone their first connection attempt until it arrives, then
        // still connect over IPv6 — so the family grid alone cannot show
        // the §5.2 stall. The per-fetch timing can: fetch duration tracks
        // the configured DNS delay on the stalled tiers.
        let mut d = deploy(7, WebConditions::default());
        let chromium = d.run_rd_session(&chrome(), 2, DelayTarget::A);
        let stalled = chromium
            .tiers
            .iter()
            .filter(|t| t.delay_ms >= 2000 && t.delay_ms < 5000)
            .all(|t| t.majority() == Some(Family::V6) && t.max_fetch_us() >= t.delay_ms * 900);
        assert!(stalled, "grid:\n{}", chromium.grid());

        // Safari arms a 50 ms resolution delay instead: once the A answer
        // misses it, the fetch proceeds over IPv6 without waiting.
        let mut d2 = deploy(8, WebConditions::default());
        let safari = d2.run_rd_session(&safari_desktop(), 2, DelayTarget::A);
        let waited = safari
            .tiers
            .iter()
            .filter(|t| t.delay_ms >= 2000 && t.delay_ms < 5000)
            .any(|t| t.max_fetch_us() >= t.delay_ms * 900);
        assert!(!waited, "Safari must not stall on delayed A answers");
    }
}

//! The web tool's resolver check: "we provide a web-based testing tool
//! that allows users to check their configured resolver" (§5.3).
//!
//! The tool serves a zone whose delegation is **IPv6-only** (the NS name
//! has only AAAA glue, and the authoritative server has no IPv4 address).
//! A user's resolver that cannot walk IPv6-only delegations — Hurricane
//! Electric, Lumen, Dyn, G-Core in the paper's Table 4 — fails this
//! resolution; capable resolvers answer. The user's browser only needs to
//! fetch one name and look at the outcome.

use std::net::IpAddr;
use std::rc::Rc;
use std::time::Duration;

use lazyeye_authns::{serve as serve_dns, AuthConfig, AuthServer};
use lazyeye_dns::{Name, RrType, Zone, ZoneSet};
use lazyeye_resolver::{
    serve_recursive, AnswerOutcome, RecursiveConfig, RecursiveResolver, SelectionPolicy,
    StubConfig, StubResolver,
};
use lazyeye_sim::{spawn, spawn_detached};

/// What the user's resolver turned out to support.
#[derive(Clone, Debug, PartialEq)]
pub struct ResolverCheckResult {
    /// Did the IPv6-only-delegated name resolve at all?
    pub ipv6_only_capable: bool,
    /// How long the resolution took (virtual time).
    pub resolution_time: Duration,
    /// Did the resolver send the AAAA query for the NS name before the A
    /// query? (`None` when neither was observed — glue-only paths.)
    pub aaaa_first: Option<bool>,
}

/// The network stack of the user's recursive resolver.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResolverStack {
    /// Dual-stack resolver host (most public services).
    DualStack,
    /// IPv4-only resolver host (the paper's four excluded services).
    V4Only,
}

/// Builds the check topology and runs one resolver check: a user behind a
/// recursive resolver (with the given stack and policy) resolving a name
/// under an IPv6-only delegation served by the tool.
pub fn check_resolver(
    stack: ResolverStack,
    policy: SelectionPolicy,
    seed: u64,
) -> ResolverCheckResult {
    let mut sim = lazyeye_sim::pooled(seed);
    let net = lazyeye_net::Network::new();
    let root = net
        .host("root")
        .v4("198.41.0.4")
        .v6("2001:503:ba3e::2:30")
        .build();
    // The IPv6-only authoritative server for the check zone.
    let v6ns = net.host("v6only-ns").v6("2001:db8:66::53").build();
    let resolver_host = match stack {
        ResolverStack::DualStack => net
            .host("resolver")
            .v4("192.0.2.10")
            .v6("2001:db8::10")
            .build(),
        ResolverStack::V4Only => net.host("resolver").v4("192.0.2.10").build(),
    };
    let user = net
        .host("user")
        .v4("192.0.2.200")
        .v6("2001:db8::200")
        .build();

    // Root: delegate v6check.test with ONLY AAAA glue.
    let mut root_zone = Zone::new(Name::root());
    root_zone.ns(
        &Name::parse("v6check.test").unwrap(),
        &Name::parse("ns1.v6check.test").unwrap(),
        3600,
    );
    root_zone.aaaa(
        &Name::parse("ns1.v6check.test").unwrap(),
        "2001:db8:66::53".parse().unwrap(),
        3600,
    );
    let mut root_zones = ZoneSet::new();
    root_zones.add(root_zone);

    let mut zone = Zone::new(Name::parse("v6check.test").unwrap());
    zone.a(
        &Name::parse("www.v6check.test").unwrap(),
        "203.0.113.66".parse().unwrap(),
        60,
    );
    let mut zones = ZoneSet::new();
    zones.add(zone);

    sim.enter(|| {
        spawn_detached(serve_dns(
            root.udp_bind_any(53).unwrap(),
            AuthServer::new(AuthConfig {
                zones: root_zones,
                ..AuthConfig::default()
            }),
        ));
        spawn_detached(serve_dns(
            v6ns.udp_bind_any(53).unwrap(),
            AuthServer::new(AuthConfig {
                zones,
                ..AuthConfig::default()
            }),
        ));
        let mut rcfg = RecursiveConfig::new(vec![(
            Name::parse("ns.root").unwrap(),
            vec![
                "198.41.0.4".parse::<IpAddr>().unwrap(),
                "2001:503:ba3e::2:30".parse::<IpAddr>().unwrap(),
            ],
        )]);
        rcfg.policy = policy;
        let resolver = RecursiveResolver::new(resolver_host.clone(), rcfg);
        spawn(serve_recursive(
            resolver_host.udp_bind_any(53).unwrap(),
            resolver,
        ));
    });

    let stub = Rc::new(StubResolver::new(
        user,
        StubConfig {
            servers: vec![std::net::SocketAddr::new("192.0.2.10".parse().unwrap(), 53)],
            attempt_timeout: Duration::from_secs(3),
            retries: 0,
            ..StubConfig::default()
        },
    ));
    let (outcome, elapsed) = {
        let stub = Rc::clone(&stub);
        sim.block_on(async move {
            let t0 = lazyeye_sim::now();
            let ans = stub
                .query_one(&Name::parse("www.v6check.test").unwrap(), RrType::A)
                .await;
            (ans.outcome, lazyeye_sim::now() - t0)
        })
    };

    // AAAA-vs-A ordering of the resolver towards the root (for the NS
    // name) — observable in the root's capture.
    let mut aaaa_pos = None;
    let mut a_pos = None;
    for (i, rec) in root.capture().udp_rx().enumerate() {
        if let Ok(msg) = lazyeye_dns::Message::decode(&rec.payload) {
            if let Some(q) = msg.question() {
                if q.name == Name::parse("ns1.v6check.test").unwrap() {
                    match q.qtype {
                        RrType::Aaaa if aaaa_pos.is_none() => aaaa_pos = Some(i),
                        RrType::A if a_pos.is_none() => a_pos = Some(i),
                        _ => {}
                    }
                }
            }
        }
    }
    let aaaa_first = match (aaaa_pos, a_pos) {
        (Some(x), Some(y)) => Some(x < y),
        (Some(_), None) => Some(true),
        (None, Some(_)) => Some(false),
        (None, None) => None,
    };

    ResolverCheckResult {
        ipv6_only_capable: outcome == AnswerOutcome::Ok,
        resolution_time: elapsed,
        aaaa_first,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_stack_resolver_passes_the_check() {
        let r = check_resolver(ResolverStack::DualStack, SelectionPolicy::default(), 1);
        assert!(r.ipv6_only_capable);
        assert!(r.resolution_time < Duration::from_secs(1));
    }

    #[test]
    fn v4_only_resolver_fails_the_check() {
        // Hurricane Electric / Lumen / Dyn / G-Core behaviour: no IPv6 on
        // the resolution path, so the IPv6-only delegation dead-ends.
        let r = check_resolver(ResolverStack::V4Only, SelectionPolicy::default(), 2);
        assert!(!r.ipv6_only_capable);
    }

    #[test]
    fn query_order_matches_policy() {
        use lazyeye_resolver::NsQueryStyle;
        let policy = SelectionPolicy {
            ns_query_style: NsQueryStyle::AaaaBeforeA,
            ..SelectionPolicy::default()
        };
        let r = check_resolver(ResolverStack::DualStack, policy, 3);
        // With dual-stack glue present the resolver may not need extra NS
        // address queries at all; when it does, AAAA leads.
        assert!(r.aaaa_first.unwrap_or(true));
    }
}

//! Small future combinators: [`race`], [`join2`], [`join_all`], [`Either`].
//!
//! These cover what the Happy Eyeballs engine needs (racing connection
//! attempts against delays, fanning out parallel DNS queries) without
//! pulling in the `futures` crate.
//!
//! [`race`] and [`join2`] pin their operands on the stack of their own
//! async state machine (`std::pin::pin!`), so building one costs zero
//! heap allocations — the engine builds one per state-machine step, and
//! the earlier `Box::pin`-per-operand layout made the allocator a hot
//! path. Only [`join_all`] still boxes: a dynamic number of `!Unpin`
//! futures needs one stable heap slot each.

use std::future::{poll_fn, Future};
use std::pin::{pin, Pin};
use std::task::{Context, Poll};

/// Result of [`race`]: which of the two futures finished first.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum Either<A, B> {
    /// The left future won.
    Left(A),
    /// The right future won.
    Right(B),
}

impl<A, B> Either<A, B> {
    /// `true` if the left future won.
    pub fn is_left(&self) -> bool {
        matches!(self, Either::Left(_))
    }

    /// `true` if the right future won.
    pub fn is_right(&self) -> bool {
        matches!(self, Either::Right(_))
    }
}

/// Races two futures; the loser is dropped (cancelled). The left future is
/// polled first on every wake, so ties resolve deterministically to `Left`.
pub async fn race<A: Future, B: Future>(a: A, b: B) -> Either<A::Output, B::Output> {
    let mut a = pin!(a);
    let mut b = pin!(b);
    poll_fn(move |cx| {
        if let Poll::Ready(v) = a.as_mut().poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = b.as_mut().poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    })
    .await
}

/// Awaits both futures concurrently, returning both outputs. The left
/// future is polled first on every wake.
pub async fn join2<A: Future, B: Future>(a: A, b: B) -> (A::Output, B::Output) {
    let mut a = pin!(a);
    let mut b = pin!(b);
    let mut ra = None;
    let mut rb = None;
    poll_fn(move |cx| {
        if ra.is_none() {
            if let Poll::Ready(v) = a.as_mut().poll(cx) {
                ra = Some(v);
            }
        }
        if rb.is_none() {
            if let Poll::Ready(v) = b.as_mut().poll(cx) {
                rb = Some(v);
            }
        }
        if ra.is_some() && rb.is_some() {
            Poll::Ready((ra.take().unwrap(), rb.take().unwrap()))
        } else {
            Poll::Pending
        }
    })
    .await
}

/// Future returned by [`join_all`].
pub struct JoinAll<F: Future> {
    futs: Vec<Option<Pin<Box<F>>>>,
    outs: Vec<Option<F::Output>>,
}

// Sound: the stored outputs are never pinned-projected; all polling goes
// through the `Pin<Box<_>>` slots, which are `Unpin` regardless of `F`.
impl<F: Future> Unpin for JoinAll<F> {}

impl<F: Future> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut all_done = true;
        for (slot, out) in this.futs.iter_mut().zip(this.outs.iter_mut()) {
            if let Some(fut) = slot {
                match fut.as_mut().poll(cx) {
                    Poll::Ready(v) => {
                        *out = Some(v);
                        *slot = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(this.outs.iter_mut().map(|o| o.take().unwrap()).collect())
        } else {
            Poll::Pending
        }
    }
}

/// Awaits every future concurrently; outputs are returned in input order.
pub fn join_all<F: Future>(futs: impl IntoIterator<Item = F>) -> JoinAll<F> {
    let futs: Vec<_> = futs.into_iter().map(|f| Some(Box::pin(f))).collect();
    let outs = futs.iter().map(|_| None).collect();
    JoinAll { futs, outs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{now, Sim};
    use crate::timer::sleep;
    use std::time::Duration;

    #[test]
    fn race_picks_faster() {
        let mut sim = Sim::new(1);
        let r = sim.block_on(async {
            race(
                async {
                    sleep(Duration::from_millis(20)).await;
                    "slow"
                },
                async {
                    sleep(Duration::from_millis(5)).await;
                    "fast"
                },
            )
            .await
        });
        assert_eq!(r, Either::Right("fast"));
        assert_eq!(sim.now().as_millis(), 5);
    }

    #[test]
    fn race_tie_goes_left() {
        let mut sim = Sim::new(1);
        let r = sim.block_on(async {
            race(
                async {
                    sleep(Duration::from_millis(5)).await;
                    1
                },
                async {
                    sleep(Duration::from_millis(5)).await;
                    2
                },
            )
            .await
        });
        // Both become ready; the left timer fires first (registration order)
        // and the race resolves Left.
        assert_eq!(r, Either::Left(1));
    }

    #[test]
    fn join2_waits_for_both() {
        let mut sim = Sim::new(1);
        let (a, b) = sim.block_on(async {
            join2(
                async {
                    sleep(Duration::from_millis(30)).await;
                    now().as_millis()
                },
                async {
                    sleep(Duration::from_millis(10)).await;
                    now().as_millis()
                },
            )
            .await
        });
        assert_eq!((a, b), (30, 10));
        assert_eq!(sim.now().as_millis(), 30, "concurrent, not sequential");
    }

    #[test]
    fn join_all_preserves_order() {
        let mut sim = Sim::new(1);
        let outs = sim.block_on(async {
            join_all((0..5u64).map(|i| async move {
                sleep(Duration::from_millis(50 - i * 10)).await;
                i
            }))
            .await
        });
        assert_eq!(outs, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.now().as_millis(), 50);
    }

    #[test]
    fn join_all_empty() {
        let mut sim = Sim::new(1);
        let outs: Vec<u8> =
            sim.block_on(async { join_all(Vec::<std::future::Ready<u8>>::new()).await });
        assert!(outs.is_empty());
    }
}

//! A hierarchical timer wheel on virtual time.
//!
//! Replaces the old `BinaryHeap<TimerEntry>`-with-a-cloned-`Waker`-per-timer:
//! entries are 24-byte `Copy` records (`at`, `seq`, [`TaskId`]) bucketed by
//! deadline magnitude into [`LEVELS`] levels of 64 slots each. Level `l`
//! spans `64^(l+1)` ticks of `2^20` ns (≈ 1.05 ms), so level 0 covers
//! ≈ 67 ms, level 1 ≈ 4.3 s, … level 5 ≈ 2.3 years; anything further out
//! lands in a rarely-scanned overflow list.
//!
//! Virtual time makes the classic tick-driven cascade unnecessary: the
//! executor only ever asks for the *globally earliest* `(at, seq)` entry.
//! Each level keeps a 64-bit occupancy bitmap; the earliest candidate per
//! level is found by rotating the bitmap to the current slot cursor and
//! taking the first set bit, and the global winner is the `(at, seq)`
//! minimum of the per-level candidates. When the winner comes from a
//! coarse level, the rest of its slot cascades down to finer levels
//! relative to the new current tick — the classic boundary cascade, done
//! lazily at pop time instead of eagerly at every tick.
//!
//! Determinism contract (the executor's schedule depends on it): entries
//! pop in strict `(at, seq)` order, where `seq` is the registration
//! sequence number — same-deadline timers fire in registration order,
//! exactly like the old heap.

use crate::executor::TaskId;

/// log2 of the tick length in nanoseconds (2^20 ns ≈ 1.05 ms).
const TICK_SHIFT: u32 = 20;
/// Slots per level.
const SLOTS: usize = 64;
/// Bits consumed per level.
const LEVEL_BITS: u32 = 6;
/// Number of wheel levels before the overflow list takes over.
pub(crate) const LEVELS: usize = 6;

/// One armed timer: wakes `task` once virtual time reaches `at` ns.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct TimerEntry {
    /// Absolute deadline in nanoseconds.
    pub at: u64,
    /// Registration sequence number (same-instant FIFO order).
    pub seq: u64,
    /// The task to wake.
    pub task: TaskId,
}

impl TimerEntry {
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A slot's entries: a min-heap on `(at, seq)`, so a slot crowded with
/// same-bucket deadlines still pops in `O(log n)` like the old global
/// heap did (a linear min-scan would go quadratic on the spurious-wake
/// re-arm storms `join_all`-style futures produce).
type SlotHeap = std::collections::BinaryHeap<std::cmp::Reverse<TimerEntry>>;

/// The wheel. All operations are `O(LEVELS)` bitmap scans plus a scan of
/// one slot's entry list.
pub(crate) struct TimerWheel {
    /// Tick of the last popped deadline (monotonic, never ahead of `now`).
    cur_tick: u64,
    /// Next registration sequence number.
    seq: u64,
    /// Total armed entries (wheel + overflow).
    len: usize,
    /// Per-level slot occupancy.
    bitmaps: [u64; LEVELS],
    /// `LEVELS × 64` slots, flattened.
    slots: Vec<SlotHeap>,
    /// Deadlines beyond the wheel horizon (≈ 2.3 years of virtual time).
    overflow: Vec<TimerEntry>,
}

impl TimerWheel {
    pub fn new() -> TimerWheel {
        TimerWheel {
            cur_tick: 0,
            seq: 0,
            len: 0,
            bitmaps: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| SlotHeap::new()).collect(),
            overflow: Vec::new(),
        }
    }

    /// Empties the wheel, keeping every slot's allocation (arena reuse).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.bitmaps = [0; LEVELS];
        self.overflow.clear();
        self.cur_tick = 0;
        self.seq = 0;
        self.len = 0;
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arms a timer at absolute nanosecond deadline `at` (the caller clamps
    /// `at` to `now` first, so no entry is ever in the past). Returns the
    /// registration sequence number.
    pub fn insert(&mut self, at: u64, task: TaskId) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        let entry = TimerEntry { at, seq, task };
        self.place(entry);
        self.len += 1;
        seq
    }

    /// Buckets an entry relative to `cur_tick`.
    fn place(&mut self, entry: TimerEntry) {
        let tick = entry.at >> TICK_SHIFT;
        debug_assert!(tick >= self.cur_tick, "timer bucketed in the past");
        for level in 0..LEVELS {
            let shift = LEVEL_BITS * level as u32;
            if (tick >> shift) - (self.cur_tick >> shift) < SLOTS as u64 {
                let slot = ((tick >> shift) as usize) & (SLOTS - 1);
                self.slots[level * SLOTS + slot].push(std::cmp::Reverse(entry));
                self.bitmaps[level] |= 1u64 << slot;
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// The earliest occupied slot of `level`, walking from the slot the
    /// current tick maps to (entries never live in the "past" part of the
    /// ring, so the first set bit from the cursor is the minimum).
    fn earliest_slot(&self, level: usize) -> Option<usize> {
        let bitmap = self.bitmaps[level];
        if bitmap == 0 {
            return None;
        }
        let start = ((self.cur_tick >> (LEVEL_BITS * level as u32)) as usize) & (SLOTS - 1);
        let rotated = bitmap.rotate_right(start as u32);
        let dist = rotated.trailing_zeros() as usize;
        Some((start + dist) & (SLOTS - 1))
    }

    /// Index of the `(at, seq)`-minimum entry of a slice (overflow only —
    /// wheel slots are heaps with `O(1)` peeks).
    fn min_index(entries: &[TimerEntry]) -> usize {
        let mut best = 0;
        for (i, e) in entries.iter().enumerate().skip(1) {
            if e.key() < entries[best].key() {
                best = i;
            }
        }
        best
    }

    /// The deadline (ns) of the earliest armed timer, if any.
    #[cfg(test)]
    pub fn next_deadline(&self) -> Option<u64> {
        self.find_earliest().map(|(_, entry)| entry.at)
    }

    /// Pops the earliest entry if its deadline is `<= limit` (one scan for
    /// the executor's peek-then-pop step); otherwise reports why not.
    pub fn pop_earliest_before(&mut self, limit: u64) -> PopOutcome {
        match self.find_earliest() {
            None => PopOutcome::Empty,
            Some((_, entry)) if entry.at > limit => PopOutcome::Beyond,
            Some(found) => {
                self.remove_found(found);
                PopOutcome::Fired(found.1)
            }
        }
    }

    /// Locates the globally earliest entry: `(slot index or OVERFLOW,
    /// entry)`.
    fn find_earliest(&self) -> Option<(usize, TimerEntry)> {
        const OVERFLOW: usize = usize::MAX;
        let mut best: Option<(usize, TimerEntry)> = None;
        for level in 0..LEVELS {
            if let Some(slot) = self.earliest_slot(level) {
                let idx = level * SLOTS + slot;
                let entry = self.slots[idx].peek().expect("bitmap said occupied").0;
                if best.is_none_or(|(_, b)| entry.key() < b.key()) {
                    best = Some((idx, entry));
                }
            }
        }
        if !self.overflow.is_empty() {
            let entry = self.overflow[Self::min_index(&self.overflow)];
            if best.is_none_or(|(_, b)| entry.key() < b.key()) {
                best = Some((OVERFLOW, entry));
            }
        }
        best
    }

    /// Removes and returns the earliest entry, advancing the tick cursor
    /// to its deadline and cascading the remainder of a coarse-level slot
    /// (or the overflow list when it held the winner) down to finer
    /// levels.
    #[cfg(test)]
    pub fn pop_earliest(&mut self) -> Option<TimerEntry> {
        let found = self.find_earliest()?;
        self.remove_found(found);
        Some(found.1)
    }

    /// Removes a `find_earliest` result, advancing the cursor and
    /// cascading coarse-slot survivors.
    fn remove_found(&mut self, (slot_idx, entry): (usize, TimerEntry)) {
        const OVERFLOW: usize = usize::MAX;
        let tick = entry.at >> TICK_SHIFT;
        debug_assert!(tick >= self.cur_tick);
        let coarse = slot_idx == OVERFLOW || slot_idx >= SLOTS;
        self.cur_tick = tick;
        if slot_idx == OVERFLOW {
            // The horizon moved: anything now within it re-buckets.
            // (`place` may push far-out survivors back into
            // `self.overflow`, which `mem::take` left empty.)
            let mut rest = std::mem::take(&mut self.overflow);
            let i = Self::min_index(&rest);
            rest.swap_remove(i);
            for e in rest.drain(..) {
                self.place(e);
            }
        } else {
            self.slots[slot_idx].pop().expect("find_earliest peeked");
            if coarse {
                // Cascade the slot's survivors: relative to the new
                // cursor they fit finer levels (same 64^level bucket).
                let mut rest = std::mem::take(&mut self.slots[slot_idx]);
                self.bitmaps[slot_idx / SLOTS] &= !(1u64 << (slot_idx % SLOTS));
                for std::cmp::Reverse(e) in rest.drain() {
                    self.place(e);
                }
                self.slots[slot_idx] = rest;
            } else if self.slots[slot_idx].is_empty() {
                self.bitmaps[slot_idx / SLOTS] &= !(1u64 << (slot_idx % SLOTS));
            }
        }
        self.len -= 1;
    }
}

/// Result of [`TimerWheel::pop_earliest_before`].
pub(crate) enum PopOutcome {
    /// The earliest entry was due within the limit and has been removed.
    Fired(TimerEntry),
    /// The earliest armed deadline lies beyond the limit.
    Beyond,
    /// No timers are armed.
    Empty,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(n: u64) -> TaskId {
        TaskId::pack(n as u32, 0)
    }

    /// Drains the wheel, asserting global (at, seq) order.
    fn drain(wheel: &mut TimerWheel) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = wheel.pop_earliest() {
            out.push((e.at, e.seq));
        }
        assert!(wheel.is_empty());
        out
    }

    const TICK: u64 = 1 << TICK_SHIFT;

    #[test]
    fn pops_in_deadline_order_across_levels() {
        let mut w = TimerWheel::new();
        // Deadlines straddling level 0 (≤ 64 ticks), level 1 (≤ 64²) and
        // level 2, inserted shuffled.
        let deadlines = [
            5 * TICK,
            63 * TICK, // level-0 boundary
            64 * TICK, // first level-1 tick
            65 * TICK,
            (SLOTS as u64 * SLOTS as u64 - 1) * TICK, // level-1 boundary
            (SLOTS as u64 * SLOTS as u64) * TICK,     // first level-2 tick
            1,
            0,
        ];
        let mut shuffled = deadlines.to_vec();
        shuffled.reverse();
        for (i, &at) in shuffled.iter().enumerate() {
            w.insert(at, task(i as u64));
        }
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(at, _)| at).collect();
        let mut sorted = deadlines.to_vec();
        sorted.sort();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn same_deadline_fifo_via_seq() {
        let mut w = TimerWheel::new();
        for i in 0..10u64 {
            w.insert(7 * TICK + 3, task(i));
        }
        let seqs: Vec<u64> = drain(&mut w).into_iter().map(|(_, seq)| seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>(), "registration order");
    }

    #[test]
    fn sub_tick_deadlines_keep_exact_order() {
        // Multiple distinct nanosecond deadlines inside one 2^20 ns tick
        // share a slot but must still pop in exact (at, seq) order.
        let mut w = TimerWheel::new();
        w.insert(900, task(0));
        w.insert(100, task(1));
        w.insert(500, task(2));
        assert_eq!(
            drain(&mut w),
            vec![(100, 1), (500, 2), (900, 0)],
            "exact ns order within a tick"
        );
    }

    #[test]
    fn cascade_across_level_boundary_preserves_order() {
        let mut w = TimerWheel::new();
        // Two entries in the same level-1 slot (same 64-tick bucket):
        // popping the first cascades the second to level 0, where it must
        // still pop before a later level-1 entry.
        w.insert(100 * TICK, task(0));
        w.insert(101 * TICK, task(1));
        w.insert(200 * TICK, task(2));
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(at, _)| at).collect();
        assert_eq!(popped, vec![100 * TICK, 101 * TICK, 200 * TICK]);
    }

    #[test]
    fn fine_entry_inserted_after_cursor_advance_beats_coarse() {
        let mut w = TimerWheel::new();
        w.insert(64 * TICK, task(0)); // level 1 at cur_tick 0
        w.insert(10 * TICK, task(1)); // level 0
        assert_eq!(w.pop_earliest().unwrap().at, 10 * TICK);
        // Cursor is now at tick 10; a fresh level-0 entry *behind* the
        // level-1 one in ring position but *ahead* in time must lose.
        w.insert(70 * TICK, task(2)); // level 0 relative to tick 10
        let popped: Vec<u64> = drain(&mut w).into_iter().map(|(at, _)| at).collect();
        assert_eq!(popped, vec![64 * TICK, 70 * TICK]);
    }

    #[test]
    fn overflow_horizon_entries_come_back() {
        let mut w = TimerWheel::new();
        let far = (1u64 << (LEVEL_BITS as usize * LEVELS) as u32) * TICK + 17; // beyond level 5
        w.insert(far, task(0));
        w.insert(3 * TICK, task(1));
        assert_eq!(w.next_deadline(), Some(3 * TICK));
        assert_eq!(w.pop_earliest().unwrap().at, 3 * TICK);
        assert_eq!(w.pop_earliest().unwrap().at, far);
        assert!(w.pop_earliest().is_none());
    }

    #[test]
    fn clear_keeps_working_and_resets_seq() {
        let mut w = TimerWheel::new();
        w.insert(TICK, task(0));
        w.insert(2 * TICK, task(1));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
        let seq = w.insert(5 * TICK, task(2));
        assert_eq!(seq, 0, "sequence restarts after clear");
        assert_eq!(drain(&mut w), vec![(5 * TICK, 0)]);
    }

    #[test]
    fn interleaved_insert_pop_random_order() {
        // A light pseudo-random stress: all pops must come out globally
        // sorted by (at, seq) even with interleaved inserts.
        let mut w = TimerWheel::new();
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut pending: Vec<(u64, u64)> = Vec::new();
        let mut popped: Vec<(u64, u64)> = Vec::new();
        let mut floor = 0u64;
        for round in 0..200 {
            let at = floor + rng() % (100 * TICK * (1 + round % 7));
            let seq = w.insert(at, task(round));
            pending.push((at, seq));
            if round % 3 == 0 {
                let e = w.pop_earliest().unwrap();
                floor = e.at; // virtual time advances to the pop
                popped.push((e.at, e.seq));
                let i = pending.iter().position(|&p| p == (e.at, e.seq)).unwrap();
                pending.swap_remove(i);
            }
        }
        popped.extend(drain(&mut w));
        let mut sorted = popped.clone();
        sorted.sort();
        assert_eq!(popped, sorted, "global (at, seq) order");
    }
}

//! Timers on virtual time: [`sleep`], [`sleep_until`], [`timeout`].

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

use crate::executor::current;
use crate::time::SimTime;

/// Future returned by [`sleep`] / [`sleep_until`].
pub struct Sleep {
    deadline: SimTime,
    registered: bool,
}

impl Sleep {
    /// The instant at which this sleep completes.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let handle = current();
        if self.registered {
            // Even an already-expired sleep yields to the scheduler once:
            // a zero-duration sleep is the deterministic yield point, and
            // every other task ready at this instant runs before we
            // resume. The wheel entry armed on the first poll targets the
            // owning task and fires exactly at the (clamped) deadline, so
            // re-polls before then (spurious wakes, race siblings) arm
            // nothing — the old executor pushed a duplicate heap entry
            // per re-poll, whose only effect was a deduped no-op wake,
            // and whose cost compounded exponentially under `join_all`.
            return if handle.now() >= self.deadline {
                Poll::Ready(())
            } else {
                Poll::Pending
            };
        }
        handle.register_timer(self.deadline);
        self.registered = true;
        Poll::Pending
    }
}

/// Sleeps for `d` of virtual time. A zero-duration sleep still yields to the
/// scheduler once, making it a deterministic yield point.
pub fn sleep(d: Duration) -> Sleep {
    let deadline = current().now() + d;
    Sleep {
        deadline,
        registered: false,
    }
}

/// Sleeps until the given instant (completing immediately if it has passed).
pub fn sleep_until(deadline: SimTime) -> Sleep {
    Sleep {
        deadline,
        registered: false,
    }
}

/// Error returned by [`timeout`] when the inner future did not complete in
/// time.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline elapsed")
    }
}
impl std::error::Error for Elapsed {}

/// Awaits `fut` for at most `d` of virtual time. On timeout the inner future
/// is dropped (cancelling whatever it owned) and `Err(Elapsed)` is returned.
///
/// The deadline is `now() + d` at the moment `timeout` is *called* (not
/// first polled), matching the historical eager-`sleep` construction.
pub fn timeout<F: Future>(d: Duration, fut: F) -> impl Future<Output = Result<F::Output, Elapsed>> {
    timeout_at(current().now() + d, fut)
}

/// Awaits `fut` until the given instant; see [`timeout`].
///
/// The inner future is pinned on the stack of this combinator's own
/// state machine — no heap allocation per call. The inner future is
/// polled before the deadline on every wake, so an exact tie resolves
/// to the inner result.
pub async fn timeout_at<F: Future>(deadline: SimTime, fut: F) -> Result<F::Output, Elapsed> {
    let mut fut = std::pin::pin!(fut);
    let mut sleep = sleep_until(deadline);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = fut.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        match Pin::new(&mut sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
            Poll::Pending => Poll::Pending,
        }
    })
    .await
}

/// Yields to the scheduler once, letting every other ready task run before
/// this one resumes (at the same virtual instant).
pub async fn yield_now() {
    struct YieldNow(bool);
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldNow(false).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{now, spawn, Sim};

    #[test]
    fn sleep_zero_yields_once() {
        let mut sim = Sim::new(1);
        let order = sim.block_on(async {
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let l = log.clone();
            let h = spawn(async move {
                l.borrow_mut().push("spawned");
            });
            log.borrow_mut().push("before-yield");
            sleep(Duration::ZERO).await;
            log.borrow_mut().push("after-yield");
            h.await.unwrap();
            let entries = log.borrow().clone();
            entries
        });
        assert_eq!(order, vec!["before-yield", "spawned", "after-yield"]);
    }

    #[test]
    fn timeout_expires() {
        let mut sim = Sim::new(1);
        let r = sim.block_on(async {
            timeout(Duration::from_millis(50), sleep(Duration::from_millis(100))).await
        });
        assert_eq!(r, Err(Elapsed));
        assert_eq!(sim.now(), SimTime::from_millis(50));
    }

    #[test]
    fn timeout_passes_through() {
        let mut sim = Sim::new(1);
        let r = sim.block_on(async {
            timeout(Duration::from_millis(100), async {
                sleep(Duration::from_millis(10)).await;
                5
            })
            .await
        });
        assert_eq!(r, Ok(5));
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }

    #[test]
    fn timeout_at_absolute_deadline() {
        let mut sim = Sim::new(1);
        let r = sim.block_on(async {
            sleep(Duration::from_millis(30)).await;
            timeout_at(SimTime::from_millis(40), sleep(Duration::from_secs(1))).await
        });
        assert_eq!(r, Err(Elapsed));
        assert_eq!(sim.now(), SimTime::from_millis(40));
    }

    #[test]
    fn sleep_until_past_instant_is_immediate() {
        let mut sim = Sim::new(1);
        sim.block_on(async {
            sleep(Duration::from_millis(10)).await;
            let before = now();
            sleep_until(SimTime::from_millis(5)).await;
            assert_eq!(now(), before);
        });
    }

    #[test]
    fn nested_timeouts() {
        let mut sim = Sim::new(1);
        let r = sim.block_on(async {
            timeout(Duration::from_millis(200), async {
                timeout(Duration::from_millis(50), sleep(Duration::from_millis(500))).await
            })
            .await
        });
        assert_eq!(r, Ok(Err(Elapsed)));
        assert_eq!(sim.now(), SimTime::from_millis(50));
    }

    #[test]
    fn yield_now_is_same_instant() {
        let mut sim = Sim::new(1);
        sim.block_on(async {
            let t0 = now();
            yield_now().await;
            assert_eq!(now(), t0);
        });
    }
}

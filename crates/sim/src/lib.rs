//! # lazyeye-sim — deterministic virtual-time async runtime
//!
//! The foundation of the Lazy Eye Inspection testbed: a single-threaded
//! executor whose clock is *virtual*. Time only advances when every task has
//! gone to sleep, jumping straight to the next timer deadline. Consequences:
//!
//! * **Determinism** — identical seeds and programs yield bit-identical
//!   schedules, so every paper figure regenerates exactly.
//! * **Speed** — a simulated 5-second Happy Eyeballs timeout costs
//!   microseconds of wall-clock time; full parameter sweeps run in seconds.
//! * **Precision** — event timestamps carry nanosecond resolution with zero
//!   jitter, strictly better than the sub-millisecond capture accuracy the
//!   paper's physical testbed depends on (§4.3 of the paper).
//!
//! The API deliberately mirrors tokio's shape (`spawn`, `sleep`, `timeout`,
//! `sync::{oneshot, mpsc}`, `JoinHandle::abort`) so the networking code in
//! the other crates reads like ordinary async Rust.
//!
//! ```
//! use lazyeye_sim::{Sim, spawn, sleep, now};
//! use std::time::Duration;
//!
//! let mut sim = Sim::new(0xE7E);
//! let elapsed = sim.block_on(async {
//!     let ipv6 = spawn(async { sleep(Duration::from_millis(300)).await; "v6" });
//!     let ipv4 = spawn(async { sleep(Duration::from_millis(120)).await; "v4" });
//!     let _first = lazyeye_sim::race(ipv6, ipv4).await;
//!     now()
//! });
//! assert_eq!(elapsed.as_millis(), 120);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod combinators;
mod executor;
pub mod sync;
pub mod time;
mod timer;
mod wheel;

pub use combinators::{join2, join_all, race, Either, JoinAll};
pub use executor::{
    current, has_current, now, pooled, reset_sim_stats, sim_stats, spawn, spawn_detached, with_rng,
    Aborted, JoinHandle, RunOutcome, Sim, SimHandle, SimPool, SimStats, TaskId,
};
pub use time::SimTime;
pub use timer::{sleep, sleep_until, timeout, timeout_at, yield_now, Elapsed, Sleep};

//! The deterministic single-threaded executor driving virtual time.
//!
//! Design (hot-path overhaul of the original async-book-style executor):
//!
//! * **Task slab** — tasks live in a generation-indexed free-list `Vec`
//!   slab instead of a `HashMap`. A [`TaskId`] packs `(slot, generation)`;
//!   freeing a slot bumps its generation, so a stale id (a timer or waker
//!   outliving its task) can never reach a recycled task.
//! * **Ready queue** — wakes dedup through a per-slot generation tag
//!   (`gen + 1`, 0 = not queued) instead of a `HashSet`: O(1) array reads,
//!   no hashing, and stale-generation wakes are dropped at the door (they
//!   were provable no-ops in the old executor too).
//! * **Timers** — a hierarchical timer wheel ([`crate::wheel`]) stores
//!   24-byte `(deadline, seq, TaskId)` records. The old binary heap cloned
//!   a `Waker` (an `Arc` bump + 16 bytes) per armed timer; the wheel wakes
//!   tasks by id through the one pooled waker allocated per *task* at
//!   spawn.
//! * **Lock split** — only the waker-reachable [`WakeQueue`] stays behind
//!   `Arc<parking_lot::Mutex>` (the `Waker` contract demands `Send +
//!   Sync`). The clock, RNG, slab and wheel live in a driving-thread-only
//!   `Rc<RefCell<ExecCore>>`, so `now()`/`with_rng`/timer arming stop
//!   paying lock + `Arc` traffic.
//! * **Arena reuse** — [`Sim::reset`] returns a simulation to its freshly
//!   seeded state while keeping every allocation (slab, wheel slots, ready
//!   queue); [`SimPool`]/[`pooled`] recycle whole `Sim`s per worker thread
//!   so a measurement campaign stops paying a full allocation storm per
//!   run.
//!
//! The observable schedule is bit-identical to the original executor:
//! ready tasks run in FIFO wake order, timers fire in strict
//! `(deadline, registration-seq)` order, and one timer fires per clock
//! advance before the ready queue drains again. The workspace's golden
//! report hashes (`tests/golden_pin.rs`) pin this equivalence.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::time::SimTime;
use crate::wheel::TimerWheel;

/// Identifier of a spawned task, unique within one [`Sim`] *lifetime*:
/// the low 32 bits index the task slab, the high 32 bits carry the slot's
/// generation (bumped whenever a slot is freed), so recycled slots never
/// alias old ids.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(u64);

impl TaskId {
    pub(crate) fn pack(slot: u32, generation: u32) -> TaskId {
        TaskId((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl std::fmt::Debug for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskId({}v{})", self.slot(), self.generation())
    }
}

type BoxFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

// ---------------------------------------------------------------------------
// Scheduler metrics (lazyeye-obs registry)
// ---------------------------------------------------------------------------

/// The scheduler's registry handles. Poll/timer/task counters live in the
/// virtual clock domain (their totals are functions of the simulated
/// workload alone); slot and sim lifecycle counters live in the wall
/// domain because arena/pool reuse depends on the worker count.
struct SimMetrics {
    polls: &'static lazyeye_obs::Counter,
    timers_fired: &'static lazyeye_obs::Counter,
    timers_armed: &'static lazyeye_obs::Counter,
    tasks_spawned: &'static lazyeye_obs::Counter,
    slots_allocated: &'static lazyeye_obs::Counter,
    slots_reused: &'static lazyeye_obs::Counter,
    sims_created: &'static lazyeye_obs::Counter,
    sims_reset: &'static lazyeye_obs::Counter,
    /// Final virtual time of each completed run, in simulated µs.
    run_virtual_us: &'static lazyeye_obs::Histogram,
}

fn metrics() -> &'static SimMetrics {
    use lazyeye_obs::Clock::{Virtual, Wall};
    static METRICS: std::sync::OnceLock<SimMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| SimMetrics {
        polls: lazyeye_obs::counter("sim.polls", Virtual),
        timers_fired: lazyeye_obs::counter("sim.timers_fired", Virtual),
        timers_armed: lazyeye_obs::counter("sim.timers_armed", Virtual),
        tasks_spawned: lazyeye_obs::counter("sim.tasks_spawned", Virtual),
        slots_allocated: lazyeye_obs::counter("sim.slots_allocated", Wall),
        slots_reused: lazyeye_obs::counter("sim.slots_reused", Wall),
        sims_created: lazyeye_obs::counter("sim.sims_created", Wall),
        sims_reset: lazyeye_obs::counter("sim.sims_reset", Wall),
        run_virtual_us: lazyeye_obs::histogram("sim.run_virtual_us", Virtual),
    })
}

/// Per-run trace budget: at most this many instant events (timer fires,
/// task spawns) are recorded on a sampled run's virtual track.
const RUN_TRACE_EVENT_CAP: u32 = 512;

/// Process-wide scheduler counters, aggregated across every [`Sim`] as it
/// is reset or dropped. The poll/timer/task counters are deterministic
/// for a fixed workload (whatever the worker count), which is what lets
/// CI pin them in `BENCH.json`.
///
/// This is a compatibility view over the `lazyeye-obs` registry (metric
/// names `sim.polls`, `sim.timers_fired`, ...); new code should read the
/// registry directly.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// `Future::poll` calls.
    pub polls: u64,
    /// Timers popped from the wheel.
    pub timers_fired: u64,
    /// Timers armed (wheel inserts).
    pub timers_armed: u64,
    /// Tasks spawned.
    pub tasks_spawned: u64,
    /// Fresh slab slots allocated (each costs one waker + slot alloc).
    pub slots_allocated: u64,
    /// Slab slots recycled through the free list (alloc-free spawns).
    pub slots_reused: u64,
    /// Simulations created from scratch.
    pub sims_created: u64,
    /// Simulations reused via [`Sim::reset`] / [`SimPool`].
    pub sims_reset: u64,
}

/// Snapshot of the process-wide scheduler counters. Per-`Sim` tallies are
/// flushed on [`Sim::reset`] and on drop, so read this after the
/// workload's sims are done (or pooled).
pub fn sim_stats() -> SimStats {
    let m = metrics();
    SimStats {
        polls: m.polls.get(),
        timers_fired: m.timers_fired.get(),
        timers_armed: m.timers_armed.get(),
        tasks_spawned: m.tasks_spawned.get(),
        slots_allocated: m.slots_allocated.get(),
        slots_reused: m.slots_reused.get(),
        sims_created: m.sims_created.get(),
        sims_reset: m.sims_reset.get(),
    }
}

/// Zeroes the scheduler counters in the registry (bench harness setup).
pub fn reset_sim_stats() {
    let m = metrics();
    m.polls.reset();
    m.timers_fired.reset();
    m.timers_armed.reset();
    m.tasks_spawned.reset();
    m.slots_allocated.reset();
    m.slots_reused.reset();
    m.sims_created.reset();
    m.sims_reset.reset();
    m.run_virtual_us.reset();
}

// ---------------------------------------------------------------------------
// Waker-reachable side: the wake queue
// ---------------------------------------------------------------------------

/// The only scheduler state wakers can reach. Everything else lives in
/// [`ExecCore`] behind a driving-thread-only `RefCell`.
struct WakeQueue {
    ready: std::collections::VecDeque<TaskId>,
    /// Per-slot dedup tag: `generation + 1` of the queued id, 0 = none.
    /// The tag only ratchets upward, so a stale (older-generation) wake
    /// arriving while a newer task occupies the slot is dropped — it was
    /// a no-op in the old executor too (popped, looked up, skipped).
    queued: Vec<u64>,
}

impl WakeQueue {
    fn enqueue(&mut self, id: TaskId) {
        let slot = id.slot();
        if self.queued.len() <= slot {
            self.queued.resize(slot + 1, 0);
        }
        let tag = u64::from(id.generation()) + 1;
        if self.queued[slot] >= tag {
            // Already queued (==), or a newer generation holds the slot
            // (>): either way this wake cannot change the schedule.
            return;
        }
        self.queued[slot] = tag;
        self.ready.push_back(id);
    }

    fn pop(&mut self) -> Option<TaskId> {
        let id = self.ready.pop_front()?;
        let slot = id.slot();
        if self.queued[slot] == u64::from(id.generation()) + 1 {
            self.queued[slot] = 0;
        }
        Some(id)
    }

    fn clear(&mut self) {
        self.ready.clear();
        self.queued.iter_mut().for_each(|q| *q = 0);
    }
}

type SharedWake = Arc<Mutex<WakeQueue>>;

/// Waker implementation: waking re-queues the task on its wake queue. One
/// of these is allocated per *task* at spawn; timers don't touch it at
/// all (the wheel stores bare [`TaskId`]s). It doubles as the task's
/// abort flag so a spawn costs one shared allocation, not two.
struct TaskWaker {
    id: TaskId,
    wake: Weak<Mutex<WakeQueue>>,
    abort: AtomicBool,
}

impl TaskWaker {
    /// Sets the abort flag and schedules the task so the executor drops
    /// its future promptly.
    fn abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
        if let Some(wake) = self.wake.upgrade() {
            wake.lock().enqueue(self.id);
        }
    }
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        if let Some(wake) = self.wake.upgrade() {
            wake.lock().enqueue(self.id);
        }
    }
}

// ---------------------------------------------------------------------------
// Driving-thread side: slab + core
// ---------------------------------------------------------------------------

struct TaskEntry {
    fut: BoxFuture,
    /// The task's pooled waker (id + wake queue + abort flag): cloned (an
    /// `Arc` bump, no allocation) by every primitive that parks this task.
    tw: Arc<TaskWaker>,
}

enum SlotState {
    Vacant,
    /// The entry is out being polled; the slot keeps its generation so
    /// re-entrant wakes still target a live task.
    Polling,
    Occupied(TaskEntry),
}

struct Slot {
    generation: u32,
    state: SlotState,
}

/// Generation-indexed free-list slab of live tasks.
struct Slab {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Reserves a slot and builds its entry from the resulting id.
    /// Returns the id and whether the slot was recycled.
    fn alloc(&mut self, make: impl FnOnce(TaskId) -> TaskEntry) -> (TaskId, bool) {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let id = TaskId::pack(slot, self.slots[slot as usize].generation);
            self.slots[slot as usize].state = SlotState::Occupied(make(id));
            (id, true)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("task slab exceeds u32 slots");
            let id = TaskId::pack(slot, 0);
            self.slots.push(Slot {
                generation: 0,
                state: SlotState::Occupied(make(id)),
            });
            (id, false)
        }
    }

    /// Whether `id` names a live (not freed, not recycled) task.
    fn is_live(&self, id: TaskId) -> bool {
        self.slots.get(id.slot()).is_some_and(|s| {
            s.generation == id.generation()
                && matches!(s.state, SlotState::Occupied(_) | SlotState::Polling)
        })
    }

    /// Takes the entry out for polling (slot parks in `Polling`), or
    /// `None` when the id is stale or the slot vacant.
    fn begin_poll(&mut self, id: TaskId) -> Option<TaskEntry> {
        let slot = self.slots.get_mut(id.slot())?;
        if slot.generation != id.generation() || !matches!(slot.state, SlotState::Occupied(_)) {
            return None;
        }
        match std::mem::replace(&mut slot.state, SlotState::Polling) {
            SlotState::Occupied(entry) => Some(entry),
            _ => unreachable!("checked occupied above"),
        }
    }

    /// Returns a still-pending entry after its poll.
    fn end_poll_pending(&mut self, id: TaskId, entry: TaskEntry) {
        let slot = &mut self.slots[id.slot()];
        debug_assert!(matches!(slot.state, SlotState::Polling));
        slot.state = SlotState::Occupied(entry);
    }

    /// Frees the slot of a finished/aborted task: generation bump + free
    /// list push, so stale timers and wakers can never reach a successor.
    fn free_after_poll(&mut self, id: TaskId) {
        let slot = &mut self.slots[id.slot()];
        debug_assert!(matches!(slot.state, SlotState::Polling));
        slot.state = SlotState::Vacant;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.slot() as u32);
        self.live -= 1;
    }

    fn live_count(&self) -> usize {
        self.live
    }

    /// Pulls every live entry out (freeing its slot), for cancellation
    /// drops during [`Sim::reset`]. Keeps all allocations.
    fn drain_entries(&mut self) -> Vec<TaskEntry> {
        let mut out = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if matches!(slot.state, SlotState::Occupied(_)) {
                let SlotState::Occupied(entry) =
                    std::mem::replace(&mut slot.state, SlotState::Vacant)
                else {
                    unreachable!()
                };
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(i as u32);
                out.push(entry);
            }
        }
        self.live -= out.len();
        out
    }
}

/// The driving-thread scheduler core: clock, RNG, timers, tasks,
/// counters. Wakers never touch this, so it needs no lock.
pub(crate) struct ExecCore {
    now: SimTime,
    timers: TimerWheel,
    slab: Slab,
    /// The task currently being polled (timer registration target).
    current_task: Option<TaskId>,
    pub(crate) rng: SmallRng,
    /// Counters exposed for benchmarking and diagnostics (flushed to the
    /// process-wide [`sim_stats`] on reset/drop).
    polls: u64,
    timers_fired: u64,
    timers_armed: u64,
    tasks_spawned: u64,
    slots_allocated: u64,
    slots_reused: u64,
    /// Virtual-time timeline track claimed for this run when `--timeline`
    /// sampling is on; `None` otherwise.
    trace_track: Option<u32>,
    /// Remaining per-run budget of instant trace events.
    trace_events_left: u32,
}

impl ExecCore {
    /// Adds this sim's tallies to the registry counters and zeroes them.
    /// A run that actually polled something also records its final
    /// virtual time and closes its sampled timeline track (if any).
    fn flush_stats(&mut self) {
        let m = metrics();
        m.polls.add(self.polls);
        m.timers_fired.add(self.timers_fired);
        m.timers_armed.add(self.timers_armed);
        m.tasks_spawned.add(self.tasks_spawned);
        m.slots_allocated.add(self.slots_allocated);
        m.slots_reused.add(self.slots_reused);
        if self.polls > 0 {
            m.run_virtual_us.record(self.now.as_nanos() / 1_000);
            lazyeye_obs::recorder::record(
                lazyeye_obs::Clock::Virtual,
                "sim.run",
                format!("virtual_us={}", self.now.as_nanos() / 1_000),
            );
        }
        if let Some(track) = self.trace_track.take() {
            if self.polls > 0 {
                lazyeye_obs::trace::virtual_span(track, "sim.run", 0, self.now.as_nanos() / 1_000);
            }
        }
        self.polls = 0;
        self.timers_fired = 0;
        self.timers_armed = 0;
        self.tasks_spawned = 0;
        self.slots_allocated = 0;
        self.slots_reused = 0;
    }

    /// Records an instant event on this run's sampled virtual track,
    /// within the per-run budget.
    fn trace_instant(&mut self, name: &'static str) {
        if let Some(track) = self.trace_track {
            if self.trace_events_left > 0 {
                self.trace_events_left -= 1;
                lazyeye_obs::trace::virtual_event(track, name, self.now.as_nanos() / 1_000);
            }
        }
    }
}

/// Handle that free functions ([`crate::spawn`], [`crate::sleep`], ...) use
/// to reach the currently running simulation. Install with
/// [`Sim::block_on`]/[`Sim::run`], or explicitly via [`Sim::enter`].
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) core: Rc<RefCell<ExecCore>>,
    wake: SharedWake,
}

thread_local! {
    static CURRENT: RefCell<Vec<SimHandle>> = const { RefCell::new(Vec::new()) };
}

/// Returns the handle of the simulation currently driving this thread.
///
/// # Panics
/// Panics when called outside of a running simulation (i.e. not from within
/// a task and not inside [`Sim::enter`]).
pub fn current() -> SimHandle {
    CURRENT.with(|c| {
        c.borrow()
            .last()
            .cloned()
            .expect("not inside a Sim context: call from within Sim::run/block_on or Sim::enter")
    })
}

/// Returns `true` if a simulation context is installed on this thread.
pub fn has_current() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

struct EnterGuard;

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

fn enter(handle: SimHandle) -> EnterGuard {
    CURRENT.with(|c| c.borrow_mut().push(handle));
    EnterGuard
}

/// Why a call to [`Sim::run`]/[`Sim::run_until`] returned.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// No task is ready and no timer is pending. `pending_tasks` tasks are
    /// still alive but blocked on events that will never arrive (or on
    /// wakers owned by dropped objects).
    Quiescent {
        /// Number of live, blocked tasks at quiescence.
        pending_tasks: usize,
    },
    /// The requested deadline was reached with work still pending.
    DeadlineReached,
    /// A stop condition supplied by the caller (e.g. [`Sim::block_on`]'s
    /// root future finishing) became true.
    Interrupted,
}

/// A deterministic virtual-time simulation: executor + clock + RNG.
///
/// ```
/// use lazyeye_sim::{Sim, sleep, now};
/// use std::time::Duration;
///
/// let mut sim = Sim::new(7);
/// let out = sim.block_on(async {
///     sleep(Duration::from_millis(250)).await;
///     now()
/// });
/// assert_eq!(out.as_millis(), 250);
/// ```
pub struct Sim {
    handle: SimHandle,
    /// When set, dropping the `Sim` returns its arenas to this pool.
    pool: Option<Rc<PoolInner>>,
}

impl Sim {
    /// Creates a simulation whose RNG is seeded with `seed`. Two `Sim`s with
    /// the same seed and the same program produce bit-identical schedules.
    pub fn new(seed: u64) -> Self {
        metrics().sims_created.inc();
        let core = Rc::new(RefCell::new(ExecCore {
            now: SimTime::ZERO,
            timers: TimerWheel::new(),
            slab: Slab::new(),
            current_task: None,
            rng: SmallRng::seed_from_u64(seed),
            polls: 0,
            timers_fired: 0,
            timers_armed: 0,
            tasks_spawned: 0,
            slots_allocated: 0,
            slots_reused: 0,
            trace_track: lazyeye_obs::trace::claim_virtual_track(),
            trace_events_left: RUN_TRACE_EVENT_CAP,
        }));
        let wake = Arc::new(Mutex::new(WakeQueue {
            ready: std::collections::VecDeque::new(),
            queued: Vec::new(),
        }));
        Sim {
            handle: SimHandle { core, wake },
            pool: None,
        }
    }

    /// Returns the simulation to its initial state — fresh clock, RNG
    /// reseeded with `seed`, no tasks, no timers — while keeping every
    /// allocation (task slab, wheel slots, queues) for the next run. A
    /// reset `Sim` is observably indistinguishable from `Sim::new(seed)`;
    /// the per-sim counters flush into [`sim_stats`] first.
    ///
    /// Live tasks are cancelled by dropping their futures (inside the sim
    /// context, so graceful-close drop paths still work); anything those
    /// drops spawn or wake is discarded with them.
    pub fn reset(&mut self, seed: u64) {
        metrics().sims_reset.inc();
        {
            // Drops may re-entrantly spawn/wake; iterate until quiet.
            let _g = enter(self.handle.clone());
            loop {
                let entries = self.handle.core.borrow_mut().slab.drain_entries();
                if entries.is_empty() {
                    break;
                }
                drop(entries);
            }
        }
        let mut core = self.handle.core.borrow_mut();
        core.flush_stats();
        core.now = SimTime::ZERO;
        core.timers.clear();
        core.current_task = None;
        core.rng = SmallRng::seed_from_u64(seed);
        core.trace_track = lazyeye_obs::trace::claim_virtual_track();
        core.trace_events_left = RUN_TRACE_EVENT_CAP;
        drop(core);
        self.handle.wake.lock().clear();
    }

    /// The handle used by spawned tasks; also usable directly.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Installs this simulation as the thread's current context for the
    /// duration of `f`, without running the executor. Useful to build
    /// simulation objects (hosts, sockets) that need [`current`].
    pub fn enter<T>(&self, f: impl FnOnce() -> T) -> T {
        let _g = enter(self.handle.clone());
        f()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.handle.core.borrow().now
    }

    /// Spawns a task onto the simulation. See [`crate::spawn`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.handle.spawn(fut)
    }

    /// Runs until quiescence (no ready task, no pending timer).
    pub fn run(&mut self) -> RunOutcome {
        self.run_inner(SimTime::MAX, None)
    }

    /// Runs until quiescence or until the clock reaches `deadline`,
    /// whichever comes first. The clock is advanced to `deadline` when the
    /// outcome is [`RunOutcome::DeadlineReached`]... it is *not* advanced
    /// past the last event on quiescence.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_inner(deadline, None)
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: Duration) -> RunOutcome {
        let deadline = self.now() + d;
        self.run_until(deadline)
    }

    /// Spawns `fut`, runs the simulation until it completes, and returns its
    /// output.
    ///
    /// # Panics
    /// Panics if the simulation goes quiescent before `fut` finishes —
    /// that is a deadlock in simulated code and always a bug worth loud
    /// failure in a testbed.
    pub fn block_on<F>(&mut self, fut: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let handle = self.spawn(fut);
        // Stop the instant the root future finishes so that stale timers
        // held by cancelled futures (race losers, expired timeouts) do not
        // drag the clock forward.
        let outcome = self.run_inner(SimTime::MAX, Some(&|| handle.is_finished()));
        if let Some(result) = handle.try_take() {
            return result.expect("block_on future aborted");
        }
        match outcome {
            RunOutcome::Quiescent { pending_tasks } => panic!(
                "Sim::block_on deadlocked at t={} with {} pending task(s)",
                self.now(),
                pending_tasks
            ),
            _ => unreachable!("block_on stops only on completion or quiescence"),
        }
    }

    /// Number of `Future::poll` calls performed since creation or the last
    /// [`Sim::reset`] (diagnostics).
    pub fn poll_count(&self) -> u64 {
        self.handle.core.borrow().polls
    }

    /// Number of timers fired since creation or the last [`Sim::reset`]
    /// (diagnostics).
    pub fn timers_fired(&self) -> u64 {
        self.handle.core.borrow().timers_fired
    }

    fn run_inner(&mut self, deadline: SimTime, stop_when: Option<&dyn Fn() -> bool>) -> RunOutcome {
        let _g = enter(self.handle.clone());
        if let Some(stop) = stop_when {
            if stop() {
                return RunOutcome::Interrupted;
            }
        }
        loop {
            // Drain every task that is ready at the current instant.
            loop {
                let next = self.handle.wake.lock().pop();
                let Some(id) = next else { break };
                self.poll_task(id);
                if let Some(stop) = stop_when {
                    if stop() {
                        return RunOutcome::Interrupted;
                    }
                }
            }

            // Nothing ready: advance the clock to the next timer (a
            // single wheel scan pops or reports why it cannot).
            let mut core = self.handle.core.borrow_mut();
            match core.timers.pop_earliest_before(deadline.as_nanos()) {
                crate::wheel::PopOutcome::Fired(entry) => {
                    let at = SimTime::from_nanos(entry.at);
                    debug_assert!(at >= core.now, "timer scheduled in the past");
                    core.now = core.now.max(at);
                    core.timers_fired += 1;
                    core.trace_instant("timer.fire");
                    // A stale id (its task finished) is dropped here — the
                    // old executor enqueued the dead id and skipped it at
                    // poll time, which was observably identical.
                    let alive = core.slab.is_live(entry.task);
                    drop(core);
                    if alive {
                        self.handle.wake.lock().enqueue(entry.task);
                    }
                }
                crate::wheel::PopOutcome::Beyond => {
                    // Earliest timer is beyond the deadline.
                    core.now = core.now.max(deadline);
                    return RunOutcome::DeadlineReached;
                }
                crate::wheel::PopOutcome::Empty => {
                    return RunOutcome::Quiescent {
                        pending_tasks: core.slab.live_count(),
                    };
                }
            }
        }
    }

    fn poll_task(&self, id: TaskId) {
        // Take the task out of the slab while polling so re-entrant
        // spawn()/wake()/now() can borrow the core freely.
        let mut core = self.handle.core.borrow_mut();
        let Some(mut entry) = core.slab.begin_poll(id) else {
            return; // stale id or vacant slot
        };
        if entry.tw.abort.load(Ordering::Relaxed) {
            core.slab.free_after_poll(id);
            drop(core);
            // Dropping the future cancels everything it owns.
            drop(entry);
            return;
        }
        core.polls += 1;
        core.current_task = Some(id);
        drop(core);
        let poll = {
            let waker = Waker::from(Arc::clone(&entry.tw));
            let mut cx = Context::from_waker(&waker);
            entry.fut.as_mut().poll(&mut cx)
        };
        let mut core = self.handle.core.borrow_mut();
        core.current_task = None;
        if poll.is_pending() {
            core.slab.end_poll_pending(id, entry);
        } else {
            core.slab.free_after_poll(id);
            drop(core);
            // Drop the finished future outside the core borrow: its drop
            // may spawn or wake re-entrantly.
            drop(entry);
        }
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        // Flush per-sim counters even for never-reset sims, then hand the
        // arenas back to the pool (if any) for the next acquire.
        self.handle.core.borrow_mut().flush_stats();
        if let Some(pool) = self.pool.take() {
            pool.idle.borrow_mut().push(self.handle.clone());
        }
    }
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.borrow().now
    }

    /// Spawns a future as a new task; see [`crate::spawn`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(JoinState {
            finished: std::cell::Cell::new(false),
            inner: RefCell::new(JoinInner {
                result: None,
                waker: None,
            }),
        });
        let state2 = Rc::clone(&state);
        let wrapped: BoxFuture = Box::pin(async move {
            let out = fut.await;
            let mut st = state2.inner.borrow_mut();
            st.result = Some(out);
            state2.finished.set(true);
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        });
        let tw = self.insert_task(wrapped);
        JoinHandle { state, tw }
    }

    /// Spawns a fire-and-forget task: no [`JoinHandle`], no result
    /// storage, no wrapper future — just the boxed future and its pooled
    /// waker. The cheap path for the simulator's own plumbing tasks
    /// (packet deliveries, server accept loops), which spawn by the
    /// hundred per measurement run and never get awaited.
    pub fn spawn_detached<F>(&self, fut: F)
    where
        F: Future<Output = ()> + 'static,
    {
        self.insert_task(Box::pin(fut));
    }

    /// Slab-inserts a boxed task and enqueues its first poll, returning
    /// the task's pooled waker.
    fn insert_task(&self, fut: BoxFuture) -> Arc<TaskWaker> {
        let mut core = self.core.borrow_mut();
        let wake = Arc::downgrade(&self.wake);
        let mut waker = None;
        let (id, reused) = core.slab.alloc(|id| {
            let tw = Arc::new(TaskWaker {
                id,
                wake,
                abort: AtomicBool::new(false),
            });
            waker = Some(Arc::clone(&tw));
            TaskEntry { fut, tw }
        });
        core.tasks_spawned += 1;
        core.trace_instant("task.spawn");
        if reused {
            core.slots_reused += 1;
        } else {
            core.slots_allocated += 1;
        }
        drop(core);
        // Immediately runnable.
        self.wake.lock().enqueue(id);
        waker.expect("alloc ran the constructor")
    }

    /// Registers a timer waking the *currently polled task* at instant
    /// `at`. Returns a monotonically increasing sequence number (timers at
    /// the same instant fire in registration order).
    ///
    /// # Panics
    /// Panics when no task is being polled: timer futures ([`crate::Sleep`],
    /// [`crate::Timeout`]) only ever run inside a task, which is what lets
    /// the wheel store bare task ids instead of a cloned waker per timer.
    pub(crate) fn register_timer(&self, at: SimTime) -> u64 {
        let mut core = self.core.borrow_mut();
        let task = core
            .current_task
            .expect("timers can only be armed from within a polled task");
        let at = at.max(core.now);
        core.timers_armed += 1;
        core.timers.insert(at.as_nanos(), task)
    }
}

// ---------------------------------------------------------------------------
// Sim pooling
// ---------------------------------------------------------------------------

struct PoolInner {
    idle: RefCell<Vec<SimHandle>>,
}

/// A per-thread arena pool of [`Sim`]s: [`SimPool::acquire`] hands out a
/// reset simulation, and dropping the `Sim` returns its arenas (task
/// slab, timer wheel, queues, RNG state cell) to the pool instead of
/// freeing them. One pool per worker thread means a measurement campaign
/// allocates one simulation per *worker* instead of one per *run*.
///
/// Pooled sims must not have [`SimHandle`]s outliving the `Sim` value —
/// the next acquire would alias them. The testbed topologies satisfy this
/// by dropping the whole topology (hosts, sockets, sim) together.
pub struct SimPool {
    inner: Rc<PoolInner>,
}

impl Default for SimPool {
    fn default() -> Self {
        Self::new()
    }
}

impl SimPool {
    /// Creates an empty pool.
    pub fn new() -> SimPool {
        SimPool {
            inner: Rc::new(PoolInner {
                idle: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Acquires a simulation seeded with `seed`: a recycled arena when one
    /// is idle (reset first), a fresh `Sim` otherwise. Observably
    /// identical to `Sim::new(seed)` either way.
    pub fn acquire(&self, seed: u64) -> Sim {
        let recycled = self.inner.idle.borrow_mut().pop();
        match recycled {
            Some(handle) => {
                let mut sim = Sim { handle, pool: None };
                sim.reset(seed);
                sim.pool = Some(Rc::clone(&self.inner));
                sim
            }
            None => {
                let mut sim = Sim::new(seed);
                sim.pool = Some(Rc::clone(&self.inner));
                sim
            }
        }
    }

    /// Number of idle simulations currently held.
    pub fn idle(&self) -> usize {
        self.inner.idle.borrow().len()
    }
}

thread_local! {
    static THREAD_POOL: SimPool = SimPool::new();
}

/// Acquires a simulation from the calling thread's [`SimPool`] — the
/// arena-reuse entry point the testbed topologies use so campaign and
/// fleet workers recycle one simulation per worker thread instead of
/// allocating a fresh one per run.
pub fn pooled(seed: u64) -> Sim {
    THREAD_POOL.with(|p| p.acquire(seed))
}

// ---------------------------------------------------------------------------
// Join handles
// ---------------------------------------------------------------------------

struct JoinInner<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Join state is driving-thread-only (the executor is single-threaded and
/// handles never cross threads), so it needs no lock at all.
struct JoinState<T> {
    /// Completion flag outside the `RefCell`: [`Sim::block_on`] checks it
    /// after every poll, which must not cost a borrow.
    finished: std::cell::Cell<bool>,
    inner: RefCell<JoinInner<T>>,
}

/// Error returned when awaiting a [`JoinHandle`] whose task was aborted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Aborted;

impl std::fmt::Display for Aborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task was aborted")
    }
}
impl std::error::Error for Aborted {}

/// Owned handle to a spawned task: await it for the task's output, or
/// [`JoinHandle::abort`] it to cancel. Dropping the handle detaches the task
/// (it keeps running).
pub struct JoinHandle<T> {
    state: Rc<JoinState<T>>,
    /// The task's pooled waker: carries the id, the wake queue and the
    /// abort flag, so aborting needs no thread-local lookup.
    tw: Arc<TaskWaker>,
}

impl<T> JoinHandle<T> {
    /// The task's id (diagnostics).
    pub fn id(&self) -> TaskId {
        self.tw.id
    }

    /// Requests cancellation: the task's future is dropped before its next
    /// poll, which cancels any I/O it owns. Awaiting the handle afterwards
    /// yields `Err(Aborted)` unless the task already finished.
    pub fn abort(&self) {
        self.tw.abort();
    }

    /// `true` once the task has produced its output (not aborted).
    pub fn is_finished(&self) -> bool {
        self.state.finished.get()
    }

    /// Takes the output if the task has finished; `Err(Aborted)` if it was
    /// aborted before finishing; `None`-like (inner `Option`) semantics are
    /// folded into `Option<Result<..>>`: `None` means still running.
    pub fn try_take(&self) -> Option<Result<T, Aborted>> {
        let mut st = self.state.inner.borrow_mut();
        if let Some(v) = st.result.take() {
            return Some(Ok(v));
        }
        if self.tw.abort.load(Ordering::Relaxed) && !self.is_finished() {
            return Some(Err(Aborted));
        }
        None
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, Aborted>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.state.inner.borrow_mut();
        if let Some(v) = st.result.take() {
            return Poll::Ready(Ok(v));
        }
        if self.tw.abort.load(Ordering::Relaxed) && !self.state.finished.get() {
            return Poll::Ready(Err(Aborted));
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Spawns a future onto the current simulation. Must be called from inside a
/// task or a [`Sim::enter`] scope.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    current().spawn(fut)
}

/// Spawns a fire-and-forget task onto the current simulation — the cheap
/// path for plumbing tasks that are never awaited or aborted. See
/// [`SimHandle::spawn_detached`].
pub fn spawn_detached<F>(fut: F)
where
    F: Future<Output = ()> + 'static,
{
    current().spawn_detached(fut)
}

/// Current virtual time of the running simulation.
pub fn now() -> SimTime {
    current().now()
}

/// Runs `f` with mutable access to the simulation's deterministic RNG.
pub fn with_rng<T>(f: impl FnOnce(&mut SmallRng) -> T) -> T {
    let handle = current();
    let mut core = handle.core.borrow_mut();
    f(&mut core.rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timer::sleep;
    use std::cell::RefCell;

    #[test]
    fn block_on_returns_value() {
        let mut sim = Sim::new(1);
        assert_eq!(sim.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn virtual_time_advances_only_by_timers() {
        let mut sim = Sim::new(1);
        let t = sim.block_on(async {
            sleep(Duration::from_secs(3600)).await;
            now()
        });
        assert_eq!(t, SimTime::from_secs(3600));
    }

    #[test]
    fn spawned_tasks_interleave_deterministically() {
        let mut sim = Sim::new(1);
        let log = std::rc::Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        let l2 = log.clone();
        sim.spawn(async move {
            sleep(Duration::from_millis(10)).await;
            l1.borrow_mut().push("a@10");
            sleep(Duration::from_millis(20)).await;
            l1.borrow_mut().push("a@30");
        });
        sim.spawn(async move {
            sleep(Duration::from_millis(20)).await;
            l2.borrow_mut().push("b@20");
        });
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::Quiescent { pending_tasks: 0 });
        assert_eq!(*log.borrow(), vec!["a@10", "b@20", "a@30"]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn same_instant_timers_fire_in_registration_order() {
        let mut sim = Sim::new(1);
        let log = std::rc::Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let l = log.clone();
            sim.spawn(async move {
                sleep(Duration::from_millis(100)).await;
                l.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(1);
        let handle = sim.spawn(async {
            sleep(Duration::from_secs(10)).await;
            7
        });
        let outcome = sim.run_until(SimTime::from_secs(5));
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert!(!handle.is_finished());
        sim.run();
        assert!(handle.is_finished());
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn join_handle_returns_output() {
        let mut sim = Sim::new(1);
        let result = sim.block_on(async {
            let h = spawn(async {
                sleep(Duration::from_millis(5)).await;
                "done"
            });
            h.await.unwrap()
        });
        assert_eq!(result, "done");
    }

    #[test]
    fn abort_cancels_task() {
        let mut sim = Sim::new(1);
        let flag = std::rc::Rc::new(RefCell::new(false));
        let f2 = flag.clone();
        let result = sim.block_on(async move {
            let h = spawn(async move {
                sleep(Duration::from_secs(1)).await;
                *f2.borrow_mut() = true;
            });
            sleep(Duration::from_millis(1)).await;
            h.abort();
            h.await
        });
        assert_eq!(result, Err(Aborted));
        sim.run();
        assert!(!*flag.borrow(), "aborted task must not run to completion");
    }

    #[test]
    fn abort_after_finish_returns_value() {
        let mut sim = Sim::new(1);
        let result = sim.block_on(async {
            let h = spawn(async { 5 });
            sleep(Duration::from_millis(1)).await;
            h.abort(); // too late, already finished
            h.await
        });
        assert_eq!(result, Ok(5));
    }

    #[test]
    fn quiescent_reports_blocked_tasks() {
        let mut sim = Sim::new(1);
        sim.spawn(async {
            // A future that never resolves and holds no timer.
            std::future::pending::<()>().await;
        });
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::Quiescent { pending_tasks: 1 });
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn block_on_deadlock_panics() {
        let mut sim = Sim::new(1);
        sim.block_on(std::future::pending::<()>());
    }

    fn random_sleep_run(sim: &mut Sim) -> (u64, Vec<u64>) {
        let out = std::rc::Rc::new(RefCell::new(Vec::new()));
        let o = out.clone();
        sim.block_on(async move {
            for _ in 0..10 {
                let ms = with_rng(|r| rand::Rng::gen_range(r, 1..50));
                sleep(Duration::from_millis(ms)).await;
                o.borrow_mut().push(now().as_nanos());
            }
        });
        let events = out.borrow().clone();
        (sim.now().as_nanos(), events)
    }

    #[test]
    fn identical_seeds_identical_schedules() {
        fn run(seed: u64) -> (u64, Vec<u64>) {
            random_sleep_run(&mut Sim::new(seed))
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0);
    }

    #[test]
    fn reset_is_observably_a_fresh_sim() {
        let mut sim = Sim::new(99);
        let fresh = random_sleep_run(&mut sim);
        // Leave junk behind: a blocked task and a pending timer.
        sim.spawn(async {
            sleep(Duration::from_secs(5000)).await;
            std::future::pending::<()>().await;
        });
        sim.run_until(SimTime::from_secs(1));

        sim.reset(99);
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.poll_count(), 0);
        assert_eq!(random_sleep_run(&mut sim), fresh, "reset != Sim::new(seed)");

        sim.reset(100);
        assert_ne!(random_sleep_run(&mut sim).0, fresh.0);
    }

    #[test]
    fn pool_recycles_arenas_with_identical_schedules() {
        let pool = SimPool::new();
        let a = {
            let mut sim = pool.acquire(7);
            random_sleep_run(&mut sim)
        };
        assert_eq!(pool.idle(), 1, "dropped sim returns to the pool");
        let b = {
            let mut sim = pool.acquire(7);
            random_sleep_run(&mut sim)
        };
        assert_eq!(a, b, "recycled arena must not leak schedule state");
        assert_eq!(pool.idle(), 1);

        // The thread-local entry point behaves the same.
        let c = random_sleep_run(&mut pooled(7));
        let d = random_sleep_run(&mut pooled(7));
        assert_eq!(c, a);
        assert_eq!(d, a);
    }

    #[test]
    fn slab_recycles_slots_with_generation_bump() {
        let mut sim = Sim::new(1);
        let (first, second) = sim.block_on(async {
            let h1 = spawn(async {});
            let id1 = h1.id();
            h1.await.unwrap(); // task finished, slot freed
            let h2 = spawn(async {});
            let id2 = h2.id();
            h2.await.unwrap();
            (id1, id2)
        });
        assert_eq!(first.slot(), second.slot(), "free list must recycle");
        assert_eq!(
            second.generation(),
            first.generation() + 1,
            "recycled slot must bump its generation"
        );
        assert_ne!(first, second);
    }

    /// A future that counts how often it is polled before completing at
    /// its deadline.
    struct CountedSleep {
        inner: crate::timer::Sleep,
        polls: std::rc::Rc<std::cell::Cell<u32>>,
    }

    impl Future for CountedSleep {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            let this = self.get_mut();
            this.polls.set(this.polls.get() + 1);
            Pin::new(&mut this.inner).poll(cx)
        }
    }

    #[test]
    fn stale_timer_never_fires_a_recycled_slot() {
        // Task A arms a far timer (the losing side of a race) and
        // completes early; task B recycles A's slot. When A's stale timer
        // deadline passes, B must not observe a spurious poll.
        let mut sim = Sim::new(1);
        let polls = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let p = polls.clone();
        sim.block_on(async move {
            let a = spawn(async {
                crate::race(
                    sleep(Duration::from_millis(100)),
                    sleep(Duration::from_millis(10)),
                )
                .await;
            });
            a.await.unwrap(); // A done at t=10ms; its 100ms timer is stale
            let b = spawn(CountedSleep {
                inner: crate::timer::sleep(Duration::from_millis(500)),
                polls: p,
            });
            b.await.unwrap();
        });
        assert_eq!(sim.now(), SimTime::from_millis(510));
        assert_eq!(
            polls.get(),
            2,
            "B must see exactly first poll + own deadline, no stale fire at 100ms"
        );
    }

    #[test]
    fn duplicate_wakes_dedup_to_one_poll() {
        // A future whose waker is woken three times while queued: the
        // epoch tag must collapse them into a single poll.
        struct WakeStorm {
            fired: bool,
        }
        impl Future for WakeStorm {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.fired {
                    return Poll::Ready(());
                }
                self.fired = true;
                cx.waker().wake_by_ref();
                cx.waker().wake_by_ref();
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
        let mut sim = Sim::new(1);
        sim.block_on(WakeStorm { fired: false });
        // Root wrapper task: 2 polls (pending, then ready). No extra polls
        // from the duplicate wakes.
        assert_eq!(sim.poll_count(), 2);
    }

    #[test]
    fn nested_spawn_inside_task() {
        let mut sim = Sim::new(1);
        let total = sim.block_on(async {
            let mut handles = Vec::new();
            for i in 0..10u64 {
                handles.push(spawn(async move {
                    sleep(Duration::from_millis(i)).await;
                    i
                }));
            }
            let mut sum = 0;
            for h in handles {
                sum += h.await.unwrap();
            }
            sum
        });
        assert_eq!(total, 45);
    }

    #[test]
    fn enter_allows_prebuilding() {
        let sim = Sim::new(1);
        sim.enter(|| {
            assert_eq!(now(), SimTime::ZERO);
            let _h = spawn(async {});
        });
    }

    #[test]
    fn stats_flush_on_reset_and_drop() {
        // The counters are process-wide atomics and other tests in this
        // binary create/drop sims concurrently, so every assertion is a
        // monotonic lower bound on *this* sim's contribution — exact
        // equality would flake under parallel test scheduling.
        let before = sim_stats();
        let mut sim = Sim::new(3);
        sim.block_on(async {
            sleep(Duration::from_millis(1)).await;
        });
        sim.reset(3);
        let after_reset = sim_stats();
        assert!(
            after_reset.polls >= before.polls + 2,
            "reset must flush this sim's polls"
        );
        assert!(after_reset.timers_fired > before.timers_fired);
        assert!(after_reset.sims_reset > before.sims_reset);
        drop(sim);
        assert!(sim_stats().sims_created > before.sims_created);
    }
}

//! The deterministic single-threaded executor driving virtual time.
//!
//! Design (following the async-book executor recipe, adapted to virtual
//! time): tasks are plain `Pin<Box<dyn Future>>` values stored in a
//! [`Sim`]-owned slab. Wakers push task ids onto a shared ready queue.
//! When the ready queue drains, the executor pops the earliest timer from a
//! binary heap, *jumps* the clock to its deadline and fires it. A run ends
//! when no tasks are ready and no timers are pending ("quiescent").
//!
//! Everything that wakers touch lives behind `Arc<parking_lot::Mutex<..>>`
//! so the `Waker` contract (thread-safety) is met without `unsafe`; the
//! futures themselves are `!Send` and never leave the driving thread.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::time::SimTime;

/// Identifier of a spawned task, unique within one [`Sim`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TaskId(u64);

type BoxFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// A timer waiting in the heap: fires `waker` once the clock reaches `at`.
struct TimerEntry {
    at: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The waker-reachable scheduler state. Must be `Send + Sync`-compatible.
pub(crate) struct SchedInner {
    now: SimTime,
    ready: VecDeque<TaskId>,
    /// Tasks currently sitting in `ready`, to de-duplicate wakes.
    enqueued: std::collections::HashSet<TaskId>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    next_task: u64,
    pub(crate) rng: SmallRng,
    /// Counters exposed for benchmarking and diagnostics.
    polls: u64,
    timers_fired: u64,
}

impl SchedInner {
    fn enqueue(&mut self, id: TaskId) {
        if self.enqueued.insert(id) {
            self.ready.push_back(id);
        }
    }
}

pub(crate) type Sched = Arc<Mutex<SchedInner>>;

/// Waker implementation: waking re-queues the task on its scheduler.
struct TaskWaker {
    id: TaskId,
    sched: Weak<Mutex<SchedInner>>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        if let Some(sched) = self.sched.upgrade() {
            sched.lock().enqueue(self.id);
        }
    }
}

struct TaskEntry {
    fut: BoxFuture,
    abort: Arc<AtomicBool>,
}

/// The non-`Send` side of the executor: the futures themselves.
struct TaskStore {
    tasks: HashMap<TaskId, TaskEntry>,
    /// Spawns performed while the executor is polling a task.
    pending: Vec<(TaskId, TaskEntry)>,
}

/// Handle that free functions ([`crate::spawn`], [`crate::sleep`], ...) use
/// to reach the currently running simulation. Install with
/// [`Sim::block_on`]/[`Sim::run`], or explicitly via [`Sim::enter`].
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) sched: Sched,
    tasks: std::rc::Rc<RefCell<TaskStore>>,
}

thread_local! {
    static CURRENT: RefCell<Vec<SimHandle>> = const { RefCell::new(Vec::new()) };
}

/// Returns the handle of the simulation currently driving this thread.
///
/// # Panics
/// Panics when called outside of a running simulation (i.e. not from within
/// a task and not inside [`Sim::enter`]).
pub fn current() -> SimHandle {
    CURRENT.with(|c| {
        c.borrow()
            .last()
            .cloned()
            .expect("not inside a Sim context: call from within Sim::run/block_on or Sim::enter")
    })
}

/// Returns `true` if a simulation context is installed on this thread.
pub fn has_current() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

struct EnterGuard;

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

fn enter(handle: SimHandle) -> EnterGuard {
    CURRENT.with(|c| c.borrow_mut().push(handle));
    EnterGuard
}

/// Why a call to [`Sim::run`]/[`Sim::run_until`] returned.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// No task is ready and no timer is pending. `pending_tasks` tasks are
    /// still alive but blocked on events that will never arrive (or on
    /// wakers owned by dropped objects).
    Quiescent {
        /// Number of live, blocked tasks at quiescence.
        pending_tasks: usize,
    },
    /// The requested deadline was reached with work still pending.
    DeadlineReached,
    /// A stop condition supplied by the caller (e.g. [`Sim::block_on`]'s
    /// root future finishing) became true.
    Interrupted,
}

/// A deterministic virtual-time simulation: executor + clock + RNG.
///
/// ```
/// use lazyeye_sim::{Sim, sleep, now};
/// use std::time::Duration;
///
/// let mut sim = Sim::new(7);
/// let out = sim.block_on(async {
///     sleep(Duration::from_millis(250)).await;
///     now()
/// });
/// assert_eq!(out.as_millis(), 250);
/// ```
pub struct Sim {
    handle: SimHandle,
}

impl Sim {
    /// Creates a simulation whose RNG is seeded with `seed`. Two `Sim`s with
    /// the same seed and the same program produce bit-identical schedules.
    pub fn new(seed: u64) -> Self {
        let sched = Arc::new(Mutex::new(SchedInner {
            now: SimTime::ZERO,
            ready: VecDeque::new(),
            enqueued: std::collections::HashSet::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            next_task: 0,
            rng: SmallRng::seed_from_u64(seed),
            polls: 0,
            timers_fired: 0,
        }));
        let tasks = std::rc::Rc::new(RefCell::new(TaskStore {
            tasks: HashMap::new(),
            pending: Vec::new(),
        }));
        Sim {
            handle: SimHandle { sched, tasks },
        }
    }

    /// The handle used by spawned tasks; also usable directly.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Installs this simulation as the thread's current context for the
    /// duration of `f`, without running the executor. Useful to build
    /// simulation objects (hosts, sockets) that need [`current`].
    pub fn enter<T>(&self, f: impl FnOnce() -> T) -> T {
        let _g = enter(self.handle.clone());
        f()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.handle.sched.lock().now
    }

    /// Spawns a task onto the simulation. See [`crate::spawn`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.handle.spawn(fut)
    }

    /// Runs until quiescence (no ready task, no pending timer).
    pub fn run(&mut self) -> RunOutcome {
        self.run_inner(SimTime::MAX, None)
    }

    /// Runs until quiescence or until the clock reaches `deadline`,
    /// whichever comes first. The clock is advanced to `deadline` when the
    /// outcome is [`RunOutcome::DeadlineReached`]... it is *not* advanced
    /// past the last event on quiescence.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_inner(deadline, None)
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: Duration) -> RunOutcome {
        let deadline = self.now() + d;
        self.run_until(deadline)
    }

    /// Spawns `fut`, runs the simulation until it completes, and returns its
    /// output.
    ///
    /// # Panics
    /// Panics if the simulation goes quiescent before `fut` finishes —
    /// that is a deadlock in simulated code and always a bug worth loud
    /// failure in a testbed.
    pub fn block_on<F>(&mut self, fut: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let handle = self.spawn(fut);
        // Stop the instant the root future finishes so that stale timers
        // held by cancelled futures (race losers, expired timeouts) do not
        // drag the clock forward.
        let outcome = self.run_inner(SimTime::MAX, Some(&|| handle.is_finished()));
        if let Some(result) = handle.try_take() {
            return result.expect("block_on future aborted");
        }
        match outcome {
            RunOutcome::Quiescent { pending_tasks } => panic!(
                "Sim::block_on deadlocked at t={} with {} pending task(s)",
                self.now(),
                pending_tasks
            ),
            _ => unreachable!("block_on stops only on completion or quiescence"),
        }
    }

    /// Number of `Future::poll` calls performed so far (diagnostics).
    pub fn poll_count(&self) -> u64 {
        self.handle.sched.lock().polls
    }

    /// Number of timers fired so far (diagnostics).
    pub fn timers_fired(&self) -> u64 {
        self.handle.sched.lock().timers_fired
    }

    fn run_inner(&mut self, deadline: SimTime, stop_when: Option<&dyn Fn() -> bool>) -> RunOutcome {
        let _g = enter(self.handle.clone());
        if let Some(stop) = stop_when {
            if stop() {
                return RunOutcome::Interrupted;
            }
        }
        loop {
            // Drain every task that is ready at the current instant.
            loop {
                let next = {
                    let mut sched = self.handle.sched.lock();
                    match sched.ready.pop_front() {
                        Some(id) => {
                            sched.enqueued.remove(&id);
                            Some(id)
                        }
                        None => None,
                    }
                };
                let Some(id) = next else { break };
                self.poll_task(id);
                if let Some(stop) = stop_when {
                    if stop() {
                        return RunOutcome::Interrupted;
                    }
                }
            }

            // Nothing ready: advance the clock to the next timer.
            let mut sched = self.handle.sched.lock();
            match sched.timers.peek() {
                Some(Reverse(entry)) if entry.at <= deadline => {
                    let Reverse(entry) = sched.timers.pop().expect("peeked");
                    debug_assert!(entry.at >= sched.now, "timer scheduled in the past");
                    sched.now = sched.now.max(entry.at);
                    sched.timers_fired += 1;
                    drop(sched);
                    entry.waker.wake();
                }
                Some(_) => {
                    // Earliest timer is beyond the deadline.
                    sched.now = sched.now.max(deadline);
                    return RunOutcome::DeadlineReached;
                }
                None => {
                    let pending_tasks = self.handle.tasks.borrow().tasks.len();
                    return RunOutcome::Quiescent { pending_tasks };
                }
            }
        }
    }

    fn poll_task(&self, id: TaskId) {
        // Remove the task while polling so re-entrant spawn()/wake() can
        // borrow the store.
        let entry = self.handle.tasks.borrow_mut().tasks.remove(&id);
        let Some(mut entry) = entry else { return };
        if entry.abort.load(Ordering::Relaxed) {
            // Dropping the future cancels everything it owns.
            return;
        }
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            sched: Arc::downgrade(&self.handle.sched),
        }));
        let mut cx = Context::from_waker(&waker);
        self.handle.sched.lock().polls += 1;
        let poll = entry.fut.as_mut().poll(&mut cx);
        let mut store = self.handle.tasks.borrow_mut();
        if poll.is_pending() {
            store.tasks.insert(id, entry);
        }
        // Adopt tasks spawned during this poll.
        let pending = std::mem::take(&mut store.pending);
        for (pid, pentry) in pending {
            store.tasks.insert(pid, pentry);
        }
    }
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.lock().now
    }

    /// Spawns a future as a new task; see [`crate::spawn`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let id = {
            let mut sched = self.sched.lock();
            let id = TaskId(sched.next_task);
            sched.next_task += 1;
            id
        };
        let state = Arc::new(Mutex::new(JoinState {
            result: None,
            waker: None,
            finished: false,
        }));
        let abort = Arc::new(AtomicBool::new(false));
        let state2 = Arc::clone(&state);
        let wrapped: BoxFuture = Box::pin(async move {
            let out = fut.await;
            let mut st = state2.lock();
            st.result = Some(out);
            st.finished = true;
            if let Some(w) = st.waker.take() {
                w.wake();
            }
        });
        let entry = TaskEntry {
            fut: wrapped,
            abort: Arc::clone(&abort),
        };
        self.tasks.borrow_mut().pending.push((id, entry));
        // Immediately runnable.
        self.sched.lock().enqueue(id);
        // If we are *not* inside poll_task (e.g. spawning before run()),
        // adopt pending tasks right away.
        if let Ok(mut store) = self.tasks.try_borrow_mut() {
            let pending = std::mem::take(&mut store.pending);
            for (pid, pentry) in pending {
                store.tasks.insert(pid, pentry);
            }
        }
        JoinHandle { id, state, abort }
    }

    /// Registers a timer waking `waker` at instant `at`. Returns a
    /// monotonically increasing sequence number (timers at the same instant
    /// fire in registration order).
    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker) -> u64 {
        let mut sched = self.sched.lock();
        let seq = sched.timer_seq;
        sched.timer_seq += 1;
        let at = at.max(sched.now);
        sched.timers.push(Reverse(TimerEntry { at, seq, waker }));
        seq
    }
}

struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
    finished: bool,
}

/// Error returned when awaiting a [`JoinHandle`] whose task was aborted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Aborted;

impl std::fmt::Display for Aborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task was aborted")
    }
}
impl std::error::Error for Aborted {}

/// Owned handle to a spawned task: await it for the task's output, or
/// [`JoinHandle::abort`] it to cancel. Dropping the handle detaches the task
/// (it keeps running).
pub struct JoinHandle<T> {
    id: TaskId,
    state: Arc<Mutex<JoinState<T>>>,
    abort: Arc<AtomicBool>,
}

impl<T> JoinHandle<T> {
    /// The task's id (diagnostics).
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Requests cancellation: the task's future is dropped before its next
    /// poll, which cancels any I/O it owns. Awaiting the handle afterwards
    /// yields `Err(Aborted)` unless the task already finished.
    pub fn abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
        if has_current() {
            // Schedule the task so the executor notices the abort flag and
            // drops the future promptly.
            current().sched.lock().enqueue(self.id);
        }
    }

    /// `true` once the task has produced its output (not aborted).
    pub fn is_finished(&self) -> bool {
        self.state.lock().finished
    }

    /// Takes the output if the task has finished; `Err(Aborted)` if it was
    /// aborted before finishing; `None`-like (inner `Option`) semantics are
    /// folded into `Option<Result<..>>`: `None` means still running.
    pub fn try_take(&self) -> Option<Result<T, Aborted>> {
        let mut st = self.state.lock();
        if let Some(v) = st.result.take() {
            return Some(Ok(v));
        }
        if self.abort.load(Ordering::Relaxed) && !st.finished {
            return Some(Err(Aborted));
        }
        None
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, Aborted>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.state.lock();
        if let Some(v) = st.result.take() {
            return Poll::Ready(Ok(v));
        }
        if self.abort.load(Ordering::Relaxed) && !st.finished {
            return Poll::Ready(Err(Aborted));
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Spawns a future onto the current simulation. Must be called from inside a
/// task or a [`Sim::enter`] scope.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    current().spawn(fut)
}

/// Current virtual time of the running simulation.
pub fn now() -> SimTime {
    current().now()
}

/// Runs `f` with mutable access to the simulation's deterministic RNG.
pub fn with_rng<T>(f: impl FnOnce(&mut SmallRng) -> T) -> T {
    let handle = current();
    let mut sched = handle.sched.lock();
    f(&mut sched.rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timer::sleep;

    #[test]
    fn block_on_returns_value() {
        let mut sim = Sim::new(1);
        assert_eq!(sim.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn virtual_time_advances_only_by_timers() {
        let mut sim = Sim::new(1);
        let t = sim.block_on(async {
            sleep(Duration::from_secs(3600)).await;
            now()
        });
        assert_eq!(t, SimTime::from_secs(3600));
    }

    #[test]
    fn spawned_tasks_interleave_deterministically() {
        let mut sim = Sim::new(1);
        let log = std::rc::Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        let l2 = log.clone();
        sim.spawn(async move {
            sleep(Duration::from_millis(10)).await;
            l1.borrow_mut().push("a@10");
            sleep(Duration::from_millis(20)).await;
            l1.borrow_mut().push("a@30");
        });
        sim.spawn(async move {
            sleep(Duration::from_millis(20)).await;
            l2.borrow_mut().push("b@20");
        });
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::Quiescent { pending_tasks: 0 });
        assert_eq!(*log.borrow(), vec!["a@10", "b@20", "a@30"]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn same_instant_timers_fire_in_registration_order() {
        let mut sim = Sim::new(1);
        let log = std::rc::Rc::new(RefCell::new(Vec::new()));
        for i in 0..5 {
            let l = log.clone();
            sim.spawn(async move {
                sleep(Duration::from_millis(100)).await;
                l.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(1);
        let handle = sim.spawn(async {
            sleep(Duration::from_secs(10)).await;
            7
        });
        let outcome = sim.run_until(SimTime::from_secs(5));
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert!(!handle.is_finished());
        sim.run();
        assert!(handle.is_finished());
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn join_handle_returns_output() {
        let mut sim = Sim::new(1);
        let result = sim.block_on(async {
            let h = spawn(async {
                sleep(Duration::from_millis(5)).await;
                "done"
            });
            h.await.unwrap()
        });
        assert_eq!(result, "done");
    }

    #[test]
    fn abort_cancels_task() {
        let mut sim = Sim::new(1);
        let flag = std::rc::Rc::new(RefCell::new(false));
        let f2 = flag.clone();
        let result = sim.block_on(async move {
            let h = spawn(async move {
                sleep(Duration::from_secs(1)).await;
                *f2.borrow_mut() = true;
            });
            sleep(Duration::from_millis(1)).await;
            h.abort();
            h.await
        });
        assert_eq!(result, Err(Aborted));
        sim.run();
        assert!(!*flag.borrow(), "aborted task must not run to completion");
    }

    #[test]
    fn abort_after_finish_returns_value() {
        let mut sim = Sim::new(1);
        let result = sim.block_on(async {
            let h = spawn(async { 5 });
            sleep(Duration::from_millis(1)).await;
            h.abort(); // too late, already finished
            h.await
        });
        assert_eq!(result, Ok(5));
    }

    #[test]
    fn quiescent_reports_blocked_tasks() {
        let mut sim = Sim::new(1);
        sim.spawn(async {
            // A future that never resolves and holds no timer.
            std::future::pending::<()>().await;
        });
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::Quiescent { pending_tasks: 1 });
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn block_on_deadlock_panics() {
        let mut sim = Sim::new(1);
        sim.block_on(std::future::pending::<()>());
    }

    #[test]
    fn identical_seeds_identical_schedules() {
        fn run(seed: u64) -> (u64, Vec<u64>) {
            let mut sim = Sim::new(seed);
            let out = std::rc::Rc::new(RefCell::new(Vec::new()));
            let o = out.clone();
            sim.block_on(async move {
                for _ in 0..10 {
                    let ms = with_rng(|r| rand::Rng::gen_range(r, 1..50));
                    sleep(Duration::from_millis(ms)).await;
                    o.borrow_mut().push(now().as_nanos());
                }
            });
            let events = out.borrow().clone();
            (sim.now().as_nanos(), events)
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0);
    }

    #[test]
    fn nested_spawn_inside_task() {
        let mut sim = Sim::new(1);
        let total = sim.block_on(async {
            let mut handles = Vec::new();
            for i in 0..10u64 {
                handles.push(spawn(async move {
                    sleep(Duration::from_millis(i)).await;
                    i
                }));
            }
            let mut sum = 0;
            for h in handles {
                sum += h.await.unwrap();
            }
            sum
        });
        assert_eq!(total, 45);
    }

    #[test]
    fn enter_allows_prebuilding() {
        let sim = Sim::new(1);
        sim.enter(|| {
            assert_eq!(now(), SimTime::ZERO);
            let _h = spawn(async {});
        });
    }
}

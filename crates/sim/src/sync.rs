//! Task-to-task synchronisation: oneshot channels, unbounded mpsc channels
//! and a notification cell, mirroring the tokio::sync API shape.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// oneshot
// ---------------------------------------------------------------------------

/// Single-value channel primitives.
pub mod oneshot {
    use super::*;

    struct Inner<T> {
        value: Option<T>,
        waker: Option<Waker>,
        closed: bool,
    }

    /// Sending half; consumed on send.
    pub struct Sender<T> {
        inner: Rc<RefCell<Inner<T>>>,
    }

    /// Receiving half; awaits the value.
    pub struct Receiver<T> {
        inner: Rc<RefCell<Inner<T>>>,
    }

    /// Error: the sender was dropped without sending.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "oneshot sender dropped without sending")
        }
    }
    impl std::error::Error for RecvError {}

    /// Creates a oneshot channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Rc::new(RefCell::new(Inner {
            value: None,
            waker: None,
            closed: false,
        }));
        (
            Sender {
                inner: Rc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Sends the value; `Err(v)` if the receiver is gone.
        pub fn send(self, v: T) -> Result<(), T> {
            let mut inner = self.inner.borrow_mut();
            if inner.closed {
                return Err(v);
            }
            inner.value = Some(v);
            if let Some(w) = inner.waker.take() {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.inner.borrow_mut();
            inner.closed = true;
            if let Some(w) = inner.waker.take() {
                w.wake();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.borrow_mut().closed = true;
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, RecvError>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut inner = self.inner.borrow_mut();
            if let Some(v) = inner.value.take() {
                return Poll::Ready(Ok(v));
            }
            if inner.closed {
                return Poll::Ready(Err(RecvError));
            }
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// mpsc (unbounded)
// ---------------------------------------------------------------------------

/// Unbounded multi-producer single-consumer channel primitives.
pub mod mpsc {
    use super::*;

    struct Inner<T> {
        queue: VecDeque<T>,
        recv_waker: Option<Waker>,
        senders: usize,
        receiver_alive: bool,
    }

    /// Cloneable sending half.
    pub struct Sender<T> {
        inner: Rc<RefCell<Inner<T>>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: Rc<RefCell<Inner<T>>>,
    }

    /// Error: the receiver was dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "mpsc receiver dropped")
        }
    }
    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Rc::new(RefCell::new(Inner {
            queue: VecDeque::new(),
            recv_waker: None,
            senders: 1,
            receiver_alive: true,
        }));
        (
            Sender {
                inner: Rc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.borrow_mut().senders += 1;
            Sender {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.inner.borrow_mut();
            inner.senders -= 1;
            if inner.senders == 0 {
                if let Some(w) = inner.recv_waker.take() {
                    w.wake();
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.borrow_mut().receiver_alive = false;
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a value; `Err` if the receiver is gone.
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            let mut inner = self.inner.borrow_mut();
            if !inner.receiver_alive {
                return Err(SendError(v));
            }
            inner.queue.push_back(v);
            if let Some(w) = inner.recv_waker.take() {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Awaits the next value; `None` once all senders are gone and the
        /// queue is drained.
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv { rx: self }
        }

        /// Non-blocking pop.
        pub fn try_recv(&mut self) -> Option<T> {
            self.inner.borrow_mut().queue.pop_front()
        }

        /// Number of queued values.
        pub fn len(&self) -> usize {
            self.inner.borrow_mut().queue.len()
        }

        /// `true` when no values are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Future returned by [`Receiver::recv`].
    pub struct Recv<'a, T> {
        rx: &'a mut Receiver<T>,
    }

    impl<T> Future for Recv<'_, T> {
        type Output = Option<T>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut inner = self.rx.inner.borrow_mut();
            if let Some(v) = inner.queue.pop_front() {
                return Poll::Ready(Some(v));
            }
            if inner.senders == 0 {
                return Poll::Ready(None);
            }
            inner.recv_waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Notify
// ---------------------------------------------------------------------------

/// A level-triggered notification cell: `notified().await` completes once
/// [`Notify::notify_one`] has been called (permits do not accumulate beyond
/// one, like `tokio::sync::Notify`).
pub struct Notify {
    inner: RefCell<NotifyInner>,
}

struct NotifyInner {
    permit: bool,
    waiters: Vec<Waker>,
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// Creates an un-notified cell.
    pub fn new() -> Self {
        Notify {
            inner: RefCell::new(NotifyInner {
                permit: false,
                waiters: Vec::new(),
            }),
        }
    }

    /// Stores a single permit and wakes one waiter (all waiters are woken;
    /// one will consume the permit, others re-park — adequate for the
    /// simulator's single-threaded determinism).
    pub fn notify_one(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.permit = true;
        for w in inner.waiters.drain(..) {
            w.wake();
        }
    }

    /// Waits for a permit.
    pub fn notified(&self) -> Notified<'_> {
        Notified { notify: self }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified<'a> {
    notify: &'a Notify,
}

impl Future for Notified<'_> {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.notify.inner.borrow_mut();
        if inner.permit {
            inner.permit = false;
            return Poll::Ready(());
        }
        inner.waiters.push(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{spawn, Sim};
    use crate::timer::sleep;
    use std::time::Duration;

    #[test]
    fn oneshot_roundtrip() {
        let mut sim = Sim::new(1);
        let v = sim.block_on(async {
            let (tx, rx) = oneshot::channel();
            spawn(async move {
                sleep(Duration::from_millis(5)).await;
                tx.send(42).unwrap();
            });
            rx.await.unwrap()
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn oneshot_sender_dropped() {
        let mut sim = Sim::new(1);
        let r = sim.block_on(async {
            let (tx, rx) = oneshot::channel::<u32>();
            drop(tx);
            rx.await
        });
        assert_eq!(r, Err(oneshot::RecvError));
    }

    #[test]
    fn oneshot_send_to_dropped_receiver() {
        let mut sim = Sim::new(1);
        sim.block_on(async {
            let (tx, rx) = oneshot::channel::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(1));
        });
    }

    #[test]
    fn mpsc_preserves_order_across_senders() {
        let mut sim = Sim::new(1);
        let got = sim.block_on(async {
            let (tx, mut rx) = mpsc::unbounded();
            for i in 0..3u32 {
                let tx = tx.clone();
                spawn(async move {
                    sleep(Duration::from_millis(u64::from(i) * 10)).await;
                    tx.send(i).unwrap();
                });
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn mpsc_recv_none_when_senders_gone() {
        let mut sim = Sim::new(1);
        let r = sim.block_on(async {
            let (tx, mut rx) = mpsc::unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            (rx.recv().await, rx.recv().await)
        });
        assert_eq!(r, (Some(9), None));
    }

    #[test]
    fn mpsc_send_after_receiver_drop_errors() {
        let mut sim = Sim::new(1);
        sim.block_on(async {
            let (tx, rx) = mpsc::unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        });
    }

    #[test]
    fn notify_wakes_waiter() {
        let mut sim = Sim::new(1);
        let t = sim.block_on(async {
            let n = std::rc::Rc::new(Notify::new());
            let n2 = n.clone();
            spawn(async move {
                sleep(Duration::from_millis(7)).await;
                n2.notify_one();
            });
            n.notified().await;
            crate::executor::now()
        });
        assert_eq!(t.as_millis(), 7);
    }

    #[test]
    fn notify_permit_is_consumed() {
        let mut sim = Sim::new(1);
        sim.block_on(async {
            let n = Notify::new();
            n.notify_one();
            n.notified().await; // consumes the stored permit
            let waited = crate::timer::timeout(Duration::from_millis(1), n.notified()).await;
            assert!(waited.is_err(), "second wait must block");
        });
    }
}

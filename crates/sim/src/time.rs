//! Virtual time: [`SimTime`] instants on the simulated clock.
//!
//! The simulator advances a nanosecond-resolution clock only when there is
//! nothing left to do at the current instant, so timestamps recorded from a
//! run are exact rather than jittery. This is what gives the testbed the
//! sub-millisecond "packet capture accuracy" the paper relies on (§4.3) —
//! here the accuracy is perfect by construction.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulated clock, measured in nanoseconds since the
/// start of the simulation.
///
/// `SimTime` is to the simulator what `std::time::Instant` is to a real
/// program, except that it is serializable, comparable across runs, and
/// starts at [`SimTime::ZERO`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (used as an "infinite" deadline).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `n` nanoseconds after simulation start.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// Creates an instant `us` microseconds after simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float (useful for plotting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self - earlier`, or `None` if `earlier` is later than `self`.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration::from_nanos)
    }

    /// `self - earlier`, clamped to zero if `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_nanos(d)))
    }
}

/// Converts a `Duration` to simulator nanoseconds, saturating at `u64::MAX`.
///
/// Durations beyond ~584 years are treated as infinite, which is far beyond
/// any timeout a network client configures.
pub fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_duration_since`] when order is uncertain.
    fn sub(self, rhs: SimTime) -> Duration {
        self.checked_duration_since(rhs)
            .expect("SimTime subtraction underflow: rhs is later than self")
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(duration_nanos(rhs)))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1_000_000_000;
        let frac = self.0 % 1_000_000_000;
        if frac == 0 {
            write!(f, "{secs}s")
        } else if frac.is_multiple_of(1_000_000) {
            write!(f, "{secs}.{:03}s", frac / 1_000_000)
        } else if frac.is_multiple_of(1_000) {
            write!(f, "{secs}.{:06}s", frac / 1_000)
        } else {
            write!(f, "{secs}.{frac:09}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_millis(1), SimTime::from_nanos(1_000_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(250);
        let u = t + Duration::from_millis(50);
        assert_eq!(u.as_millis(), 300);
        assert_eq!(u - t, Duration::from_millis(50));
        assert_eq!(u - Duration::from_millis(300), SimTime::ZERO);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::MAX.saturating_add(Duration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_secs(5)),
            Duration::ZERO
        );
        assert_eq!(SimTime::ZERO - Duration::from_secs(1), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }

    #[test]
    fn checked_duration_since() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(30);
        assert_eq!(b.checked_duration_since(a), Some(Duration::from_millis(20)));
        assert_eq!(a.checked_duration_since(b), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2s");
        assert_eq!(SimTime::from_millis(1250).to_string(), "1.250s");
        assert_eq!(SimTime::from_micros(1_000_500).to_string(), "1.000500s");
        assert_eq!(SimTime::from_nanos(1).to_string(), "0.000000001s");
    }

    #[test]
    fn huge_duration_saturates() {
        assert_eq!(duration_nanos(Duration::from_secs(u64::MAX)), u64::MAX);
    }
}

//! Property-based tests of the runtime's scheduling invariants.

use lazyeye_sim::{sleep, spawn, with_rng, Sim, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timers always fire in deadline order, whatever order they are
    /// registered in.
    #[test]
    fn timers_fire_in_deadline_order(delays in proptest::collection::vec(0u64..10_000, 1..40)) {
        let mut sim = Sim::new(0);
        let fired: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for &d in &delays {
            let fired = Rc::clone(&fired);
            sim.spawn(async move {
                sleep(Duration::from_millis(d)).await;
                fired.borrow_mut().push(d);
            });
        }
        sim.run();
        let got = fired.borrow().clone();
        prop_assert_eq!(got.len(), delays.len());
        let mut sorted = got.clone();
        sorted.sort_unstable();
        prop_assert_eq!(got, sorted, "fire order must be deadline order");
    }

    /// The clock ends exactly at the maximum deadline (never beyond).
    #[test]
    fn clock_stops_at_last_timer(delays in proptest::collection::vec(1u64..5_000, 1..20)) {
        let mut sim = Sim::new(0);
        for &d in &delays {
            sim.spawn(async move { sleep(Duration::from_millis(d)).await });
        }
        sim.run();
        prop_assert_eq!(sim.now(), SimTime::from_millis(*delays.iter().max().unwrap()));
    }

    /// Same seed, same program => identical RNG streams and final clock.
    #[test]
    fn seeded_runs_are_identical(seed in any::<u64>(), n in 1usize..50) {
        fn run(seed: u64, n: usize) -> (u64, Vec<u64>) {
            let mut sim = Sim::new(seed);
            let out = Rc::new(RefCell::new(Vec::new()));
            let o = Rc::clone(&out);
            sim.block_on(async move {
                for _ in 0..n {
                    let ms = with_rng(|r| rand::Rng::gen_range(r, 1u64..100));
                    sleep(Duration::from_millis(ms)).await;
                    o.borrow_mut().push(ms);
                }
            });
            let v = out.borrow().clone();
            (sim.now().as_nanos(), v)
        }
        prop_assert_eq!(run(seed, n), run(seed, n));
    }

    /// Nested timeout layers resolve to the smallest deadline.
    #[test]
    fn nested_timeouts_resolve_to_min(a in 1u64..1000, b in 1u64..1000) {
        let mut sim = Sim::new(1);
        sim.block_on(async move {
            let _ = lazyeye_sim::timeout(
                Duration::from_millis(a),
                lazyeye_sim::timeout(
                    Duration::from_millis(b),
                    std::future::pending::<()>(),
                ),
            )
            .await;
        });
        prop_assert_eq!(sim.now(), SimTime::from_millis(a.min(b)));
    }

    /// join_all preserves order and waits for the slowest.
    #[test]
    fn join_all_semantics(delays in proptest::collection::vec(0u64..2000, 1..20)) {
        let mut sim = Sim::new(1);
        let delays2 = delays.clone();
        let out = sim.block_on(async move {
            lazyeye_sim::join_all(delays2.into_iter().map(|d| async move {
                sleep(Duration::from_millis(d)).await;
                d
            }))
            .await
        });
        prop_assert_eq!(&out, &delays);
        prop_assert_eq!(sim.now(), SimTime::from_millis(*delays.iter().max().unwrap()));
    }

    /// Aborting any subset of tasks never deadlocks the run and the
    /// remaining tasks still finish.
    #[test]
    fn aborts_never_wedge_the_executor(
        n in 1usize..30,
        abort_mask in any::<u32>(),
    ) {
        let mut sim = Sim::new(2);
        let done: Rc<RefCell<usize>> = Rc::new(RefCell::new(0));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let done = Rc::clone(&done);
                sim.spawn(async move {
                    sleep(Duration::from_millis(10 + i as u64)).await;
                    *done.borrow_mut() += 1;
                })
            })
            .collect();
        let mut aborted = 0;
        for (i, h) in handles.iter().enumerate() {
            if abort_mask & (1 << (i % 32)) != 0 {
                h.abort();
                aborted += 1;
            }
        }
        sim.run();
        // Aborted before their timers fired (abort happens at t=0).
        prop_assert_eq!(*done.borrow(), n - aborted);
    }

    /// mpsc delivers every message exactly once, in send order per sender.
    #[test]
    fn mpsc_exactly_once(counts in proptest::collection::vec(1usize..20, 1..5)) {
        let mut sim = Sim::new(3);
        let total: usize = counts.iter().sum();
        let counts2 = counts.clone();
        let received = sim.block_on(async move {
            let (tx, mut rx) = lazyeye_sim::sync::mpsc::unbounded::<(usize, usize)>();
            for (sender, &count) in counts2.iter().enumerate() {
                let tx = tx.clone();
                spawn(async move {
                    for seq in 0..count {
                        sleep(Duration::from_millis((seq * 7 + sender) as u64)).await;
                        tx.send((sender, seq)).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<(usize, usize)> = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        prop_assert_eq!(received.len(), total);
        // Per-sender order is monotone.
        for sender in 0..counts.len() {
            let seqs: Vec<usize> = received
                .iter()
                .filter(|(s, _)| *s == sender)
                .map(|(_, q)| *q)
                .collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(seqs, sorted);
        }
    }
}

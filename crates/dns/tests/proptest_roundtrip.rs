//! Property-based tests: every well-formed message survives an
//! encode→decode roundtrip, and the decoder never panics on garbage.

use lazyeye_dns::{Message, Name, RData, Rcode, Record, RrType, Soa, SvcParam, SvcParams};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]([a-z0-9-]{0,14})").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 0..5).prop_map(|labels| {
        let s = labels.join(".");
        Name::parse(&s).unwrap()
    })
}

fn arb_ipv4() -> impl Strategy<Value = std::net::Ipv4Addr> {
    any::<u32>().prop_map(std::net::Ipv4Addr::from)
}

fn arb_ipv6() -> impl Strategy<Value = std::net::Ipv6Addr> {
    any::<u128>().prop_map(std::net::Ipv6Addr::from)
}

fn arb_svc_params() -> impl Strategy<Value = SvcParams> {
    (
        1u16..100,
        arb_name(),
        proptest::option::of(proptest::collection::vec(arb_ipv4(), 1..4)),
        proptest::option::of(proptest::collection::vec(arb_ipv6(), 1..4)),
        proptest::option::of(any::<u16>()),
        proptest::bool::ANY,
    )
        .prop_map(|(prio, target, v4, v6, port, ech)| {
            let mut p = SvcParams::service(prio, target);
            p = p.with(SvcParam::Alpn(vec![b"h2".to_vec(), b"h3".to_vec()]));
            if let Some(v4) = v4 {
                p = p.with(SvcParam::Ipv4Hint(v4));
            }
            if let Some(v6) = v6 {
                p = p.with(SvcParam::Ipv6Hint(v6));
            }
            if let Some(port) = port {
                p = p.with(SvcParam::Port(port));
            }
            if ech {
                p = p.with(SvcParam::Ech(vec![0xEC, 0x48]));
            }
            p
        })
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        arb_ipv4().prop_map(RData::A),
        arb_ipv6().prop_map(RData::Aaaa),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name()).prop_map(|(p, n)| RData::Mx(p, n)),
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..3)
            .prop_map(RData::Txt),
        (arb_name(), arb_name(), any::<u32>()).prop_map(|(m, r, serial)| {
            RData::Soa(Soa {
                mname: m,
                rname: r,
                serial,
                refresh: 7200,
                retry: 3600,
                expire: 86400,
                minimum: 300,
            })
        }),
        arb_svc_params().prop_map(RData::Svcb),
        arb_svc_params().prop_map(RData::Https),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), 0u32..86400, arb_rdata()).prop_map(|(n, ttl, rd)| Record::new(n, ttl, rd))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        proptest::sample::select(vec![RrType::A, RrType::Aaaa, RrType::Https, RrType::Ns]),
        proptest::collection::vec(arb_record(), 0..6),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::sample::select(vec![Rcode::NoError, Rcode::NxDomain, Rcode::ServFail]),
    )
        .prop_map(|(id, qname, qtype, ans, auth, add, rcode)| {
            let q = Message::query(id, qname, qtype);
            let mut m = Message::response_to(&q, rcode, true);
            m.answers = ans;
            m.authorities = auth;
            m.additionals = add;
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let wire = msg.encode();
        let back = Message::decode(&wire).expect("decode of own encoding");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_message(
        msg in arb_message(),
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8),
    ) {
        let mut wire = msg.encode();
        for (pos, val) in flips {
            if wire.is_empty() { break; }
            let idx = pos as usize % wire.len();
            wire[idx] = val;
        }
        let _ = Message::decode(&wire);
    }

    #[test]
    fn name_roundtrip(name in arb_name()) {
        let mut buf = Vec::new();
        name.encode_uncompressed(&mut buf);
        let mut pos = 0;
        let back = Name::decode(&buf, &mut pos).unwrap();
        prop_assert_eq!(back, name);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn compressed_names_decode_identically(names in proptest::collection::vec(arb_name(), 1..8)) {
        let mut buf = Vec::new();
        let mut table = lazyeye_dns::CompressMap::new();
        for n in &names {
            n.encode_compressed(&mut buf, &mut table);
        }
        let mut pos = 0;
        for n in &names {
            let back = Name::decode(&buf, &mut pos).unwrap();
            prop_assert_eq!(&back, n);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn display_parse_roundtrip(name in arb_name()) {
        let shown = name.to_string();
        let back = Name::parse(&shown).unwrap();
        prop_assert_eq!(back, name);
    }
}

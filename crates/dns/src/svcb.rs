//! SVCB/HTTPS RDATA (RFC 9460) — the records Happy Eyeballs v3 consumes
//! for protocol discovery (ALPN → QUIC/HTTP3, address hints, ECH configs).

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::DnsError;
use crate::name::Name;

/// Service parameter keys defined by RFC 9460 (plus opaque carriage).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SvcParam {
    /// `alpn` (1): protocol identifiers, e.g. `h2`, `h3`.
    Alpn(Vec<Vec<u8>>),
    /// `no-default-alpn` (2).
    NoDefaultAlpn,
    /// `port` (3).
    Port(u16),
    /// `ipv4hint` (4).
    Ipv4Hint(Vec<Ipv4Addr>),
    /// `ech` (5): opaque ECH config list — HEv3's top preference signal.
    Ech(Vec<u8>),
    /// `ipv6hint` (6).
    Ipv6Hint(Vec<Ipv6Addr>),
    /// Any other key, carried opaquely.
    Other(u16, Vec<u8>),
}

impl SvcParam {
    /// The parameter's wire key (defines the mandatory ascending order).
    pub fn key(&self) -> u16 {
        match self {
            SvcParam::Alpn(_) => 1,
            SvcParam::NoDefaultAlpn => 2,
            SvcParam::Port(_) => 3,
            SvcParam::Ipv4Hint(_) => 4,
            SvcParam::Ech(_) => 5,
            SvcParam::Ipv6Hint(_) => 6,
            SvcParam::Other(k, _) => *k,
        }
    }

    fn encode_value(&self, out: &mut Vec<u8>) {
        match self {
            SvcParam::Alpn(ids) => {
                for id in ids {
                    out.push(id.len().min(255) as u8);
                    out.extend_from_slice(&id[..id.len().min(255)]);
                }
            }
            SvcParam::NoDefaultAlpn => {}
            SvcParam::Port(p) => out.extend_from_slice(&p.to_be_bytes()),
            SvcParam::Ipv4Hint(addrs) => {
                for a in addrs {
                    out.extend_from_slice(&a.octets());
                }
            }
            SvcParam::Ech(cfg) => out.extend_from_slice(cfg),
            SvcParam::Ipv6Hint(addrs) => {
                for a in addrs {
                    out.extend_from_slice(&a.octets());
                }
            }
            SvcParam::Other(_, raw) => out.extend_from_slice(raw),
        }
    }

    fn decode_value(key: u16, raw: &[u8]) -> Result<SvcParam, DnsError> {
        match key {
            1 => {
                let mut ids = Vec::new();
                let mut pos = 0;
                while pos < raw.len() {
                    let len = raw[pos] as usize;
                    pos += 1;
                    if pos + len > raw.len() {
                        return Err(DnsError::BadRdata("alpn id length"));
                    }
                    ids.push(raw[pos..pos + len].to_vec());
                    pos += len;
                }
                Ok(SvcParam::Alpn(ids))
            }
            2 => {
                if !raw.is_empty() {
                    return Err(DnsError::BadRdata("no-default-alpn with value"));
                }
                Ok(SvcParam::NoDefaultAlpn)
            }
            3 => {
                if raw.len() != 2 {
                    return Err(DnsError::BadRdata("port length"));
                }
                Ok(SvcParam::Port(u16::from_be_bytes([raw[0], raw[1]])))
            }
            4 => {
                if !raw.len().is_multiple_of(4) || raw.is_empty() {
                    return Err(DnsError::BadRdata("ipv4hint length"));
                }
                Ok(SvcParam::Ipv4Hint(
                    raw.chunks_exact(4)
                        .map(|c| Ipv4Addr::new(c[0], c[1], c[2], c[3]))
                        .collect(),
                ))
            }
            5 => Ok(SvcParam::Ech(raw.to_vec())),
            6 => {
                if !raw.len().is_multiple_of(16) || raw.is_empty() {
                    return Err(DnsError::BadRdata("ipv6hint length"));
                }
                Ok(SvcParam::Ipv6Hint(
                    raw.chunks_exact(16)
                        .map(|c| {
                            let mut o = [0u8; 16];
                            o.copy_from_slice(c);
                            Ipv6Addr::from(o)
                        })
                        .collect(),
                ))
            }
            other => Ok(SvcParam::Other(other, raw.to_vec())),
        }
    }
}

/// SVCB/HTTPS RDATA: priority, target name and parameters.
///
/// `priority == 0` is AliasMode (target is an alias); `> 0` is ServiceMode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SvcParams {
    /// SvcPriority.
    pub priority: u16,
    /// TargetName (`.` means "same as owner").
    pub target: Name,
    /// Parameters; kept sorted by key as the wire format requires.
    pub params: Vec<SvcParam>,
}

impl SvcParams {
    /// ServiceMode RDATA with no parameters yet.
    pub fn service(priority: u16, target: Name) -> SvcParams {
        SvcParams {
            priority,
            target,
            params: Vec::new(),
        }
    }

    /// Adds a parameter, keeping key order.
    pub fn with(mut self, p: SvcParam) -> SvcParams {
        self.params.push(p);
        self.params.sort_by_key(SvcParam::key);
        self
    }

    /// `true` if an `ech` parameter is present (HEv3's highest-preference
    /// protocol signal).
    pub fn has_ech(&self) -> bool {
        self.params.iter().any(|p| matches!(p, SvcParam::Ech(_)))
    }

    /// `true` if the ALPN list includes `h3` (QUIC).
    pub fn supports_h3(&self) -> bool {
        self.params.iter().any(|p| match p {
            SvcParam::Alpn(ids) => ids.iter().any(|id| id == b"h3"),
            _ => false,
        })
    }

    /// IPv6 address hints, if present.
    pub fn ipv6_hints(&self) -> Vec<Ipv6Addr> {
        self.params
            .iter()
            .find_map(|p| match p {
                SvcParam::Ipv6Hint(a) => Some(a.clone()),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// IPv4 address hints, if present.
    pub fn ipv4_hints(&self) -> Vec<Ipv4Addr> {
        self.params
            .iter()
            .find_map(|p| match p {
                SvcParam::Ipv4Hint(a) => Some(a.clone()),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// Declared alternative port, if any.
    pub fn port(&self) -> Option<u16> {
        self.params.iter().find_map(|p| match p {
            SvcParam::Port(port) => Some(*port),
            _ => None,
        })
    }

    /// Wire encoding (RFC 9460 §2.2): priority, uncompressed target,
    /// params in strictly ascending key order.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.priority.to_be_bytes());
        self.target.encode_uncompressed(out);
        let mut params = self.params.clone();
        params.sort_by_key(SvcParam::key);
        for p in params {
            out.extend_from_slice(&p.key().to_be_bytes());
            let mut val = Vec::new();
            p.encode_value(&mut val);
            out.extend_from_slice(&(val.len() as u16).to_be_bytes());
            out.extend_from_slice(&val);
        }
    }

    /// Decodes RDATA bytes.
    pub fn decode(raw: &[u8]) -> Result<SvcParams, DnsError> {
        if raw.len() < 2 {
            return Err(DnsError::Truncated);
        }
        let priority = u16::from_be_bytes([raw[0], raw[1]]);
        let mut pos = 2;
        let target = Name::decode(raw, &mut pos)?;
        let mut params = Vec::new();
        let mut last_key: Option<u16> = None;
        while pos < raw.len() {
            if pos + 4 > raw.len() {
                return Err(DnsError::Truncated);
            }
            let key = u16::from_be_bytes([raw[pos], raw[pos + 1]]);
            let len = u16::from_be_bytes([raw[pos + 2], raw[pos + 3]]) as usize;
            pos += 4;
            if pos + len > raw.len() {
                return Err(DnsError::Truncated);
            }
            if let Some(prev) = last_key {
                if key <= prev {
                    return Err(DnsError::BadRdata("svc params out of order"));
                }
            }
            last_key = Some(key);
            params.push(SvcParam::decode_value(key, &raw[pos..pos + len])?);
            pos += len;
        }
        Ok(SvcParams {
            priority,
            target,
            params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn sample() -> SvcParams {
        SvcParams::service(1, n("svc.example.com"))
            .with(SvcParam::Alpn(vec![b"h2".to_vec(), b"h3".to_vec()]))
            .with(SvcParam::Port(8443))
            .with(SvcParam::Ipv4Hint(vec!["192.0.2.1".parse().unwrap()]))
            .with(SvcParam::Ech(vec![0xAB, 0xCD]))
            .with(SvcParam::Ipv6Hint(vec!["2001:db8::1".parse().unwrap()]))
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let back = SvcParams::decode(&buf).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert!(p.has_ech());
        assert!(p.supports_h3());
        assert_eq!(p.port(), Some(8443));
        assert_eq!(p.ipv6_hints().len(), 1);
        assert_eq!(p.ipv4_hints().len(), 1);
    }

    #[test]
    fn params_are_key_sorted_on_wire() {
        let p = SvcParams::service(1, Name::root())
            .with(SvcParam::Ipv6Hint(vec!["2001:db8::1".parse().unwrap()]))
            .with(SvcParam::Alpn(vec![b"h3".to_vec()]));
        let mut buf = Vec::new();
        p.encode(&mut buf);
        // After priority(2) + root target(1): first key must be 1 (alpn).
        assert_eq!(u16::from_be_bytes([buf[3], buf[4]]), 1);
    }

    #[test]
    fn out_of_order_keys_rejected() {
        // priority=1, target=root, then keys 3 and 1 (descending).
        let raw = [
            0, 1, 0, // prio + root
            0, 3, 0, 2, 0x01, 0xBB, // port
            0, 1, 0, 0, // alpn (lower key after higher)
        ];
        assert!(matches!(
            SvcParams::decode(&raw),
            Err(DnsError::BadRdata(_))
        ));
    }

    #[test]
    fn alias_mode() {
        let p = SvcParams::service(0, n("alias.example.net"));
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let back = SvcParams::decode(&buf).unwrap();
        assert_eq!(back.priority, 0);
        assert!(!back.has_ech());
    }

    #[test]
    fn bad_hint_lengths_rejected() {
        // ipv4hint with 3 bytes.
        let raw = [0, 1, 0, 0, 4, 0, 3, 1, 2, 3];
        assert!(SvcParams::decode(&raw).is_err());
    }

    #[test]
    fn unknown_params_survive_roundtrip() {
        let p = SvcParams::service(16, Name::root()).with(SvcParam::Other(0x1234, vec![9, 9]));
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(SvcParams::decode(&buf).unwrap(), p);
    }
}

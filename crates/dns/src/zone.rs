//! Authoritative zone data and lookup semantics (answers, referrals,
//! NXDOMAIN/NODATA with SOA, CNAME chasing within a zone).

use crate::name::Name;
use crate::rr::{RData, Record, RrType, Soa};

/// One authoritative zone: an apex plus its records (including delegation
/// NS records at zone cuts and their glue).
#[derive(Clone, Debug)]
pub struct Zone {
    apex: Name,
    records: Vec<Record>,
}

/// The outcome of an authoritative lookup — maps directly onto the response
/// a name server builds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// Records of the queried type at the queried name (answer section).
    /// May be a CNAME chain ending in the target records.
    Records(Vec<Record>),
    /// The name lies below a zone cut: NS records for the authority
    /// section plus any in-zone glue for the additional section.
    Delegation {
        /// Delegation NS records.
        ns: Vec<Record>,
        /// Glue address records for the NS names, if present in this zone.
        glue: Vec<Record>,
    },
    /// The name exists, the type does not (NODATA): SOA for authority.
    NoData(Box<Record>),
    /// The name does not exist: SOA for authority.
    NxDomain(Box<Record>),
    /// The name is not within this zone at all.
    NotInZone,
}

impl Zone {
    /// Creates a zone with a generated SOA record at the apex.
    pub fn new(apex: Name) -> Zone {
        let soa = Record::new(
            apex.clone(),
            3600,
            RData::Soa(Soa {
                mname: apex.child("ns1").unwrap_or_else(|_| apex.clone()),
                rname: apex.child("hostmaster").unwrap_or_else(|_| apex.clone()),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        );
        Zone {
            apex,
            records: vec![soa],
        }
    }

    /// The zone apex.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Sets the negative-caching TTL (SOA minimum).
    pub fn set_negative_ttl(&mut self, ttl: u32) {
        for r in &mut self.records {
            if let RData::Soa(soa) = &mut r.rdata {
                soa.minimum = ttl;
            }
        }
    }

    /// Adds a record (builder style).
    ///
    /// # Panics
    /// Panics if the record's owner is outside the zone — a config bug in
    /// testbed fixtures.
    pub fn add(&mut self, record: Record) -> &mut Zone {
        assert!(
            record.name.is_subdomain_of(&self.apex),
            "record {} outside zone {}",
            record.name,
            self.apex
        );
        self.records.push(record);
        self
    }

    /// Convenience: add an A record.
    pub fn a(&mut self, name: &Name, addr: std::net::Ipv4Addr, ttl: u32) -> &mut Zone {
        self.add(Record::new(name.clone(), ttl, RData::A(addr)))
    }

    /// Convenience: add an AAAA record.
    pub fn aaaa(&mut self, name: &Name, addr: std::net::Ipv6Addr, ttl: u32) -> &mut Zone {
        self.add(Record::new(name.clone(), ttl, RData::Aaaa(addr)))
    }

    /// Convenience: add an NS record (apex or delegation).
    pub fn ns(&mut self, owner: &Name, nsdname: &Name, ttl: u32) -> &mut Zone {
        self.add(Record::new(owner.clone(), ttl, RData::Ns(nsdname.clone())))
    }

    /// The zone's SOA record.
    pub fn soa(&self) -> Record {
        self.records
            .iter()
            .find(|r| r.rtype() == RrType::Soa)
            .cloned()
            .expect("zone always has a SOA")
    }

    /// Names with NS records strictly below the apex (zone cuts).
    fn find_cut(&self, qname: &Name) -> Option<Name> {
        // Walk from qname upwards to (exclusive) apex, looking for a cut.
        // The *highest* cut wins (closest to the apex), matching RFC 1034
        // referral behaviour.
        let mut cuts: Vec<Name> = self
            .records
            .iter()
            .filter(|r| r.rtype() == RrType::Ns && r.name != self.apex)
            .map(|r| r.name.clone())
            .filter(|cut| qname.is_subdomain_of(cut))
            .collect();
        cuts.sort_by_key(Name::label_count);
        cuts.into_iter().next()
    }

    /// Performs the authoritative lookup for (qname, qtype).
    pub fn answer(&self, qname: &Name, qtype: RrType) -> ZoneAnswer {
        if !qname.is_subdomain_of(&self.apex) {
            return ZoneAnswer::NotInZone;
        }

        // Referral beats everything except apex data (NS queries *at* the
        // apex are authoritative data, not referrals).
        if let Some(cut) = self.find_cut(qname) {
            let ns: Vec<Record> = self
                .records
                .iter()
                .filter(|r| r.rtype() == RrType::Ns && r.name == cut)
                .cloned()
                .collect();
            let ns_names: Vec<&Name> = ns
                .iter()
                .filter_map(|r| match &r.rdata {
                    RData::Ns(n) => Some(n),
                    _ => None,
                })
                .collect();
            let glue: Vec<Record> = self
                .records
                .iter()
                .filter(|r| {
                    matches!(r.rtype(), RrType::A | RrType::Aaaa) && ns_names.contains(&&r.name)
                })
                .cloned()
                .collect();
            return ZoneAnswer::Delegation { ns, glue };
        }

        let at_name: Vec<&Record> = self.records.iter().filter(|r| &r.name == qname).collect();
        if at_name.is_empty() {
            return ZoneAnswer::NxDomain(Box::new(self.soa()));
        }

        let matching: Vec<Record> = at_name
            .iter()
            .filter(|r| r.rtype() == qtype)
            .map(|r| (*r).clone())
            .collect();
        if !matching.is_empty() {
            return ZoneAnswer::Records(matching);
        }

        // CNAME chase (single link, then recurse within the zone).
        if let Some(cname_rec) = at_name.iter().find(|r| r.rtype() == RrType::Cname) {
            if qtype != RrType::Cname {
                let mut chain = vec![(*cname_rec).clone()];
                if let RData::Cname(target) = &cname_rec.rdata {
                    // Target outside the zone or empty: return just the
                    // CNAME; the resolver restarts the query.
                    if let ZoneAnswer::Records(mut more) = self.answer(target, qtype) {
                        chain.append(&mut more);
                    }
                }
                return ZoneAnswer::Records(chain);
            }
        }

        ZoneAnswer::NoData(Box::new(self.soa()))
    }
}

/// A set of zones served by one authoritative server; lookup picks the zone
/// with the longest matching apex.
#[derive(Clone, Debug, Default)]
pub struct ZoneSet {
    zones: Vec<Zone>,
}

impl ZoneSet {
    /// Empty set.
    pub fn new() -> ZoneSet {
        ZoneSet::default()
    }

    /// Adds a zone.
    pub fn add(&mut self, zone: Zone) -> &mut ZoneSet {
        self.zones.push(zone);
        self
    }

    /// All zones.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// The zone best matching `qname` (longest apex), if any.
    pub fn find_zone(&self, qname: &Name) -> Option<&Zone> {
        self.zones
            .iter()
            .filter(|z| qname.is_subdomain_of(z.apex()))
            .max_by_key(|z| z.apex().label_count())
    }

    /// Full lookup across zones.
    pub fn answer(&self, qname: &Name, qtype: RrType) -> ZoneAnswer {
        match self.find_zone(qname) {
            Some(zone) => zone.answer(qname, qtype),
            None => ZoneAnswer::NotInZone,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn example_zone() -> Zone {
        let mut z = Zone::new(n("example.com"));
        z.ns(&n("example.com"), &n("ns1.example.com"), 3600);
        z.a(&n("ns1.example.com"), "192.0.2.53".parse().unwrap(), 3600);
        z.a(&n("www.example.com"), "192.0.2.1".parse().unwrap(), 300);
        z.aaaa(&n("www.example.com"), "2001:db8::1".parse().unwrap(), 300);
        // Delegation of sub.example.com.
        z.ns(&n("sub.example.com"), &n("ns1.sub.example.com"), 3600);
        z.a(
            &n("ns1.sub.example.com"),
            "192.0.2.54".parse().unwrap(),
            3600,
        );
        z.aaaa(
            &n("ns1.sub.example.com"),
            "2001:db8::54".parse().unwrap(),
            3600,
        );
        // CNAME.
        z.add(Record::new(
            n("alias.example.com"),
            300,
            RData::Cname(n("www.example.com")),
        ));
        z
    }

    #[test]
    fn positive_answer() {
        let z = example_zone();
        match z.answer(&n("www.example.com"), RrType::A) {
            ZoneAnswer::Records(rs) => {
                assert_eq!(rs.len(), 1);
                assert_eq!(rs[0].rdata, RData::A("192.0.2.1".parse().unwrap()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nodata_for_missing_type() {
        let z = example_zone();
        match z.answer(&n("www.example.com"), RrType::Mx) {
            ZoneAnswer::NoData(soa) => assert_eq!(soa.rtype(), RrType::Soa),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nxdomain_for_missing_name() {
        let z = example_zone();
        assert!(matches!(
            z.answer(&n("nope.example.com"), RrType::A),
            ZoneAnswer::NxDomain(_)
        ));
    }

    #[test]
    fn delegation_with_glue() {
        let z = example_zone();
        match z.answer(&n("deep.sub.example.com"), RrType::A) {
            ZoneAnswer::Delegation { ns, glue } => {
                assert_eq!(ns.len(), 1);
                assert_eq!(glue.len(), 2, "A + AAAA glue");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn query_at_cut_is_referral() {
        let z = example_zone();
        assert!(matches!(
            z.answer(&n("sub.example.com"), RrType::A),
            ZoneAnswer::Delegation { .. }
        ));
    }

    #[test]
    fn apex_ns_is_data_not_referral() {
        let z = example_zone();
        match z.answer(&n("example.com"), RrType::Ns) {
            ZoneAnswer::Records(rs) => assert_eq!(rs.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cname_chased_within_zone() {
        let z = example_zone();
        match z.answer(&n("alias.example.com"), RrType::A) {
            ZoneAnswer::Records(rs) => {
                assert_eq!(rs.len(), 2);
                assert_eq!(rs[0].rtype(), RrType::Cname);
                assert_eq!(rs[1].rtype(), RrType::A);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_of_zone_query() {
        let z = example_zone();
        assert_eq!(z.answer(&n("other.org"), RrType::A), ZoneAnswer::NotInZone);
    }

    #[test]
    fn zoneset_longest_match() {
        let mut set = ZoneSet::new();
        set.add(example_zone());
        let mut child = Zone::new(n("sub.example.com"));
        child.a(&n("x.sub.example.com"), "203.0.113.1".parse().unwrap(), 60);
        set.add(child);
        // The child zone wins for names under it.
        match set.answer(&n("x.sub.example.com"), RrType::A) {
            ZoneAnswer::Records(rs) => {
                assert_eq!(rs[0].rdata, RData::A("203.0.113.1".parse().unwrap()));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The parent still answers for its own names.
        assert!(matches!(
            set.answer(&n("www.example.com"), RrType::Aaaa),
            ZoneAnswer::Records(_)
        ));
    }

    #[test]
    fn negative_ttl_settable() {
        let mut z = example_zone();
        z.set_negative_ttl(30);
        if let RData::Soa(soa) = &z.soa().rdata {
            assert_eq!(soa.minimum, 30);
        } else {
            panic!("soa missing");
        }
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn adding_out_of_zone_record_panics() {
        let mut z = Zone::new(n("example.com"));
        z.a(&n("www.other.org"), "192.0.2.1".parse().unwrap(), 60);
    }
}

//! # lazyeye-dns — DNS from scratch
//!
//! Wire format, records and zones for the Happy Eyeballs testbed. The paper
//! runs a *custom authoritative name server* that delays responses per
//! record type (§4.1(ii)); this crate provides the protocol layer that
//! server ([`lazyeye-authns`](https://crates.io/crates/lazyeye-authns)), the
//! stub/recursive resolvers, and the HEv3 SVCB/HTTPS processing are built
//! on:
//!
//! * [`Name`] — labels, case-insensitive comparison, compression-aware
//!   wire codec;
//! * [`Record`] / [`RData`] — A, AAAA, NS, CNAME, SOA, PTR, MX, TXT, OPT
//!   and the RFC 9460 [`SvcParams`] for SVCB/HTTPS (the records HEv3
//!   consumes for protocol discovery);
//! * [`Message`] — header/flags/sections, encode with compression, decode
//!   with pointer-loop protection;
//! * [`Zone`] / [`ZoneSet`] — authoritative data with referrals, glue,
//!   NXDOMAIN/NODATA semantics and in-zone CNAME chasing.
//!
//! ```
//! use lazyeye_dns::{Message, Name, RrType, Rcode, Record, RData, Zone, ZoneAnswer};
//!
//! let mut zone = Zone::new(Name::parse("example.com").unwrap());
//! let www = Name::parse("www.example.com").unwrap();
//! zone.aaaa(&www, "2001:db8::1".parse().unwrap(), 300);
//!
//! let q = Message::query(1, www.clone(), RrType::Aaaa);
//! if let ZoneAnswer::Records(rs) = zone.answer(&www, RrType::Aaaa) {
//!     let mut resp = Message::response_to(&q, Rcode::NoError, true);
//!     resp.answers = rs;
//!     let wire = resp.encode();
//!     assert_eq!(Message::decode(&wire).unwrap(), resp);
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod message;
mod name;
mod rr;
mod svcb;
mod zone;

pub use error::DnsError;
pub use message::{Header, Message, Question, Rcode};
pub use name::{CompressMap, Labels, Name};
pub use rr::{RData, Record, RrClass, RrType, Soa};
pub use svcb::{SvcParam, SvcParams};
pub use zone::{Zone, ZoneAnswer, ZoneSet};

//! Decode/encode failures.

/// Errors raised while encoding or decoding DNS wire data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnsError {
    /// Input ended before the structure was complete.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label exceeded 63 bytes.
    LabelTooLong,
    /// An encoded name exceeded 255 bytes.
    NameTooLong,
    /// RDATA did not match its declared type/length.
    BadRdata(&'static str),
    /// A domain-name string could not be parsed.
    BadName(String),
    /// Unknown or unsupported class.
    BadClass(u16),
}

impl std::fmt::Display for DnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnsError::Truncated => write!(f, "message truncated"),
            DnsError::BadPointer => write!(f, "invalid compression pointer"),
            DnsError::LabelTooLong => write!(f, "label longer than 63 bytes"),
            DnsError::NameTooLong => write!(f, "name longer than 255 bytes"),
            DnsError::BadRdata(what) => write!(f, "malformed RDATA: {what}"),
            DnsError::BadName(s) => write!(f, "malformed domain name: {s:?}"),
            DnsError::BadClass(c) => write!(f, "unsupported class {c}"),
        }
    }
}

impl std::error::Error for DnsError {}

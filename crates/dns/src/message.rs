//! DNS messages: header, questions, sections, wire codec.

use crate::error::DnsError;
use crate::name::Name;
use crate::rr::{RData, Record, RrClass, RrType};

/// Response codes (RFC 1035 §4.1.1, subset).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist (authoritative).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused.
    Refused,
    /// Any other code.
    Other(u8),
}

impl Rcode {
    /// Wire code (4 bits).
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(c) => c & 0x0F,
        }
    }

    /// From wire code.
    pub fn from_code(c: u8) -> Rcode {
        match c & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Message header: id plus flags. Counts are derived from the sections at
/// encode time.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Header {
    /// Transaction id.
    pub id: u16,
    /// `true` for responses.
    pub qr: bool,
    /// Opcode (0 = standard query).
    pub opcode: u8,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    /// A standard recursive query header.
    pub fn query(id: u16) -> Header {
        Header {
            id,
            qr: false,
            opcode: 0,
            aa: false,
            tc: false,
            rd: true,
            ra: false,
            rcode: Rcode::NoError,
        }
    }
}

/// A question section entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: RrType,
    /// Queried class.
    pub qclass: RrClass,
}

impl Question {
    /// IN-class question.
    pub fn new(name: Name, qtype: RrType) -> Question {
        Question {
            name,
            qtype,
            qclass: RrClass::In,
        }
    }
}

/// A complete DNS message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Message {
    /// Header (flags; section counts derived).
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section (NS/SOA for referrals and negatives).
    pub authorities: Vec<Record>,
    /// Additional section (glue, OPT).
    pub additionals: Vec<Record>,
}

impl Message {
    /// Builds a standard query for one (name, type).
    pub fn query(id: u16, name: Name, qtype: RrType) -> Message {
        Message {
            header: Header::query(id),
            questions: vec![Question::new(name, qtype)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Builds an empty response to `query`, echoing id and question.
    pub fn response_to(query: &Message, rcode: Rcode, authoritative: bool) -> Message {
        Message {
            header: Header {
                id: query.header.id,
                qr: true,
                opcode: query.header.opcode,
                aa: authoritative,
                tc: false,
                rd: query.header.rd,
                ra: false,
                rcode,
            },
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// The first question, if present (all traffic here is single-question).
    pub fn question(&self) -> Option<&Question> {
        self.questions.first()
    }

    /// Encodes to wire format with name compression in owner names.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        let mut compress = crate::name::CompressMap::new();
        out.extend_from_slice(&self.header.id.to_be_bytes());
        let mut flags: u16 = 0;
        if self.header.qr {
            flags |= 0x8000;
        }
        flags |= u16::from(self.header.opcode & 0x0F) << 11;
        if self.header.aa {
            flags |= 0x0400;
        }
        if self.header.tc {
            flags |= 0x0200;
        }
        if self.header.rd {
            flags |= 0x0100;
        }
        if self.header.ra {
            flags |= 0x0080;
        }
        flags |= u16::from(self.header.rcode.code());
        out.extend_from_slice(&flags.to_be_bytes());
        for count in [
            self.questions.len(),
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len(),
        ] {
            out.extend_from_slice(&(count as u16).to_be_bytes());
        }
        for q in &self.questions {
            q.name.encode_compressed(&mut out, &mut compress);
            out.extend_from_slice(&q.qtype.code().to_be_bytes());
            out.extend_from_slice(&q.qclass.code().to_be_bytes());
        }
        for r in self
            .answers
            .iter()
            .chain(self.authorities.iter())
            .chain(self.additionals.iter())
        {
            r.name.encode_compressed(&mut out, &mut compress);
            out.extend_from_slice(&r.rtype().code().to_be_bytes());
            out.extend_from_slice(&r.class.code().to_be_bytes());
            out.extend_from_slice(&r.ttl.to_be_bytes());
            // RDATA goes straight into the message buffer; the 2-byte
            // length prefix is back-patched (no per-record scratch vec).
            let len_pos = out.len();
            out.extend_from_slice(&[0, 0]);
            r.rdata.encode(&mut out);
            let rdata_len = out.len() - len_pos - 2;
            out[len_pos..len_pos + 2].copy_from_slice(&(rdata_len as u16).to_be_bytes());
        }
        out
    }

    /// Decodes from wire format.
    pub fn decode(msg: &[u8]) -> Result<Message, DnsError> {
        if msg.len() < 12 {
            return Err(DnsError::Truncated);
        }
        let id = u16::from_be_bytes([msg[0], msg[1]]);
        let flags = u16::from_be_bytes([msg[2], msg[3]]);
        let header = Header {
            id,
            qr: flags & 0x8000 != 0,
            opcode: ((flags >> 11) & 0x0F) as u8,
            aa: flags & 0x0400 != 0,
            tc: flags & 0x0200 != 0,
            rd: flags & 0x0100 != 0,
            ra: flags & 0x0080 != 0,
            rcode: Rcode::from_code((flags & 0x0F) as u8),
        };
        let qd = u16::from_be_bytes([msg[4], msg[5]]) as usize;
        let an = u16::from_be_bytes([msg[6], msg[7]]) as usize;
        let ns = u16::from_be_bytes([msg[8], msg[9]]) as usize;
        let ar = u16::from_be_bytes([msg[10], msg[11]]) as usize;
        let mut pos = 12;
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let name = Name::decode(msg, &mut pos)?;
            if pos + 4 > msg.len() {
                return Err(DnsError::Truncated);
            }
            let qtype = RrType::from_code(u16::from_be_bytes([msg[pos], msg[pos + 1]]));
            let qclass = RrClass::from_code(u16::from_be_bytes([msg[pos + 2], msg[pos + 3]]));
            pos += 4;
            questions.push(Question {
                name,
                qtype,
                qclass,
            });
        }
        let mut sections = [
            Vec::with_capacity(an),
            Vec::with_capacity(ns),
            Vec::with_capacity(ar),
        ];
        for (idx, count) in [an, ns, ar].into_iter().enumerate() {
            for _ in 0..count {
                let name = Name::decode(msg, &mut pos)?;
                if pos + 10 > msg.len() {
                    return Err(DnsError::Truncated);
                }
                let rtype = RrType::from_code(u16::from_be_bytes([msg[pos], msg[pos + 1]]));
                let class = RrClass::from_code(u16::from_be_bytes([msg[pos + 2], msg[pos + 3]]));
                let ttl =
                    u32::from_be_bytes([msg[pos + 4], msg[pos + 5], msg[pos + 6], msg[pos + 7]]);
                let rd_len = u16::from_be_bytes([msg[pos + 8], msg[pos + 9]]) as usize;
                pos += 10;
                let rdata = RData::decode(rtype, msg, pos, rd_len)?;
                pos += rd_len;
                sections[idx].push(Record {
                    name,
                    class,
                    ttl,
                    rdata,
                });
            }
        }
        let [answers, authorities, additionals] = sections;
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr::Soa;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0x1234, n("www.example.com"), RrType::Aaaa);
        let wire = q.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.header.id, 0x1234);
        assert!(back.header.rd);
        assert!(!back.header.qr);
    }

    #[test]
    fn response_roundtrip_with_all_sections() {
        let q = Message::query(7, n("www.example.com"), RrType::A);
        let mut resp = Message::response_to(&q, Rcode::NoError, true);
        resp.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        ));
        resp.answers.push(Record::new(
            n("www.example.com"),
            300,
            RData::A("192.0.2.2".parse().unwrap()),
        ));
        resp.authorities.push(Record::new(
            n("example.com"),
            3600,
            RData::Ns(n("ns1.example.com")),
        ));
        resp.additionals.push(Record::new(
            n("ns1.example.com"),
            3600,
            RData::A("192.0.2.53".parse().unwrap()),
        ));
        let wire = resp.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, resp);
        assert!(back.header.aa);
        assert!(back.header.qr);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let q = Message::query(1, n("really.long.subdomain.example.com"), RrType::A);
        let mut resp = Message::response_to(&q, Rcode::NoError, true);
        for i in 0..10u8 {
            resp.answers.push(Record::new(
                n("really.long.subdomain.example.com"),
                60,
                RData::A(std::net::Ipv4Addr::new(192, 0, 2, i)),
            ));
        }
        let wire = resp.encode();
        // header(12) + question(35+4) + 10 answers × (2-byte pointer + 14
        // bytes fixed/rdata) = 211; uncompressed would be 541.
        assert_eq!(wire.len(), 211);
        assert_eq!(Message::decode(&wire).unwrap(), resp);
    }

    #[test]
    fn nxdomain_with_soa() {
        let q = Message::query(2, n("missing.example.com"), RrType::Aaaa);
        let mut resp = Message::response_to(&q, Rcode::NxDomain, true);
        resp.authorities.push(Record::new(
            n("example.com"),
            300,
            RData::Soa(Soa {
                mname: n("ns1.example.com"),
                rname: n("hostmaster.example.com"),
                serial: 1,
                refresh: 2,
                retry: 3,
                expire: 4,
                minimum: 300,
            }),
        ));
        let back = Message::decode(&resp.encode()).unwrap();
        assert_eq!(back.header.rcode, Rcode::NxDomain);
        assert_eq!(back.authorities.len(), 1);
    }

    #[test]
    fn svcb_in_message_roundtrip() {
        use crate::svcb::{SvcParam, SvcParams};
        let q = Message::query(3, n("example.com"), RrType::Https);
        let mut resp = Message::response_to(&q, Rcode::NoError, true);
        resp.answers.push(Record::new(
            n("example.com"),
            300,
            RData::Https(
                SvcParams::service(1, Name::root())
                    .with(SvcParam::Alpn(vec![b"h3".to_vec()]))
                    .with(SvcParam::Ech(vec![1, 2, 3])),
            ),
        ));
        let back = Message::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(Message::decode(&[0; 11]), Err(DnsError::Truncated));
    }

    #[test]
    fn truncated_record_rejected() {
        let q = Message::query(1, n("a.example"), RrType::A);
        let wire = q.encode();
        assert!(Message::decode(&wire[..wire.len() - 2]).is_err());
    }

    #[test]
    fn rcode_roundtrip() {
        for rc in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::NotImp,
            Rcode::Refused,
            Rcode::Other(9),
        ] {
            assert_eq!(Rcode::from_code(rc.code()), rc);
        }
    }

    #[test]
    fn decode_is_case_preserving_but_compare_insensitive() {
        let q = Message::query(1, n("WwW.ExAmPlE.cOm"), RrType::A);
        let back = Message::decode(&q.encode()).unwrap();
        assert_eq!(back.questions[0].name, n("www.example.com"));
    }
}

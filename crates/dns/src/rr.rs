//! Resource records: types, classes, RDATA.

use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::DnsError;
use crate::name::Name;
use crate::svcb::SvcParams;

/// Record type codes. Covers everything the Happy Eyeballs ecosystem
/// touches (HEv2: AAAA/A; HEv3: SVCB/HTTPS; resolution: NS/CNAME/SOA/glue).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum RrType {
    /// IPv4 address (1).
    A,
    /// Authoritative name server (2).
    Ns,
    /// Canonical name (5).
    Cname,
    /// Start of authority (6).
    Soa,
    /// Domain name pointer (12).
    Ptr,
    /// Mail exchange (15).
    Mx,
    /// Text strings (16).
    Txt,
    /// IPv6 address (28).
    Aaaa,
    /// EDNS(0) pseudo-record (41).
    Opt,
    /// General-purpose service binding (64), RFC 9460.
    Svcb,
    /// HTTPS-specific service binding (65), RFC 9460.
    Https,
    /// Anything else.
    Unknown(u16),
}

impl RrType {
    /// Wire code.
    pub fn code(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Ptr => 12,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
            RrType::Svcb => 64,
            RrType::Https => 65,
            RrType::Unknown(c) => c,
        }
    }

    /// From wire code.
    pub fn from_code(c: u16) -> RrType {
        match c {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            12 => RrType::Ptr,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            64 => RrType::Svcb,
            65 => RrType::Https,
            other => RrType::Unknown(other),
        }
    }

    /// Mnemonic string ("A", "AAAA", ...).
    pub fn mnemonic(self) -> String {
        match self {
            RrType::A => "A".into(),
            RrType::Ns => "NS".into(),
            RrType::Cname => "CNAME".into(),
            RrType::Soa => "SOA".into(),
            RrType::Ptr => "PTR".into(),
            RrType::Mx => "MX".into(),
            RrType::Txt => "TXT".into(),
            RrType::Aaaa => "AAAA".into(),
            RrType::Opt => "OPT".into(),
            RrType::Svcb => "SVCB".into(),
            RrType::Https => "HTTPS".into(),
            RrType::Unknown(c) => format!("TYPE{c}"),
        }
    }
}

impl std::fmt::Display for RrType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// Record class. Only IN matters here; others are carried opaquely.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RrClass {
    /// Internet.
    In,
    /// Anything else (also used by OPT to carry UDP payload size).
    Other(u16),
}

impl RrClass {
    /// Wire code.
    pub fn code(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Other(c) => c,
        }
    }

    /// From wire code.
    pub fn from_code(c: u16) -> RrClass {
        if c == 1 {
            RrClass::In
        } else {
            RrClass::Other(c)
        }
    }
}

/// SOA RDATA fields.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Soa {
    /// Primary name server.
    pub mname: Name,
    /// Responsible mailbox.
    pub rname: Name,
    /// Zone serial.
    pub serial: u32,
    /// Refresh interval (seconds).
    pub refresh: u32,
    /// Retry interval (seconds).
    pub retry: u32,
    /// Expire limit (seconds).
    pub expire: u32,
    /// Negative-caching TTL (seconds) — the knob behind RFC 2308 negative
    /// caching, which interacts with HE's empty-AAAA behaviour.
    pub minimum: u32,
}

/// Typed RDATA.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name server.
    Ns(Name),
    /// Canonical name.
    Cname(Name),
    /// Start of authority.
    Soa(Soa),
    /// Pointer.
    Ptr(Name),
    /// Mail exchange (preference, exchange).
    Mx(u16, Name),
    /// Text strings.
    Txt(Vec<Vec<u8>>),
    /// Service binding (SVCB).
    Svcb(SvcParams),
    /// HTTPS service binding.
    Https(SvcParams),
    /// EDNS(0) options, carried opaquely.
    Opt(Vec<u8>),
    /// Unknown type, carried opaquely.
    Unknown(u16, Vec<u8>),
}

impl RData {
    /// The record type this RDATA belongs to.
    pub fn rtype(&self) -> RrType {
        match self {
            RData::A(_) => RrType::A,
            RData::Aaaa(_) => RrType::Aaaa,
            RData::Ns(_) => RrType::Ns,
            RData::Cname(_) => RrType::Cname,
            RData::Soa(_) => RrType::Soa,
            RData::Ptr(_) => RrType::Ptr,
            RData::Mx(_, _) => RrType::Mx,
            RData::Txt(_) => RrType::Txt,
            RData::Svcb(_) => RrType::Svcb,
            RData::Https(_) => RrType::Https,
            RData::Opt(_) => RrType::Opt,
            RData::Unknown(c, _) => RrType::Unknown(*c),
        }
    }

    /// Encodes RDATA (without the length prefix). Name compression is not
    /// used inside RDATA — modern practice (and a requirement for SVCB).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RData::A(a) => out.extend_from_slice(&a.octets()),
            RData::Aaaa(a) => out.extend_from_slice(&a.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.encode_uncompressed(out),
            RData::Soa(soa) => {
                soa.mname.encode_uncompressed(out);
                soa.rname.encode_uncompressed(out);
                for v in [soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum] {
                    out.extend_from_slice(&v.to_be_bytes());
                }
            }
            RData::Mx(pref, name) => {
                out.extend_from_slice(&pref.to_be_bytes());
                name.encode_uncompressed(out);
            }
            RData::Txt(strings) => {
                for s in strings {
                    out.push(s.len().min(255) as u8);
                    out.extend_from_slice(&s[..s.len().min(255)]);
                }
            }
            RData::Svcb(p) | RData::Https(p) => p.encode(out),
            RData::Opt(raw) | RData::Unknown(_, raw) => out.extend_from_slice(raw),
        }
    }

    /// Decodes RDATA of the given type from `msg[rd_start..rd_start+rd_len]`.
    /// The full message is needed because legacy RDATA may contain
    /// compression pointers.
    pub fn decode(
        rtype: RrType,
        msg: &[u8],
        rd_start: usize,
        rd_len: usize,
    ) -> Result<RData, DnsError> {
        let end = rd_start + rd_len;
        if end > msg.len() {
            return Err(DnsError::Truncated);
        }
        let raw = &msg[rd_start..end];
        match rtype {
            RrType::A => {
                if rd_len != 4 {
                    return Err(DnsError::BadRdata("A length"));
                }
                Ok(RData::A(Ipv4Addr::new(raw[0], raw[1], raw[2], raw[3])))
            }
            RrType::Aaaa => {
                if rd_len != 16 {
                    return Err(DnsError::BadRdata("AAAA length"));
                }
                let mut o = [0u8; 16];
                o.copy_from_slice(raw);
                Ok(RData::Aaaa(Ipv6Addr::from(o)))
            }
            RrType::Ns | RrType::Cname | RrType::Ptr => {
                let mut pos = rd_start;
                let name = Name::decode(msg, &mut pos)?;
                if pos != end {
                    return Err(DnsError::BadRdata("trailing bytes after name"));
                }
                Ok(match rtype {
                    RrType::Ns => RData::Ns(name),
                    RrType::Cname => RData::Cname(name),
                    _ => RData::Ptr(name),
                })
            }
            RrType::Soa => {
                let mut pos = rd_start;
                let mname = Name::decode(msg, &mut pos)?;
                let rname = Name::decode(msg, &mut pos)?;
                if pos + 20 != end {
                    return Err(DnsError::BadRdata("SOA length"));
                }
                let mut nums = [0u32; 5];
                for slot in &mut nums {
                    *slot =
                        u32::from_be_bytes([msg[pos], msg[pos + 1], msg[pos + 2], msg[pos + 3]]);
                    pos += 4;
                }
                Ok(RData::Soa(Soa {
                    mname,
                    rname,
                    serial: nums[0],
                    refresh: nums[1],
                    retry: nums[2],
                    expire: nums[3],
                    minimum: nums[4],
                }))
            }
            RrType::Mx => {
                if rd_len < 3 {
                    return Err(DnsError::BadRdata("MX length"));
                }
                let pref = u16::from_be_bytes([raw[0], raw[1]]);
                let mut pos = rd_start + 2;
                let name = Name::decode(msg, &mut pos)?;
                if pos != end {
                    return Err(DnsError::BadRdata("trailing bytes after MX"));
                }
                Ok(RData::Mx(pref, name))
            }
            RrType::Txt => {
                let mut strings = Vec::new();
                let mut pos = 0;
                while pos < raw.len() {
                    let len = raw[pos] as usize;
                    pos += 1;
                    if pos + len > raw.len() {
                        return Err(DnsError::BadRdata("TXT string length"));
                    }
                    strings.push(raw[pos..pos + len].to_vec());
                    pos += len;
                }
                Ok(RData::Txt(strings))
            }
            RrType::Svcb => Ok(RData::Svcb(SvcParams::decode(raw)?)),
            RrType::Https => Ok(RData::Https(SvcParams::decode(raw)?)),
            RrType::Opt => Ok(RData::Opt(raw.to_vec())),
            RrType::Unknown(c) => Ok(RData::Unknown(c, raw.to_vec())),
        }
    }
}

/// A complete resource record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Class (IN for everything in this testbed).
    pub class: RrClass,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed RDATA (the type is implied).
    pub rdata: RData,
}

impl Record {
    /// Convenience constructor for IN-class records.
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Record {
        Record {
            name,
            class: RrClass::In,
            ttl,
            rdata,
        }
    }

    /// The record's type.
    pub fn rtype(&self) -> RrType {
        self.rdata.rtype()
    }
}

impl std::fmt::Display for Record {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} IN {}", self.name, self.ttl, self.rtype())?;
        match &self.rdata {
            RData::A(a) => write!(f, " {a}"),
            RData::Aaaa(a) => write!(f, " {a}"),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => write!(f, " {n}"),
            RData::Mx(p, n) => write!(f, " {p} {n}"),
            RData::Soa(s) => write!(f, " {} {} {}", s.mname, s.rname, s.serial),
            RData::Txt(t) => write!(f, " ({} strings)", t.len()),
            RData::Svcb(p) | RData::Https(p) => write!(f, " {} {}", p.priority, p.target),
            RData::Opt(_) => Ok(()),
            RData::Unknown(_, b) => write!(f, " \\# {}", b.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn rtype_codes_roundtrip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Ptr,
            RrType::Mx,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Opt,
            RrType::Svcb,
            RrType::Https,
            RrType::Unknown(4711),
        ] {
            assert_eq!(RrType::from_code(t.code()), t);
        }
        assert_eq!(RrType::from_code(65).mnemonic(), "HTTPS");
        assert_eq!(RrType::Unknown(999).mnemonic(), "TYPE999");
    }

    #[test]
    fn a_rdata_roundtrip() {
        let rd = RData::A("192.0.2.7".parse().unwrap());
        let mut buf = Vec::new();
        rd.encode(&mut buf);
        assert_eq!(buf, vec![192, 0, 2, 7]);
        let back = RData::decode(RrType::A, &buf, 0, buf.len()).unwrap();
        assert_eq!(back, rd);
    }

    #[test]
    fn aaaa_rdata_roundtrip() {
        let rd = RData::Aaaa("2001:db8::1".parse().unwrap());
        let mut buf = Vec::new();
        rd.encode(&mut buf);
        assert_eq!(buf.len(), 16);
        assert_eq!(RData::decode(RrType::Aaaa, &buf, 0, 16).unwrap(), rd);
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(RData::decode(RrType::A, &[1, 2, 3], 0, 3).is_err());
        assert!(RData::decode(RrType::Aaaa, &[0; 4], 0, 4).is_err());
    }

    #[test]
    fn soa_roundtrip() {
        let rd = RData::Soa(Soa {
            mname: n("ns1.example.com"),
            rname: n("hostmaster.example.com"),
            serial: 2024112600,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        });
        let mut buf = Vec::new();
        rd.encode(&mut buf);
        assert_eq!(RData::decode(RrType::Soa, &buf, 0, buf.len()).unwrap(), rd);
    }

    #[test]
    fn txt_roundtrip() {
        let rd = RData::Txt(vec![b"hello".to_vec(), b"world".to_vec()]);
        let mut buf = Vec::new();
        rd.encode(&mut buf);
        assert_eq!(RData::decode(RrType::Txt, &buf, 0, buf.len()).unwrap(), rd);
    }

    #[test]
    fn mx_roundtrip() {
        let rd = RData::Mx(10, n("mail.example.com"));
        let mut buf = Vec::new();
        rd.encode(&mut buf);
        assert_eq!(RData::decode(RrType::Mx, &buf, 0, buf.len()).unwrap(), rd);
    }

    #[test]
    fn ns_with_compression_pointer_in_rdata() {
        // Legacy servers compress names inside NS RDATA; build one manually.
        let mut msg = Vec::new();
        n("example.com").encode_uncompressed(&mut msg); // at offset 0
        let rd_start = msg.len();
        msg.push(3);
        msg.extend_from_slice(b"ns1");
        msg.push(0xC0);
        msg.push(0x00); // pointer to example.com
        let rd_len = msg.len() - rd_start;
        let got = RData::decode(RrType::Ns, &msg, rd_start, rd_len).unwrap();
        assert_eq!(got, RData::Ns(n("ns1.example.com")));
    }

    #[test]
    fn unknown_type_is_opaque() {
        let rd = RData::Unknown(4711, vec![1, 2, 3]);
        let mut buf = Vec::new();
        rd.encode(&mut buf);
        assert_eq!(
            RData::decode(RrType::Unknown(4711), &buf, 0, 3).unwrap(),
            rd
        );
    }

    #[test]
    fn record_display() {
        let r = Record::new(
            n("example.com"),
            300,
            RData::A("192.0.2.1".parse().unwrap()),
        );
        assert_eq!(r.to_string(), "example.com. 300 IN A 192.0.2.1");
    }
}
